# Convenience targets for the reproduction workflow.

.PHONY: install test smoke serve-smoke obs-serve-smoke scale-smoke bench bench-parallel bench-obs bench-hist bench-scale bench-predict chaos obs-smoke lint-obs examples exhibits clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

smoke: serve-smoke obs-serve-smoke scale-smoke
	PYTHONPATH=src pytest tests -m smoke

serve-smoke:
	PYTHONPATH=src python tools/serve_smoke.py

obs-serve-smoke:
	PYTHONPATH=src python tools/obs_serve_smoke.py

scale-smoke:
	PYTHONPATH=src python tools/scale_smoke.py

bench-parallel:
	PYTHONPATH=src pytest benchmarks/test_parallel_speedup.py -m parallel_bench -s
	@echo "results in benchmarks/results/parallel_speedup.json"

bench-obs:
	PYTHONPATH=src pytest benchmarks/test_obs_overhead.py -m obs_bench -s
	@echo "results in benchmarks/results/obs_overhead.json"

bench-hist:
	PYTHONPATH=src pytest benchmarks/test_hist_speedup.py -m hist_bench -s
	@echo "results in benchmarks/results/hist_speedup.json"

bench-scale:
	PYTHONPATH=src pytest benchmarks/test_scale_bench.py -m scale_bench -s
	@echo "results in benchmarks/results/scale_1m.json"

bench-predict:
	PYTHONPATH=src pytest benchmarks/test_predict_speedup.py -m predict_bench -s
	@echo "results in benchmarks/results/predict_speedup.json"

chaos:
	PYTHONPATH=src pytest benchmarks/test_chaos_robustness.py -m chaos

obs-smoke:
	PYTHONPATH=src python tools/obs_smoke.py

lint-obs:
	PYTHONPATH=src python tools/lint_obs.py

examples:
	python examples/quickstart.py
	python examples/feature_group_study.py
	python examples/vendor_portability.py
	python examples/deployment_monitor.py
	python examples/failure_archaeology.py
	python examples/client_agent.py
	python examples/rul_planner.py

exhibits: bench
	@echo "rendered exhibits in benchmarks/results/"

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
