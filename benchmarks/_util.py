"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures, renders it
as ASCII, prints it and saves it under ``benchmarks/results/`` so the
EXPERIMENTS.md evidence can be refreshed by re-running the suite.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: "Never slower" gate for the parallel layer: a parallel run may cost
#: at most this multiple of the serial run...
NEVER_SLOWER_RATIO = 1.10
#: ...plus this absolute slack, which absorbs timer noise on
#: sub-second workloads where a 10% margin is microseconds.
NEVER_SLOWER_SLACK_SECONDS = 0.05


def never_slower(
    serial_seconds: float,
    parallel_seconds: float,
    *,
    ratio: float = NEVER_SLOWER_RATIO,
    slack_seconds: float = NEVER_SLOWER_SLACK_SECONDS,
) -> bool:
    """Gate: did ``n_jobs > 1`` avoid losing to the serial loop?

    Shared by ``make bench-parallel`` (full size) and the smoke-level
    gate in ``tests/parallel/test_bench_gate.py`` (tiny size).
    """
    return parallel_seconds <= serial_seconds * ratio + slack_seconds


def cores_label(count: int | None) -> str:
    """``1 core`` / ``8 cores`` — report-title pluralization."""
    n = count or 1
    return f"{n} core" if n == 1 else f"{n} cores"


def save_exhibit(name: str, text: str) -> None:
    """Persist a rendered exhibit and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
