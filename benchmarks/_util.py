"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures, renders it
as ASCII, prints it and saves it under ``benchmarks/results/`` so the
EXPERIMENTS.md evidence can be refreshed by re-running the suite.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_exhibit(name: str, text: str) -> None:
    """Persist a rendered exhibit and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
