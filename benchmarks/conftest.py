"""Benchmark fixtures: the shared evaluation fleets and fitted models.

Fleet sizes are chosen so every experiment has enough failures for
stable rates while the whole suite stays laptop-scale. ``failure_boost``
scales the (tiny) consumer replacement rates up; DESIGN.md §2 explains
why this preserves the paper's comparative shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MFPA, MFPAConfig
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

#: Training cutoff used by every model benchmark (days).
TRAIN_END = 360
#: Default evaluation window following the cutoff.
EVAL_END = 480
HORIZON = 540


@pytest.fixture(scope="session")
def fleet_vendor_i():
    """The workhorse fleet: vendor I (highest RR), 700 drives."""
    config = FleetConfig(
        mix=VendorMix({"I": 700}),
        horizon_days=HORIZON,
        failure_boost=20.0,
        seed=2023,
    )
    return simulate_fleet(config)


@pytest.fixture(scope="session")
def fleet_all_vendors():
    """Proportional four-vendor fleet at the paper's true relative RRs."""
    config = FleetConfig(
        mix=VendorMix.proportional(3000),
        horizon_days=HORIZON,
        failure_boost=25.0,
        seed=77,
    )
    return simulate_fleet(config)


@pytest.fixture(scope="session")
def per_vendor_fleets():
    """One fleet per vendor with boosts equalizing failure counts.

    The paper trains per-vendor models; vendor IV is deliberately left
    with few drives/failures to reproduce its weaker Fig 11/15 result.
    """
    settings = {
        "I": (500, 20.0, 31),
        "II": (550, 160.0, 32),
        "III": (500, 200.0, 33),
        "IV": (140, 90.0, 34),
    }
    fleets = {}
    for vendor, (count, boost, seed) in settings.items():
        fleets[vendor] = simulate_fleet(
            FleetConfig(
                mix=VendorMix({vendor: count}),
                horizon_days=HORIZON,
                failure_boost=boost,
                seed=seed,
            )
        )
    return fleets


@pytest.fixture(scope="session")
def fitted_sfwb(fleet_vendor_i):
    """The reference SFWB random-forest model, trained once."""
    model = MFPA(MFPAConfig(feature_group_name="SFWB"))
    model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
    return model


def drive_metrics(model: MFPA, start: int = TRAIN_END, end: int = EVAL_END):
    """Convenience: drive-level report over the standard eval window."""
    return model.evaluate(start, end).drive_report
