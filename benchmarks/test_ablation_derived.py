"""Ablation — change features vs raw cumulative counters.

FAST'20-style delta/rolling features are stationary under fleet aging,
unlike the raw cumulative counters that drive the PSI drift measured in
``test_ext_drift.py``. This ablation quantifies what they buy each
algorithm family — dramatic for Gaussian NB, marginal for the trees
that split on thresholds anyway.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.ml import GaussianNaiveBayes, RandomForestClassifier
from repro.reporting import render_table


@pytest.mark.benchmark(group="ablation-derived")
def test_ablation_derived_features(benchmark, fleet_vendor_i):
    def run(algorithm, diet):
        config = MFPAConfig(
            algorithm=algorithm,
            derived_features=diet != "raw",
            derived_mode="replace" if diet == "replace" else "append",
        )
        model = MFPA(config)
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        return model.evaluate(TRAIN_END, EVAL_END).drive_report

    def forest():
        return RandomForestClassifier(n_estimators=40, max_depth=12, seed=0)

    headline = benchmark.pedantic(
        run, args=(forest(), "replace"), rounds=1, iterations=1
    )

    reports = {
        ("RF", "replace"): headline,
        ("RF", "raw"): run(forest(), "raw"),
        ("Bayes", "raw"): run(GaussianNaiveBayes(), "raw"),
        ("Bayes", "append"): run(GaussianNaiveBayes(), "append"),
        ("Bayes", "replace"): run(GaussianNaiveBayes(), "replace"),
    }

    rows = [
        [algorithm, diet, report.tpr, report.fpr, report.auc]
        for (algorithm, diet), report in sorted(reports.items())
    ]
    table = render_table(
        ["Algorithm", "Counter diet", "TPR", "FPR", "AUC"],
        rows,
        title=(
            "Ablation: change features (cf. FAST'20 [11]) — raw counters / "
            "append derivatives / replace counters with derivatives"
        ),
    )
    save_exhibit("ablation_derived", table)

    # Replacing the drifting counters rescues NB; appending alone does
    # not (the raw counters dominate the joint likelihood).
    assert reports[("Bayes", "replace")].auc > reports[("Bayes", "raw")].auc + 0.1
    # And the swap must not hurt the tree ensemble.
    assert reports[("RF", "replace")].auc >= reports[("RF", "raw")].auc - 0.02
