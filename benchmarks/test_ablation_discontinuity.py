"""Ablation — the discontinuity-repair stage (§III-C(1)).

Compares three preprocessing regimes on the same fleet: no repair at
all (keep every fragment, fill nothing), drop-only, and the paper's
full drop+fill. The reproduced claim: repair does not hurt, and the
fill stage recovers training rows that dropping alone loses.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.reporting import render_table

REGIMES = {
    # max_gap=10_000 disables fragment dropping entirely; fill_gap=0
    # disables mean filling.
    "no repair": dict(max_gap=10_000, fill_gap=0, min_segment_records=1),
    "drop only": dict(max_gap=10, fill_gap=0, min_segment_records=5),
    "drop + fill (paper)": dict(max_gap=10, fill_gap=3, min_segment_records=5),
}


@pytest.mark.benchmark(group="ablation-discontinuity")
def test_ablation_discontinuity_repair(benchmark, fleet_vendor_i):
    def run(name):
        model = MFPA(MFPAConfig(**REGIMES[name]))
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        return model, model.evaluate(TRAIN_END, EVAL_END)

    headline = benchmark.pedantic(
        run, args=("drop + fill (paper)",), rounds=1, iterations=1
    )
    results = {"drop + fill (paper)": headline}
    for name in REGIMES:
        if name not in results:
            results[name] = run(name)

    rows = []
    for name in REGIMES:
        model, result = results[name]
        report = result.drive_report
        rows.append(
            [
                name,
                model.preprocess_report_.n_rows_dropped,
                model.preprocess_report_.n_rows_filled,
                report.tpr,
                report.fpr,
                report.auc,
            ]
        )
    table = render_table(
        ["Regime", "Rows dropped", "Rows filled", "TPR", "FPR", "AUC"],
        rows,
        title="Ablation: discontinuity repair (drop >=10 / fill <=3)",
    )
    save_exhibit("ablation_discontinuity", table)

    paper_auc = results["drop + fill (paper)"][1].drive_report.auc
    assert paper_auc >= results["no repair"][1].drive_report.auc - 0.03
    fill_model = results["drop + fill (paper)"][0]
    drop_model = results["drop only"][0]
    assert (
        fill_model.preprocess_report_.n_output_rows
        > drop_model.preprocess_report_.n_output_rows
    ), "filling must recover rows that dropping alone loses"
