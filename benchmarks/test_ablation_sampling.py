"""Ablation — under-sampling ratio and positive-window length (§III-C(3)).

The paper picks negatives:positives ratios of 3:1 / 5:1 and positive
windows of 7/14/21 days. The bench sweeps both and reports the
resulting drive-level metrics, asserting the pipeline is not brittle
around the paper's choices.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.reporting import render_table

RATIOS = (1.0, 3.0, 5.0, 10.0)
WINDOWS = (7, 14, 21)


@pytest.mark.benchmark(group="ablation-sampling")
def test_ablation_sampling_choices(benchmark, fleet_vendor_i):
    def run(ratio, window):
        model = MFPA(MFPAConfig(negative_ratio=ratio, positive_window=window))
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        return model.evaluate(TRAIN_END, EVAL_END).drive_report

    headline = benchmark.pedantic(run, args=(3.0, 14), rounds=1, iterations=1)

    rows = []
    reports = {}
    for ratio in RATIOS:
        report = headline if ratio == 3.0 else run(ratio, 14)
        reports[("ratio", ratio)] = report
        rows.append([f"ratio {ratio:.0f}:1, window 14", report.tpr, report.fpr, report.auc])
    for window in WINDOWS:
        report = headline if window == 14 else run(3.0, window)
        reports[("window", window)] = report
        rows.append([f"ratio 3:1, window {window}", report.tpr, report.fpr, report.auc])

    table = render_table(
        ["Configuration", "TPR", "FPR", "AUC"],
        rows,
        title="Ablation: under-sampling ratio and positive-window length",
    )
    save_exhibit("ablation_sampling", table)

    # The paper's settings sit in a stable region: every swept config
    # within the paper's ranges keeps a usable model.
    for key, report in reports.items():
        if key in (("ratio", 10.0),):
            continue  # outside the paper's range, allowed to degrade
        assert report.tpr >= 0.75, key
        assert report.auc >= 0.9, key
