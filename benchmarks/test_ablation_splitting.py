"""Ablation — time-series-aware vs shuffled evaluation (Fig 8).

The paper's point: a randomly shuffled train/test split leaks future
records into training and *overstates* offline accuracy relative to
what the model achieves when deployed forward in time. We quantify the
leak: record-level accuracy under a shuffled split vs the same model
family evaluated on a strictly later period.
"""

import numpy as np
import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.core.labeling import build_samples
from repro.core.splitting import TimepointSplit
from repro.ml import RandomForestClassifier
from repro.ml.metrics import classification_report
from repro.ml.resampling import RandomUnderSampler
from repro.reporting import render_table


@pytest.mark.benchmark(group="ablation-splitting")
def test_ablation_random_vs_timepoint_split(benchmark, fleet_vendor_i):
    model = MFPA(MFPAConfig())
    model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
    prepared = model.dataset_

    samples = build_samples(prepared, model.failure_times_, positive_window=14)
    sampler = RandomUnderSampler(ratio=3.0, seed=0)
    rows, labels, days = sampler.fit_resample(
        samples.row_indices, samples.labels, samples.days
    )

    def shuffled_split_accuracy():
        # Fig 8a-(1): shuffle everything, train on 90%, test on 10%.
        rng = np.random.default_rng(0)
        order = rng.permutation(labels.size)
        cut = int(0.9 * labels.size)
        train_rows, test_rows = rows[order[:cut]], rows[order[cut:]]
        train_labels, test_labels = labels[order[:cut]], labels[order[cut:]]
        X_train = model.assembler_.assemble(prepared.columns, train_rows)
        X_test = model.assembler_.assemble(prepared.columns, test_rows)
        forest = RandomForestClassifier(n_estimators=40, max_depth=12, seed=0)
        forest.fit(X_train, train_labels)
        scores = forest.predict_proba(X_test)[:, 1]
        return classification_report(
            test_labels, (scores >= 0.5).astype(int), scores
        )

    shuffled = benchmark.pedantic(shuffled_split_accuracy, rounds=1, iterations=1)
    forward = model.evaluate(TRAIN_END, EVAL_END).record_report

    table = render_table(
        ["Evaluation", "ACC", "TPR", "FPR", "AUC"],
        [
            ["shuffled split (leaky)", shuffled.accuracy, shuffled.tpr, shuffled.fpr, shuffled.auc],
            ["forward in time (honest)", forward.accuracy, forward.tpr, forward.fpr, forward.auc],
        ],
        title="Ablation: shuffled vs timepoint evaluation (record-level)",
    )
    save_exhibit("ablation_splitting", table)

    # The leaky estimate must look at least as good as the honest one —
    # that inflation is exactly why the paper adopts timepoint splits.
    assert shuffled.auc >= forward.auc - 0.01
    assert shuffled.tpr >= forward.tpr - 0.02


@pytest.mark.benchmark(group="ablation-splitting")
def test_timepoint_split_has_no_future_leak(benchmark, fleet_vendor_i):
    model = MFPA(MFPAConfig())
    model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
    samples = build_samples(model.dataset_, model.failure_times_)

    def split():
        return TimepointSplit(split_day=TRAIN_END).split(samples)

    train, test = benchmark(split)
    assert train.days.max() < TRAIN_END <= test.days.min()
