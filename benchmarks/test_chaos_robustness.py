"""Chaos bench — pipeline degradation under every collector fault.

The robustness claim made concrete: corrupt the fleet with each fault
injector, run quarantine ingestion, replay the monitored deployment,
and compare TPR / FPR / median lead time against the clean baseline.
The "(clean)" row doubles as the control — with all injectors disabled
the chaos path must reproduce the clean pipeline's numbers exactly.

Marked ``chaos`` and excluded from the default suites; run via
``make chaos``.
"""

import pytest

from benchmarks._util import save_exhibit
from repro.core import MFPAConfig, RetrainPolicy
from repro.core.deployment import simulate_operation
from repro.reporting import render_table
from repro.robustness import FAULT_REGISTRY, inject, make_fault, sanitize_dataset
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

pytestmark = pytest.mark.chaos

START, END, WINDOW = 240, 420, 30
SEED = 2023


@pytest.fixture(scope="module")
def chaos_fleet():
    return simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 300}),
            horizon_days=END,
            failure_boost=25.0,
            seed=SEED,
        )
    )


def _operate(dataset):
    summary = simulate_operation(
        dataset,
        config=MFPAConfig(),
        policy=RetrainPolicy(interval_days=60),
        start_day=START,
        end_day=END,
        window_days=WINDOW,
    )
    n_healthy = sum(1 for meta in dataset.drives.values() if not meta.failed)
    fpr = summary.false_alarms / n_healthy if n_healthy else float("nan")
    return {
        "tpr": summary.recall,
        "fpr": fpr,
        "lead": summary.median_lead_time,
        "summary": summary,
    }


@pytest.fixture(scope="module")
def clean_metrics(chaos_fleet):
    return _operate(chaos_fleet)


def test_no_injectors_reproduces_clean_pipeline(chaos_fleet, clean_metrics):
    """Control arm: the chaos path with zero injectors is the clean run."""
    uninjected = inject(chaos_fleet, [], seed=SEED)
    sanitized, report = sanitize_dataset(uninjected)
    assert report.clean
    rerun = _operate(sanitized)
    assert rerun["summary"] == clean_metrics["summary"]


def test_chaos_degradation_table(chaos_fleet, clean_metrics):
    rows = [
        [
            "(clean)",
            f"{clean_metrics['tpr']:.3f}",
            f"{clean_metrics['fpr']:.3f}",
            f"{clean_metrics['lead']:.0f}",
            "-",
            "-",
            "-",
        ]
    ]
    for name in sorted(FAULT_REGISTRY):
        corrupted = inject(chaos_fleet, [make_fault(name)], seed=SEED)
        sanitized, report = sanitize_dataset(corrupted)
        metrics = _operate(sanitized)
        rows.append(
            [
                name,
                f"{metrics['tpr']:.3f}",
                f"{metrics['fpr']:.3f}",
                f"{metrics['lead']:.0f}",
                f"{metrics['tpr'] - clean_metrics['tpr']:+.3f}",
                f"{metrics['fpr'] - clean_metrics['fpr']:+.3f}",
                f"{metrics['lead'] - clean_metrics['lead']:+.0f}",
            ]
        )
        # quarantine must have left a trainable, invariant-clean dataset
        assert metrics["summary"].n_alarms >= 0
        assert not report.clean or name == "drop_days", (
            # drop_days produces a *valid* (merely sparser) dataset, so
            # the quarantine legitimately has nothing to do for it.
            f"injector {name} produced corruption the quarantine never saw"
        )

    table = render_table(
        ["Fault", "TPR", "FPR", "Lead", "dTPR", "dFPR", "dLead"],
        rows,
        title=(
            "Chaos: monitored-operation degradation per fault "
            f"(quarantine on, seed {SEED})"
        ),
    )
    save_exhibit("chaos_robustness", table)

    # Robustness floor: the pipeline operates through every fault —
    # quarantined inputs never crash it, and detection skill survives.
    for row in rows[1:]:
        assert float(row[1]) >= 0.3, f"TPR collapsed under {row[0]}"
