"""Extension bench — cost-sensitive learning (cf. the authors' CSLE [24]).

Two ways to shift the TPR/FPR trade-off toward the economics of
consumer data loss: reweight classes *inside* the forest's gini
criterion, or tune the decision threshold after training. This bench
compares both against the plain model under one cost model
(miss = $600 data-recovery, false alarm = $40 needless replacement
handling).
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.core.thresholding import CostModel
from repro.ml import RandomForestClassifier
from repro.reporting import render_table

COSTS = CostModel(miss_cost=600.0, false_alarm_cost=40.0)


@pytest.mark.benchmark(group="ext-cost")
def test_ext_cost_sensitive_learning(benchmark, fleet_vendor_i):
    def run(class_weight, calibrate):
        model = MFPA(
            MFPAConfig(
                algorithm=RandomForestClassifier(
                    n_estimators=40, max_depth=12, class_weight=class_weight, seed=0
                )
            )
        )
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END - 60)
        if calibrate:
            model.calibrate_threshold(TRAIN_END - 60, TRAIN_END, max_fpr=0.02)
        return model.evaluate(TRAIN_END, EVAL_END)

    headline = benchmark.pedantic(
        run, args=({0: 1.0, 1: 5.0}, False), rounds=1, iterations=1
    )
    variants = {
        "plain RF": run(None, False),
        "class_weight 5:1": headline,
        "class_weight balanced": run("balanced", False),
        "plain RF + tuned threshold": run(None, True),
    }

    rows = []
    for name, result in variants.items():
        report = result.drive_report
        cost = COSTS.expected_cost(report.tp, report.fp, report.fn, report.tn)
        rows.append([name, report.tpr, report.fpr, cost])
    table = render_table(
        ["Variant", "TPR", "FPR", "Expected cost ($)"],
        rows,
        title="Extension: cost-sensitive learning vs threshold tuning (cf. CSLE [24])",
    )
    save_exhibit("ext_cost_sensitive", table)

    plain = variants["plain RF"].drive_report
    weighted = variants["class_weight 5:1"].drive_report
    assert weighted.tpr >= plain.tpr - 0.02, "upweighting failures must not lose recall"
    # Some cost-aware variant should not cost more than the plain model.
    plain_cost = COSTS.expected_cost(plain.tp, plain.fp, plain.fn, plain.tn)
    best_cost = min(
        COSTS.expected_cost(
            r.drive_report.tp, r.drive_report.fp, r.drive_report.fn, r.drive_report.tn
        )
        for name, r in variants.items()
        if name != "plain RF"
    )
    assert best_cost <= plain_cost + 40.0