"""Extension bench — end-to-end monitored deployment and warning lead time.

Ties the whole system together the way the paper's §IV deployment
narrative does: a monitor scores the fleet in monthly windows, retrains
on schedule, and its alarms are graded against ground truth. The
operationally decisive number is the warning *lead time* — how many
days the user gets to back up before the drive dies (Fig 19's purpose).
"""

import numpy as np
import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import TRAIN_END
from repro.core import MFPAConfig, RetrainPolicy
from repro.core.deployment import simulate_operation
from repro.reporting import render_series, render_table


@pytest.mark.benchmark(group="ext-deployment")
def test_ext_monitored_deployment(benchmark, fleet_vendor_i):
    def run():
        return simulate_operation(
            fleet_vendor_i,
            config=MFPAConfig(),
            policy=RetrainPolicy(interval_days=60),
            start_day=TRAIN_END,
            end_day=540,
            window_days=30,
        )

    summary = benchmark.pedantic(run, rounds=1, iterations=1)

    windows_table = render_table(
        ["Window", "Alarms", "Drives scored", "Retrained"],
        [
            [f"{w.start_day}-{w.end_day}", len(w.alarms), w.n_drives_scored, w.retrained]
            for w in summary.windows
        ],
        title="Extension: six months of monitored operation",
    )
    stats = (
        f"\nalarms {summary.n_alarms} ({summary.true_alarms} true / "
        f"{summary.false_alarms} false) | precision {summary.precision:.2%} | "
        f"recall {summary.recall:.2%} | median lead time "
        f"{summary.median_lead_time:.0f} days"
    )
    if summary.lead_times:
        buckets = {"0-3d": 0, "4-7d": 0, "8-14d": 0, ">14d": 0}
        for lead in summary.lead_times:
            if lead <= 3:
                buckets["0-3d"] += 1
            elif lead <= 7:
                buckets["4-7d"] += 1
            elif lead <= 14:
                buckets["8-14d"] += 1
            else:
                buckets[">14d"] += 1
        histogram = render_series(
            "lead",
            list(buckets),
            [float(v) for v in buckets.values()],
            title="Warning lead-time distribution (days before failure)",
        )
    else:
        histogram = "(no true alarms)"
    save_exhibit("ext_deployment", windows_table + stats + "\n\n" + histogram)

    assert summary.recall >= 0.7, "the monitor must catch most failures"
    assert summary.precision >= 0.5, "alarms must be mostly real"
    # "Failure prediction several days in advance is sufficient for
    # subsequent processing" — the median warning must give users time.
    assert summary.median_lead_time >= 2
    # Retraining fired on the 60-day schedule at least once.
    assert any(w.retrained for w in summary.windows)