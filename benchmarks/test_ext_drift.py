"""Extension bench — the drift behind Figs 12/16's FPR creep.

The paper reports that MFPA "needs iteration every 2-3 months" because
learned feature distributions shift. This bench quantifies the shift:
per-feature PSI between the training era and each subsequent month,
next to the same months' FPR from the temporal bench — the mechanism
and the symptom side by side.
"""

import numpy as np
import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import TRAIN_END
from repro.analysis.temporal import rolling_monthly_evaluation
from repro.core.drift import feature_drift_report
from repro.reporting import render_table

REFERENCE = (TRAIN_END - 90, TRAIN_END)
N_MONTHS = 5


@pytest.mark.benchmark(group="ext-drift")
def test_ext_feature_drift_explains_fpr_creep(benchmark, fitted_sfwb):
    def monthly_drift():
        rows = []
        for month in range(N_MONTHS):
            window = (TRAIN_END + month * 30, TRAIN_END + (month + 1) * 30)
            report = feature_drift_report(fitted_sfwb, REFERENCE, window)
            rows.append(
                {
                    "month": month + 1,
                    "mean_psi": float(np.mean([d.psi for d in report])),
                    "worst": report[0],
                }
            )
        return rows

    drift_rows = benchmark.pedantic(monthly_drift, rounds=1, iterations=1)
    fpr_rows = rolling_monthly_evaluation(fitted_sfwb, TRAIN_END, N_MONTHS, 30)

    table = render_table(
        ["Month", "Mean PSI", "Worst feature", "Worst PSI", "Drive FPR"],
        [
            [
                drift["month"],
                drift["mean_psi"],
                drift["worst"].column,
                drift["worst"].psi,
                fpr["fpr"],
            ]
            for drift, fpr in zip(drift_rows, fpr_rows)
        ],
        title="Extension: feature drift (PSI vs training era) alongside monthly FPR",
    )
    save_exhibit("ext_drift", table)

    mean_psis = [row["mean_psi"] for row in drift_rows]
    # Drift grows (weakly) with temporal distance from training.
    assert mean_psis[-1] >= mean_psis[0] - 0.01
    slope = np.polyfit(range(N_MONTHS), mean_psis, 1)[0]
    assert slope > -0.005
    # The age-driven cumulative counters are the drifting features.
    worst = {row["worst"].column for row in drift_rows}
    growing = {
        "s12_power_on_hours",
        "s6_data_units_read",
        "s7_data_units_written",
        "s8_host_read_commands",
        "s9_host_write_commands",
        "s11_power_cycles",
        "s5_percentage_used",
        "s10_controller_busy_time",
    }
    assert worst & growing
