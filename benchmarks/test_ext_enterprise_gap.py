"""Extension bench — the enterprise -> consumer transfer gap (§II).

The paper's challenge (2)/(3): data centers collect continuous 24/7
telemetry with promptly-labeled failures, and models built there "are
not directly applicable to CSS". We simulate exactly that contrast —
an always-on fleet with zero repair lag vs a consumer fleet with
irregular boots and procrastinated tickets — train a model on each,
and score both against the consumer fleet.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, HORIZON, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.reporting import render_table
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet


@pytest.mark.benchmark(group="ext-enterprise")
def test_ext_enterprise_to_consumer_gap(benchmark, fleet_vendor_i):
    enterprise_fleet = simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 700}),
            horizon_days=HORIZON,
            failure_boost=20.0,
            mean_boot_probability=0.985,  # 24/7-ish duty cycle
            vacation_rate=0.0,
            mean_repair_lag_days=0.5,  # failures labeled immediately
            seed=2024,
        )
    )

    def train_and_cross_evaluate():
        enterprise = MFPA(MFPAConfig())
        enterprise.fit(enterprise_fleet, train_end_day=TRAIN_END)
        consumer = MFPA(MFPAConfig())
        consumer.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        # Transplant the enterprise-trained estimator into the consumer
        # pipeline state: same features, same evaluation, different
        # training distribution.
        transplanted = MFPA(MFPAConfig())
        transplanted.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        transplanted.model_ = enterprise.model_
        return {
            "enterprise on enterprise": enterprise.evaluate(TRAIN_END, EVAL_END),
            "consumer on consumer": consumer.evaluate(TRAIN_END, EVAL_END),
            "enterprise model on consumer": transplanted.evaluate(
                TRAIN_END, EVAL_END
            ),
        }

    results = benchmark.pedantic(train_and_cross_evaluate, rounds=1, iterations=1)

    rows = [
        [name, result.drive_report.tpr, result.drive_report.fpr, result.drive_report.auc]
        for name, result in results.items()
    ]
    gap_stats = enterprise_fleet.drive_rows(int(enterprise_fleet.serials[0]))["day"]
    table = render_table(
        ["Training -> evaluation", "TPR", "FPR", "AUC"],
        rows,
        title=(
            "Extension: enterprise-grade telemetry does not transfer to CSS "
            "(paper §II challenges 2-3)"
        ),
    )
    save_exhibit("ext_enterprise_gap", table)

    native = results["consumer on consumer"].drive_report
    transplanted = results["enterprise model on consumer"].drive_report
    # Native consumer training must beat the enterprise transplant on
    # the consumer fleet — the paper's core argument for CSS-specific
    # modeling.
    native_score = native.tpr - native.fpr
    transplanted_score = transplanted.tpr - transplanted.fpr
    assert native_score >= transplanted_score - 0.02
    # The enterprise fleet itself is nearly gap-free.
    assert gap_stats.size > 0