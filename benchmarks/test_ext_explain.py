"""Extension bench — which features drive the SFWB model's decisions.

The paper names the features its selection deems critical (§IV-(2.2)):
media/data-integrity errors, power cycles, W_11/W_49/W_51/W_161,
B_50/B_7A, and calls Available Spare Threshold dead weight. This bench
cross-checks that claim with model-agnostic permutation importance on
the fitted SFWB forest, plus a per-drive alarm explanation.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core.explain import explain_alarm, permutation_importance
from repro.reporting import render_table


@pytest.mark.benchmark(group="ext-explain")
def test_ext_explainability(benchmark, fitted_sfwb):
    importances = benchmark.pedantic(
        permutation_importance,
        args=(fitted_sfwb, TRAIN_END, EVAL_END),
        kwargs={"n_repeats": 3, "seed": 0},
        rounds=1,
        iterations=1,
    )

    top = render_table(
        ["Rank", "Feature", "AUC drop when shuffled"],
        [[i + 1, imp.column, imp.auc_drop] for i, imp in enumerate(importances[:12])],
        title="Extension: permutation importance of SFWB features (record-level)",
    )

    # A concrete alarm, explained.
    serial = next(
        s for s, d in fitted_sfwb.failure_times_.items() if TRAIN_END <= d < EVAL_END
    )
    day = int(fitted_sfwb.dataset_.drive_rows(serial)["day"][-1])
    explanation = explain_alarm(fitted_sfwb, serial, day)
    local = render_table(
        ["Feature", "Value", "Healthy p95", "p(fail) without it"],
        [
            [c["column"], c["value"], c["healthy_p95"], c["probability_without"]]
            for c in explanation.contributions
        ],
        title=(
            f"Alarm explanation: drive S/N {serial}, day {day}, "
            f"p(fail)={explanation.probability:.3f}"
        ),
    )
    save_exhibit("ext_explain", top + "\n\n" + local)

    by_column = {imp.column: imp.auc_drop for imp in importances}
    # Dead weight stays dead.
    assert abs(by_column["s4_spare_threshold"]) < 1e-9
    # At least one of the paper's highlighted features carries real
    # importance on our substrate.
    highlighted = (
        "s14_media_errors",
        "s11_power_cycles",
        "cum_w11_controller_error",
        "cum_w49_pagefile_fail",
        "cum_w51_paging_error",
        "cum_w161_fs_io_error",
        "cum_b50_page_fault_in_nonpaged_a",
        "cum_b7a_kernel_data_inpage_error",
    )
    top12 = {imp.column for imp in importances[:12]}
    assert top12 & set(highlighted)
