"""Extension bench — grid search + time-series CV (§III-C(4)).

The paper tunes each algorithm's hyperparameters with grid search
combined with its time-series cross-validation. This bench runs the RF
grid the paper names (max tree depth, max features) and reports the CV
surface plus the chosen configuration's test metrics.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.ml import RandomForestClassifier
from repro.reporting import render_table

GRID = {"max_depth": [4, 8, 14], "max_features": ["sqrt", 0.5]}


@pytest.mark.benchmark(group="ext-gridsearch")
def test_ext_grid_search_with_ts_cv(benchmark, fleet_vendor_i):
    def run():
        config = MFPAConfig(
            algorithm=RandomForestClassifier(n_estimators=30, seed=0),
            param_grid=GRID,
            cv_k=3,
        )
        model = MFPA(config)
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        return model, model.evaluate(TRAIN_END, EVAL_END)

    model, result = benchmark.pedantic(run, rounds=1, iterations=1)

    surface = render_table(
        ["max_depth", "max_features", "mean CV accuracy"],
        [
            [r["params"]["max_depth"], str(r["params"]["max_features"]), r["mean_score"]]
            for r in model.search_.results_
        ],
        title="Extension: RF hyperparameter grid over time-series CV",
    )
    chosen = render_table(
        ["Chosen params", "Test TPR", "Test FPR", "Test AUC"],
        [
            [
                str(model.search_.best_params_),
                result.drive_report.tpr,
                result.drive_report.fpr,
                result.drive_report.auc,
            ]
        ],
    )
    save_exhibit("ext_gridsearch", surface + "\n\n" + chosen)

    assert len(model.search_.results_) == 6
    assert model.search_.best_params_["max_depth"] in GRID["max_depth"]
    assert result.drive_report.tpr >= 0.85
