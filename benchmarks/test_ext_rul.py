"""Extension bench — remaining-useful-life regression.

Beyond the binary "will fail" of Fig 19: how accurately can the SFWB
features place a failing drive on a countdown? Reported as MAE over
faulty test drives' true countdowns, the within-7-days hit rate, and
the rank correlation between predicted and true urgency.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core.rul import RULConfig, RULRegressor
from repro.reporting import render_table


@pytest.mark.benchmark(group="ext-rul")
def test_ext_remaining_useful_life(benchmark, fleet_vendor_i):
    def run():
        model = RULRegressor(RULConfig(n_estimators=40, seed=0))
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        return model, model.evaluate(TRAIN_END, EVAL_END)

    model, evaluation = benchmark.pedantic(run, rounds=1, iterations=1)

    # Per-distance error profile: how accuracy degrades with distance
    # from failure (the RUL analogue of Fig 19).
    import numpy as np

    prepared = model.dataset_
    rows_by_bucket: dict[str, list[float]] = {"0-7d": [], "8-21d": [], "22-45d": []}
    for serial, failure_time in model.failure_times_.items():
        if not TRAIN_END <= failure_time < EVAL_END:
            continue
        days = prepared.drive_rows(serial)["day"]
        base = prepared._row_slices()[serial].start
        in_window = (days >= failure_time - 45) & (days <= failure_time)
        if not np.any(in_window):
            continue
        indices = base + np.flatnonzero(in_window)
        truths = (failure_time - days[in_window]).astype(float)
        predictions = model.predict_rows(indices)
        errors = np.abs(predictions - truths)
        for truth, error in zip(truths, errors):
            if truth <= 7:
                rows_by_bucket["0-7d"].append(error)
            elif truth <= 21:
                rows_by_bucket["8-21d"].append(error)
            else:
                rows_by_bucket["22-45d"].append(error)

    table = render_table(
        ["True countdown", "Records", "MAE (days)"],
        [
            [bucket, len(errors), float(np.mean(errors)) if errors else float("nan")]
            for bucket, errors in rows_by_bucket.items()
        ],
        title=(
            "Extension: remaining-useful-life regression — "
            f"overall MAE {evaluation.mae_days:.1f}d, "
            f"within-7d {evaluation.within_7_days:.0%}, "
            f"Spearman {evaluation.spearman:.2f}"
        ),
    )
    save_exhibit("ext_rul", table)

    assert evaluation.mae_days <= 20.0
    assert evaluation.spearman > 0.3, "predictions must rank urgency correctly"
    near = rows_by_bucket["0-7d"]
    assert near and float(np.mean(near)) <= 15.0