"""Extension bench — cost-sensitive and FPR-budgeted thresholds.

The paper operates at a fixed 0.5 probability threshold and reports
0.56% FPR. This bench tunes the threshold on a validation slice three
ways (Youden, FPR budget 0.56%, expected cost) and reports the test
operating points — the knob a deployment actually turns (cf. the
authors' cost-sensitive follow-up CSLE [24]).
"""

import numpy as np
import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import (
    CostModel,
    tune_threshold_cost,
    tune_threshold_fpr_budget,
    tune_threshold_youden,
)
from repro.core.labeling import build_samples
from repro.ml.metrics import classification_report
from repro.reporting import render_table

VALIDATION_DAYS = 60


@pytest.mark.benchmark(group="ext-thresholding")
def test_ext_threshold_tuning(benchmark, fitted_sfwb):
    model = fitted_sfwb
    samples = build_samples(model.dataset_, model.failure_times_, positive_window=14)

    def slice_scores(start, end):
        mask = (samples.days >= start) & (samples.days < end)
        rows = samples.row_indices[mask]
        labels = samples.labels[mask]
        return labels, model.predict_proba_rows(rows)

    validation_labels, validation_scores = slice_scores(
        TRAIN_END - VALIDATION_DAYS, TRAIN_END
    )
    test_labels, test_scores = slice_scores(TRAIN_END, EVAL_END)

    def tune_all():
        return {
            "Youden": tune_threshold_youden(validation_labels, validation_scores),
            "FPR <= 0.56%": tune_threshold_fpr_budget(
                validation_labels, validation_scores, max_fpr=0.0056
            ),
            "min expected cost": tune_threshold_cost(
                validation_labels,
                validation_scores,
                CostModel(miss_cost=600.0, false_alarm_cost=40.0),
            ),
        }

    choices = benchmark(tune_all)

    rows = []
    test_reports = {}
    for name, choice in choices.items():
        predictions = (test_scores >= choice.threshold).astype(int)
        report = classification_report(test_labels, predictions, test_scores)
        test_reports[name] = report
        rows.append([name, choice.threshold, report.tpr, report.fpr, report.pdr])
    default = classification_report(
        test_labels, (test_scores >= 0.5).astype(int), test_scores
    )
    rows.append(["fixed 0.5 (paper)", 0.5, default.tpr, default.fpr, default.pdr])

    table = render_table(
        ["Objective", "Threshold", "Test TPR", "Test FPR", "Test PDR"],
        rows,
        title="Extension: threshold tuning on validation, scored on test (record-level)",
    )
    save_exhibit("ext_thresholding", table)

    assert test_reports["FPR <= 0.56%"].fpr <= 0.03, "budgeted threshold must stay low-FPR on test"
    assert test_reports["Youden"].tpr >= default.tpr - 0.1
