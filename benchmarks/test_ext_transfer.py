"""Extension bench — cross-vendor transfer for the data-starved vendor.

The paper leaves vendor IV's weak model as an open problem and cites
minority-disk transfer learning [20] as the remedy. This bench measures
the remedy on our substrate: vendor IV native vs vendor I -> IV
score-blend transfer.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig, TransferredMFPA
from repro.reporting import render_table


@pytest.mark.benchmark(group="ext-transfer")
def test_ext_transfer_to_minority_vendor(benchmark, per_vendor_fleets):
    source = per_vendor_fleets["I"]
    target = per_vendor_fleets["IV"]

    def run_transfer():
        transfer = TransferredMFPA(MFPAConfig())
        transfer.fit(source, target, train_end_day=TRAIN_END, validation_days=60)
        return transfer, transfer.evaluate(TRAIN_END, EVAL_END)

    transfer, transfer_result = benchmark.pedantic(run_transfer, rounds=1, iterations=1)

    native = MFPA(MFPAConfig())
    native.fit(target, train_end_day=TRAIN_END)
    native_result = native.evaluate(TRAIN_END, EVAL_END)

    table = render_table(
        ["Model", "alpha", "TPR", "FPR", "AUC"],
        [
            [
                "vendor IV native",
                "-",
                native_result.drive_report.tpr,
                native_result.drive_report.fpr,
                native_result.drive_report.auc,
            ],
            [
                "I -> IV transfer",
                transfer.alpha,
                transfer_result.drive_report.tpr,
                transfer_result.drive_report.fpr,
                transfer_result.drive_report.auc,
            ],
        ],
        title="Extension: cross-vendor transfer for the minority vendor (cf. [20])",
    )
    save_exhibit("ext_transfer", table)

    assert 0.0 <= transfer.alpha <= 1.0
    assert (
        transfer_result.drive_report.auc >= native_result.drive_report.auc - 0.05
    ), "transfer must be competitive with the native minority model"
