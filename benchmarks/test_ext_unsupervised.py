"""Extension bench — how far do you get with no failure labels at all?

CSS labels are expensive (tickets require manual matching, §III-C(2)).
An unsupervised isolation forest scores anomalies from telemetry shape
alone; this bench quantifies the gap to the supervised SFWB model —
the value of the paper's labeling machinery in one number.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.core.features import FeatureAssembler, feature_group
from repro.core.labeling import build_samples
from repro.ml.isolation_forest import IsolationForest
from repro.ml.metrics import auc_score
from repro.reporting import render_table


@pytest.mark.benchmark(group="ext-unsupervised")
def test_ext_unsupervised_baseline(benchmark, fleet_vendor_i):
    supervised = MFPA(MFPAConfig())
    supervised.fit(fleet_vendor_i, train_end_day=TRAIN_END)
    prepared = supervised.dataset_

    samples = build_samples(prepared, supervised.failure_times_, positive_window=14)
    evaluation = (samples.days >= TRAIN_END) & (samples.days < EVAL_END)
    rows = samples.row_indices[evaluation]
    labels = samples.labels[evaluation]

    assembler = FeatureAssembler(feature_group("SFWB").columns)
    train_mask = samples.days < TRAIN_END
    X_train = assembler.assemble(prepared.columns, samples.row_indices[train_mask])
    X_eval = assembler.assemble(prepared.columns, rows)

    def run_unsupervised():
        forest = IsolationForest(n_estimators=80, max_samples=256, seed=0)
        forest.fit(X_train)  # no labels
        return forest.anomaly_score(X_eval)

    anomaly_scores = benchmark.pedantic(run_unsupervised, rounds=1, iterations=1)
    unsupervised_auc = auc_score(labels, anomaly_scores)
    supervised_auc = auc_score(labels, supervised.predict_proba_rows(rows))

    table = render_table(
        ["Model", "Labels used", "Record-level AUC"],
        [
            ["SFWB random forest (MFPA)", "yes", supervised_auc],
            ["Isolation forest", "no", unsupervised_auc],
        ],
        title="Extension: supervised MFPA vs unsupervised anomaly detection",
    )
    save_exhibit("ext_unsupervised", table)

    assert unsupervised_auc > 0.55, "telemetry shape alone must carry signal"
    assert supervised_auc > unsupervised_auc, "labels must buy real accuracy"
