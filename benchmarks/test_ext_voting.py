"""Extension bench — soft-voting ensemble across algorithm families.

The paper evaluates its five algorithms separately; this bench blends
three complementary families (forest, boosting, logistic) and also
prints the ticket repair-lag coverage that justifies θ=7 (§III-C(2))
— two small exhibits that round out the evaluation.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.analysis.ticket_lag import repair_lag_distribution, theta_coverage
from repro.core import MFPA, MFPAConfig
from repro.ml import (
    GradientBoostingClassifier,
    LogisticRegression,
    RandomForestClassifier,
    VotingClassifier,
)
from repro.reporting import render_table


@pytest.mark.benchmark(group="ext-voting")
def test_ext_voting_ensemble(benchmark, fleet_vendor_i):
    ensemble = VotingClassifier(
        [
            ("rf", RandomForestClassifier(n_estimators=30, max_depth=12, seed=0)),
            ("gbdt", GradientBoostingClassifier(n_estimators=50, max_depth=3, seed=0)),
            ("logit", LogisticRegression(n_iterations=200, class_weight="balanced")),
        ]
    )

    def run(algorithm):
        model = MFPA(MFPAConfig(algorithm=algorithm))
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        return model.evaluate(TRAIN_END, EVAL_END).drive_report

    voted = benchmark.pedantic(run, args=(ensemble,), rounds=1, iterations=1)
    forest_only = run(RandomForestClassifier(n_estimators=30, max_depth=12, seed=0))

    table = render_table(
        ["Model", "TPR", "FPR", "AUC"],
        [
            ["RF alone", forest_only.tpr, forest_only.fpr, forest_only.auc],
            ["RF+GBDT+logit vote", voted.tpr, voted.fpr, voted.auc],
        ],
        title="Extension: soft-voting across algorithm families",
    )

    lag = repair_lag_distribution(fleet_vendor_i)
    coverage = theta_coverage(fleet_vendor_i)
    table += "\n\n" + render_table(
        ["theta", "tickets precisely labeled"],
        [[row["theta"], row["share_within"]] for row in coverage],
        title=(
            "Ticket repair-lag coverage (median lag "
            f"{lag['median']:.0f}d, p90 {lag['p90']:.0f}d) — why theta=7"
        ),
    )
    save_exhibit("ext_voting", table)

    assert voted.auc >= forest_only.auc - 0.02
    by_theta = {row["theta"]: row["share_within"] for row in coverage}
    assert by_theta[7] >= 0.5
    assert by_theta[21] >= by_theta[7]