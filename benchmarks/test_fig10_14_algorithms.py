"""Figs 10 + 14 — MFPA portability across ML algorithms.

Paper: every traditional algorithm clears 95% TPR on SFWB; RF is best
(98.18% / 0.56%); CNN_LSTM lags (94.74% TPR, 12.98% FPR) because
discontinuous CSS data hurts the sequence model. Reproduced shape:
tree ensembles lead, the sequence model trails on FPR/AUC.

Bayes and SVM run with the paper's sequential-forward-selection stage
(§III-C(5)) — without it the time-drifting cumulative counters swamp
them (see core/test_pipeline.py for the unit-level demonstration).
Every model's alarm threshold is calibrated on a held-out validation
slice (fit through day 300, calibrate on 300-360, test on 360-480):
noisy scorers hover near 0.5 on healthy records, and the drive-level
"any record alarms" rule would otherwise compound that into an
unusable FPR.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.ml import (
    CNNLSTMClassifier,
    GaussianNaiveBayes,
    GradientBoostingClassifier,
    LinearSVM,
    RandomForestClassifier,
)
from repro.ml.tree import DecisionTreeClassifier
from repro.reporting import render_table


def _configs():
    selection_kwargs = dict(
        feature_selection=True,
        selection_estimator=DecisionTreeClassifier(max_depth=5, seed=0),
    )
    return {
        "Bayes": MFPAConfig(algorithm=GaussianNaiveBayes(), **selection_kwargs),
        "SVM": MFPAConfig(algorithm=LinearSVM(n_epochs=20, seed=0), **selection_kwargs),
        "RF": MFPAConfig(
            algorithm=RandomForestClassifier(n_estimators=60, max_depth=12, seed=0)
        ),
        "GBDT": MFPAConfig(
            algorithm=GradientBoostingClassifier(n_estimators=80, max_depth=3, seed=0)
        ),
        "CNN_LSTM": MFPAConfig(
            algorithm=CNNLSTMClassifier(
                time_steps=5,
                conv_channels=8,
                hidden_size=16,
                n_epochs=15,
                seed=0,
            ),
            history_length=5,
            **selection_kwargs,
        ),
    }


CALIBRATION_DAYS = 60


@pytest.mark.benchmark(group="fig10")
def test_fig10_14_algorithms(benchmark, fleet_vendor_i):
    configs = _configs()

    def run(name):
        model = MFPA(configs[name])
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END - CALIBRATION_DAYS)
        model.calibrate_threshold(
            TRAIN_END - CALIBRATION_DAYS, TRAIN_END, max_fpr=0.01
        )
        return model.evaluate(TRAIN_END, EVAL_END)

    headline = benchmark.pedantic(run, args=("RF",), rounds=1, iterations=1)
    results = {"RF": headline}
    for name in configs:
        if name not in results:
            results[name] = run(name)

    order = ("Bayes", "SVM", "RF", "GBDT", "CNN_LSTM")
    rows = [
        [
            name,
            results[name].drive_report.tpr,
            results[name].drive_report.fpr,
            results[name].drive_report.accuracy,
            results[name].drive_report.auc,
        ]
        for name in order
    ]
    table = render_table(
        ["Algorithm", "TPR", "FPR", "ACC", "AUC"],
        rows,
        title="Figs 10+14: algorithm portability on SFWB (paper: RF best, CNN_LSTM weakest)",
    )
    save_exhibit("fig10_14_algorithms", table)

    reports = {name: results[name].drive_report for name in order}
    # Every algorithm catches the bulk of failures.
    for name in order:
        assert reports[name].tpr >= 0.75, name
    # Tree ensembles lead on AUC; the sequence model does not win.
    tree_auc = max(reports["RF"].auc, reports["GBDT"].auc)
    assert tree_auc >= reports["CNN_LSTM"].auc - 0.02
    assert tree_auc >= reports["Bayes"].auc - 0.02
