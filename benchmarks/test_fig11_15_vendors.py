"""Figs 11 + 15 — MFPA portability across SSD vendors.

Paper: per-vendor SFWB models reach 98.81% / 96.89% / 97.41% AUC for
vendors I-III; vendor IV's model works less well because it has the
fewest faulty drives. Reproduced shape: I-III strong, IV weakest.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.reporting import render_table

VENDOR_ORDER = ("I", "II", "III", "IV")


@pytest.mark.benchmark(group="fig11")
def test_fig11_15_vendor_portability(benchmark, per_vendor_fleets):
    def run(vendor):
        model = MFPA(MFPAConfig(feature_group_name="SFWB"))
        model.fit(per_vendor_fleets[vendor], train_end_day=TRAIN_END)
        return model.evaluate(TRAIN_END, EVAL_END)

    headline = benchmark.pedantic(run, args=("I",), rounds=1, iterations=1)
    results = {"I": headline}
    for vendor in VENDOR_ORDER[1:]:
        results[vendor] = run(vendor)

    rows = []
    for vendor in VENDOR_ORDER:
        report = results[vendor].drive_report
        rows.append(
            [
                vendor,
                results[vendor].n_faulty_drives,
                report.tpr,
                report.fpr,
                report.auc,
            ]
        )
    table = render_table(
        ["Vendor", "Faulty (eval)", "TPR", "FPR", "AUC"],
        rows,
        title="Figs 11+15: vendor portability (paper: I-III ~97-99% AUC, IV weakest)",
    )
    save_exhibit("fig11_15_vendors", table)

    reports = {v: results[v].drive_report for v in VENDOR_ORDER}
    for vendor in ("I", "II", "III"):
        assert reports[vendor].auc >= 0.90, vendor
    # Vendor IV has the fewest failures -> the least stable model.
    assert results["IV"].n_faulty_drives == min(
        results[v].n_faulty_drives for v in VENDOR_ORDER
    )
