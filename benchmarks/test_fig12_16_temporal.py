"""Figs 12 + 16 — temporal robustness: months of prediction, no retraining.

Paper: a model trained once keeps its TPR stable for ~5 months while
FPR creeps upward after 2-3 months (vendor I's FPR reaches 1.34% in
month 3), motivating periodic iteration. Reproduced shape: TPR stays
high across months; the late-month FPR does not improve on the early
months.
"""

import numpy as np
import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import TRAIN_END
from repro.analysis.temporal import rolling_monthly_evaluation
from repro.reporting import render_table

N_MONTHS = 5
MONTH_DAYS = 30


@pytest.mark.benchmark(group="fig12")
def test_fig12_16_temporal_robustness(benchmark, fitted_sfwb):
    rows = benchmark(
        rolling_monthly_evaluation,
        fitted_sfwb,
        TRAIN_END,
        N_MONTHS,
        MONTH_DAYS,
    )

    table = render_table(
        ["Month", "Period", "Faulty", "Healthy", "TPR", "FPR", "AUC"],
        [
            [
                row["month"],
                f"{row['period'][0]}-{row['period'][1]}",
                row["n_faulty"],
                row["n_healthy"],
                row["tpr"],
                row["fpr"],
                row["auc"],
            ]
            for row in rows
        ],
        title="Figs 12+16: continuous prediction without iteration (paper: FPR creeps up by month 3)",
    )
    save_exhibit("fig12_16_temporal", table)

    evaluated = [row for row in rows if row["n_faulty"] > 0]
    assert len(evaluated) >= 3, "need several evaluable months"
    # TPR stays serviceable throughout.
    tprs = [row["tpr"] for row in evaluated]
    assert np.nanmean(tprs) >= 0.8
    # FPR in the later months does not drop below the first month's —
    # the drift direction the paper reports.
    fprs = [row["fpr"] for row in rows if row["n_healthy"] > 0]
    assert fprs[-1] >= fprs[0] - 0.02
