"""Figs 13-16 companion — ROC curves behind the reported AUCs.

Figs 13-16 of the paper are the AUC counterparts of Figs 9-12. The
other benches report the AUC numbers; this one renders the actual ROC
operating points for the headline comparison (SFWB vs S at drive
level), making the trade-off the AUC summarizes visible.
"""

import numpy as np
import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.ml.metrics import auc_score, roc_curve
from repro.reporting import render_table


def _drive_scores(model, start, end):
    """Drive-level (truth, max-probability score) over a period."""
    prepared = model.dataset_
    row_slices = prepared._row_slices()
    truths, scores = [], []
    for serial in prepared.drives:
        rows = prepared.drive_rows(serial)
        days = rows["day"]
        if serial in model.failure_times_:
            failure_time = model.failure_times_[serial]
            if not start <= failure_time < end:
                continue
            in_window = (days > failure_time - model.config.positive_window) & (
                days <= failure_time
            )
            truth = 1
        else:
            in_window = (days >= start) & (days < end)
            truth = 0
        if not np.any(in_window):
            continue
        base = row_slices[serial].start
        probabilities = model.predict_proba_rows(base + np.flatnonzero(in_window))
        truths.append(truth)
        scores.append(float(probabilities.max()))
    return np.asarray(truths), np.asarray(scores)


@pytest.mark.benchmark(group="fig13-16")
def test_fig13_16_roc_curves(benchmark, fleet_vendor_i):
    models = {}
    for group in ("SFWB", "S"):
        model = MFPA(MFPAConfig(feature_group_name=group))
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        models[group] = model

    def score_both():
        return {
            group: _drive_scores(model, TRAIN_END, EVAL_END)
            for group, model in models.items()
        }

    scored = benchmark(score_both)

    sections = []
    aucs = {}
    for group, (truths, scores) in scored.items():
        fpr, tpr, thresholds = roc_curve(truths, scores)
        aucs[group] = auc_score(truths, scores)
        # Subsample the curve to ~10 readable points.
        step = max(1, fpr.size // 10)
        indices = list(range(0, fpr.size, step))
        if indices[-1] != fpr.size - 1:
            indices.append(fpr.size - 1)
        sections.append(
            render_table(
                ["Threshold", "FPR", "TPR"],
                [[thresholds[i], fpr[i], tpr[i]] for i in indices],
                title=f"ROC — {group} (drive-level AUC {aucs[group]:.4f})",
            )
        )
    save_exhibit("fig13_16_roc", "\n\n".join(sections))

    assert aucs["SFWB"] >= aucs["S"], "SFWB ROC must dominate SMART-only"
    assert aucs["SFWB"] >= 0.95
