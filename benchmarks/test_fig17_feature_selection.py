"""Fig 17 — sequential forward selection improves the model.

Paper: selection lifts TPR from 0.926 to 0.9818 and cuts FPR from 0.023
to 0.0056; Available Spare Threshold is dead weight while media errors,
power cycles, W_11/W_49/W_51/W_161 and B_50/B_7A matter. Both models
are compared at calibrated operating points (validation FPR budget 1%)
so the comparison isolates the feature subset rather than a threshold
artifact. Reproduced shape: the selected subset matches the full set's
AUC with ~5x fewer features and never includes the constant
spare-threshold column.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.ml.tree import DecisionTreeClassifier
from repro.reporting import render_table

CALIBRATION_DAYS = 60
FIT_END = TRAIN_END - CALIBRATION_DAYS


def _fit_and_calibrate(config, fleet):
    model = MFPA(config)
    model.fit(fleet, train_end_day=FIT_END)
    model.calibrate_threshold(FIT_END, TRAIN_END, max_fpr=0.01)
    return model, model.evaluate(TRAIN_END, EVAL_END)


@pytest.mark.benchmark(group="fig17")
def test_fig17_feature_selection(benchmark, fleet_vendor_i):
    def run_selected():
        config = MFPAConfig(
            feature_selection=True,
            selection_estimator=DecisionTreeClassifier(max_depth=5, seed=0),
            selection_max_features=10,
        )
        return _fit_and_calibrate(config, fleet_vendor_i)

    selected_model, selected_result = benchmark.pedantic(
        run_selected, rounds=1, iterations=1
    )
    full_model, full_result = _fit_and_calibrate(MFPAConfig(), fleet_vendor_i)

    trajectory = render_table(
        ["Step", "Added feature", "CV Youden (TPR-FPR)"],
        [
            [i + 1, column, score]
            for i, (column, score) in enumerate(selected_model.selection_history_)
        ],
        title="Fig 17: forward-selection trajectory",
    )
    comparison = render_table(
        ["Model", "#features", "Threshold", "TPR", "FPR", "AUC"],
        [
            [
                "full SFWB",
                45,
                full_model.config.decision_threshold,
                full_result.drive_report.tpr,
                full_result.drive_report.fpr,
                full_result.drive_report.auc,
            ],
            [
                "selected subset",
                len(selected_model.assembler_.columns),
                selected_model.config.decision_threshold,
                selected_result.drive_report.tpr,
                selected_result.drive_report.fpr,
                selected_result.drive_report.auc,
            ],
        ],
        title="Fig 17: before/after selection at calibrated thresholds "
        "(paper: TPR 0.926 -> 0.9818, FPR 0.023 -> 0.0056)",
    )
    save_exhibit("fig17_feature_selection", trajectory + "\n\n" + comparison)

    chosen = set(selected_model.assembler_.columns)
    assert "s4_spare_threshold" not in chosen, "constant threshold must be dropped"
    assert len(chosen) < 45
    # The compressed subset must stay competitive on AUC and at its
    # calibrated operating point.
    assert selected_result.drive_report.auc >= full_result.drive_report.auc - 0.03
    assert selected_result.drive_report.tpr >= 0.85
    assert selected_result.drive_report.fpr <= 0.08
    # The selection trajectory is non-decreasing by construction.
    scores = [score for _, score in selected_model.selection_history_]
    assert all(b >= a for a, b in zip(scores, scores[1:]))
