"""Fig 18 — MFPA vs state-of-the-art SSD failure predictors [19]-[22].

Paper: MFPA beats the four prior-work models, which lack the
multidimensional CSS features. Each comparator is reproduced as its
feature diet + algorithm recipe running through the identical pipeline,
so the only difference is what the paper claims matters: the features.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.core.baselines import MFPA_RECIPE, SOTA_RECIPES
from repro.reporting import render_table


@pytest.mark.benchmark(group="fig18")
def test_fig18_sota_comparison(benchmark, fleet_vendor_i):
    def run(recipe):
        config = MFPAConfig(
            feature_columns=recipe.columns,
            algorithm=recipe.make_estimator(),
            history_length=recipe.history_length,
        )
        model = MFPA(config)
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        return model.evaluate(TRAIN_END, EVAL_END)

    headline = benchmark.pedantic(run, args=(MFPA_RECIPE,), rounds=1, iterations=1)

    results = {MFPA_RECIPE.name: (MFPA_RECIPE, headline)}
    for recipe in SOTA_RECIPES:
        results[recipe.name] = (recipe, run(recipe))

    rows = []
    for name, (recipe, result) in results.items():
        report = result.drive_report
        rows.append([name, recipe.citation, report.tpr, report.fpr, report.auc])
    table = render_table(
        ["Model", "Source", "TPR", "FPR", "AUC"],
        rows,
        title="Fig 18: MFPA vs state-of-the-art (paper: MFPA best)",
    )
    save_exhibit("fig18_sota", table)

    mfpa_auc = results[MFPA_RECIPE.name][1].drive_report.auc
    for name, (_, result) in results.items():
        if name == MFPA_RECIPE.name:
            continue
        assert mfpa_auc >= result.drive_report.auc - 0.01, name
