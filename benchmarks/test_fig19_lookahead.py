"""Fig 19 — TPR across lookahead windows (predict N days ahead).

Paper: MFPA holds ~89% TPR predicting 5 days ahead, degrading to
~55.66% at N=20 because far-from-failure feature values resemble
healthy drives. Reproduced shape: TPR decreases (weakly monotone) with
the lookahead distance.
"""

import numpy as np
import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.reporting import render_series, render_table

LOOKAHEADS = (0, 3, 5, 8, 12, 16, 20)


@pytest.mark.benchmark(group="fig19")
def test_fig19_lookahead_windows(benchmark, fleet_vendor_i):
    def run(lookahead):
        model = MFPA(MFPAConfig(positive_window=7, lookahead=lookahead))
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        return model.evaluate(TRAIN_END, EVAL_END).drive_report

    headline = benchmark.pedantic(run, args=(5,), rounds=1, iterations=1)
    reports = {5: headline}
    for lookahead in LOOKAHEADS:
        if lookahead not in reports:
            reports[lookahead] = run(lookahead)

    rows = [[n, reports[n].tpr, reports[n].fpr, reports[n].auc] for n in LOOKAHEADS]
    table = render_table(
        ["Lookahead N (days)", "TPR", "FPR", "AUC"],
        rows,
        title="Fig 19: TPR vs lookahead window (paper: 89% at N=5, 55.66% at N=20)",
    )
    chart = render_series(
        "tpr",
        [str(n) for n in LOOKAHEADS],
        [reports[n].tpr for n in LOOKAHEADS],
        title="Fig 19 (chart)",
    )
    save_exhibit("fig19_lookahead", table + "\n\n" + chart)

    tprs = np.array([reports[n].tpr for n in LOOKAHEADS])
    assert tprs[0] >= 0.85, "near-failure prediction must be strong"
    assert tprs[-1] <= tprs[0], "TPR must degrade with distance"
    # Weak monotonicity: a linear fit over N must slope downward.
    slope = np.polyfit(LOOKAHEADS, tprs, 1)[0]
    assert slope < 0
