"""Fig 20 — per-stage overhead of the MFPA pipeline.

Paper: feature engineering dominates the data-item count and execution
time; scoring 4M records takes ~3 minutes (i.e. >20k records/s).
Reproduced shape: feature engineering touches the most items, and
prediction throughput clears tens of thousands of records per second.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.analysis.overhead import overhead_rows
from repro.core import MFPA, MFPAConfig
from repro.reporting import render_table


@pytest.mark.benchmark(group="fig20")
def test_fig20_stage_overhead(benchmark, fleet_vendor_i):
    def full_pipeline():
        model = MFPA(MFPAConfig())
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        model.evaluate(TRAIN_END, EVAL_END)
        return model

    model = benchmark.pedantic(full_pipeline, rounds=1, iterations=1)
    rows = overhead_rows(model)

    table = render_table(
        ["Stage", "Data items", "Seconds", "Items/s"],
        [[r["stage"], r["n_items"], r["seconds"], r["items_per_second"]] for r in rows],
        title="Fig 20: MFPA overhead per stage (paper: feature engineering dominates items)",
    )
    save_exhibit("fig20_overhead", table)

    by_stage = {row["stage"]: row for row in rows}
    assert by_stage["feature_engineering"]["n_items"] == max(
        row["n_items"] for row in rows
    )
    # The paper's deployment story: ~4M records in ~3 minutes (>20k/s).
    assert by_stage["prediction"]["items_per_second"] > 5_000
