"""Fig 2 — failure distribution over power-on time (bathtub curve).

Paper: failure numbers are higher in infancy, stabilize, then rise in
wear-out. The bench plots the failure histogram and the empirical
hazard; the asserted shape is early > middle and late > middle hazard.
"""

import numpy as np
import pytest

from benchmarks._util import save_exhibit
from repro.analysis.bathtub import bathtub_shape_summary, failure_time_distribution
from repro.reporting import render_series


@pytest.mark.benchmark(group="fig2")
def test_fig2_failure_distribution(benchmark, fleet_all_vendors):
    result = benchmark(
        failure_time_distribution, fleet_all_vendors, n_buckets=9, by="power_on_hours"
    )
    by_day = failure_time_distribution(fleet_all_vendors, n_buckets=9, by="day")

    centers = (result["edges"][:-1] + result["edges"][1:]) / 2
    chart = render_series(
        "failures",
        [f"{c:7.0f}h" for c in centers],
        result["counts"].astype(float).tolist(),
        title="Fig 2: Failure distribution vs power-on hours (counts)",
    )
    day_centers = (by_day["edges"][:-1] + by_day["edges"][1:]) / 2
    chart += "\n\n" + render_series(
        "hazard",
        [f"{c:6.0f}d" for c in day_centers],
        by_day["hazard"].tolist(),
        title="Fig 2 (normalized): empirical hazard per calendar-age bucket",
    )
    save_exhibit("fig2_bathtub", chart)

    # Infant mortality shows on the paper's power-on-hours axis; the
    # full bathtub (including the wear-out rise) is asserted on the
    # exposure-corrected calendar-age hazard, where usage-rate noise
    # does not blur the tail.
    poh_summary = bathtub_shape_summary(result["hazard"])
    assert poh_summary["early"] > poh_summary["middle"], "infant mortality must be visible"
    day_summary = bathtub_shape_summary(by_day["hazard"])
    assert day_summary["early"] > day_summary["middle"]
    assert day_summary["late"] > day_summary["middle"], "wear-out rise must be visible"
    assert result["counts"].sum() == fleet_all_vendors.failed_serials().size
