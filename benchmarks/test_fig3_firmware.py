"""Fig 3 — failure rate per firmware version.

Paper: for every vendor, the earlier the firmware version the higher
the failure rate; vendor I's I_F_1/I_F_2 stand out. The bench computes
per-version rates and asserts the within-vendor downward trend.
"""

import pytest

from benchmarks._util import save_exhibit
from repro.analysis.firmware_rates import (
    firmware_failure_rates,
    is_monotone_decreasing_per_vendor,
)
from repro.reporting import render_series, render_table


@pytest.mark.benchmark(group="fig3")
def test_fig3_firmware_failure_rates(benchmark, fleet_all_vendors):
    rows = benchmark(firmware_failure_rates, fleet_all_vendors)

    table = render_table(
        ["Firmware", "Drives", "Failures", "Failure rate"],
        [[r["firmware"], r["n_drives"], r["n_failures"], r["failure_rate"]] for r in rows],
        title="Fig 3: Failure rate of firmware versions",
    )
    chart = render_series(
        "failure_rate",
        [r["firmware"] for r in rows],
        [r["failure_rate"] for r in rows],
        title="Fig 3 (chart)",
    )
    save_exhibit("fig3_firmware", table + "\n\n" + chart)

    assert is_monotone_decreasing_per_vendor(rows, slack=0.05)
    by_name = {r["firmware"]: r["failure_rate"] for r in rows}
    # Vendor I's oldest firmware is the worst in the whole fleet.
    assert by_name["I_F_1"] == max(by_name.values())
    # Ladder lengths match Fig 3: 5 / 3 / 2 / 2 versions.
    for vendor, expected in (("I", 5), ("II", 3), ("III", 2), ("IV", 2)):
        count = sum(1 for r in rows if r["vendor"] == vendor)
        assert count == expected, vendor
