"""Figs 4 and 5 — cumulative W_161 / B_50 counts, faulty vs healthy.

Paper: faulty SSDs (F1-F4) accumulate visibly more W_161 Windows events
and B_50 blue screens than healthy ones (N1-N4) in the run-up to
failure. The bench samples four of each and also checks the population
means separate.
"""

import pytest

from benchmarks._util import save_exhibit
from repro.analysis.cumulative_events import (
    cumulative_event_trajectories,
    mean_final_cumulative,
)
from repro.reporting import render_table
from repro.telemetry.bsod import B_50_COLUMN


def _exhibit(dataset, column, title):
    trajectories = cumulative_event_trajectories(
        dataset, column, n_faulty=4, n_healthy=4, window_days=60, seed=3
    )
    rows = []
    for kind, prefix in (("faulty", "F"), ("healthy", "N")):
        for index, entry in enumerate(trajectories[kind], start=1):
            final = entry["cumulative"][-1] if entry["cumulative"].size else 0.0
            rows.append([f"{prefix}{index}", entry["serial"], int(final)])
    means = mean_final_cumulative(dataset, column, window_days=60)
    table = render_table(
        ["Drive", "Serial", "Cumulative count (last 60 days)"], rows, title=title
    )
    table += (
        f"\npopulation means: faulty {means['faulty']:.2f}, "
        f"healthy {means['healthy']:.2f}"
    )
    return table, means


@pytest.mark.benchmark(group="fig4")
def test_fig4_cumulative_w161(benchmark, fleet_vendor_i):
    table, means = benchmark(
        _exhibit, fleet_vendor_i, "w161_fs_io_error", "Fig 4: cumulative W_161"
    )
    save_exhibit("fig4_w161", table)
    assert means["faulty"] > 2 * means["healthy"]


@pytest.mark.benchmark(group="fig5")
def test_fig5_cumulative_b50(benchmark, fleet_vendor_i):
    table, means = benchmark(
        _exhibit, fleet_vendor_i, B_50_COLUMN, "Fig 5: cumulative B_50"
    )
    save_exhibit("fig5_b50", table)
    assert means["faulty"] > 2 * means["healthy"]
