"""Fig 6 — discontinuity of consumer telemetry.

Paper: faulty drives' logs arrive on scattered days (F3 logged only on
(0, 11-14)); MFPA's gap thresholds (drop >= 10, fill <= 3) act on this
structure. The bench prints faulty-drive timelines and the fleet's gap
profile.
"""

import pytest

from benchmarks._util import save_exhibit
from repro.analysis.discontinuity import discontinuity_profile, drive_log_timelines
from repro.reporting import render_table


def _timeline_text(days, limit=30):
    shown = ", ".join(str(int(d)) for d in days[:limit])
    return shown + (" ..." if days.size > limit else "")


@pytest.mark.benchmark(group="fig6")
def test_fig6_discontinuity(benchmark, fleet_vendor_i):
    profile = benchmark(discontinuity_profile, fleet_vendor_i, True)

    timelines = drive_log_timelines(fleet_vendor_i, limit=5)
    rows = [
        [f"F{i}", t["serial"], t["n_records"], t["max_gap"], _timeline_text(t["days"], 12)]
        for i, t in enumerate(timelines, start=1)
    ]
    table = render_table(
        ["Drive", "Serial", "Records", "Max gap", "Log days"],
        rows,
        title="Fig 6: log timelines of faulty drives (vendor I)",
    )
    buckets = profile["gap_buckets"]
    table += "\n\n" + render_table(
        ["Gap (missing days)", "Count"],
        [[k, v] for k, v in buckets.items()],
        title="Gap-length profile across faulty drives",
    )
    table += f"\nshare of faulty drives with a >=10-day gap: {profile['share_with_long_gap']:.2%}"
    save_exhibit("fig6_discontinuity", table)

    # Consumer telemetry must actually be discontinuous for MFPA's
    # repair stage to matter.
    assert buckets["1-3"] > 0
    assert buckets["4-9"] > 0
    assert profile["share_with_long_gap"] > 0.02
