"""Fig 7 / θ sensitivity — identification of the eventual failure time.

The paper sets θ=7 via a sensitivity test: too-high θ labels failure
times where the drive still looks healthy (raising FPR-like error);
too-low θ leaves faulty drives without nearby data (reducing TPR). We
sweep θ and report (a) the labeling error vs the *true* simulated
failure day — ground truth the paper never had — and (b) model TPR/FPR.
"""

import numpy as np
import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.core.labeling import FailureTimeIdentifier
from repro.core.preprocess import preprocess
from repro.reporting import render_table

THETAS = (1, 3, 5, 7, 10, 14, 21)


@pytest.mark.benchmark(group="fig7")
def test_fig7_theta_sensitivity(benchmark, fleet_vendor_i):
    prepared, _, _ = preprocess(fleet_vendor_i)

    def labeling_errors():
        errors = {}
        for theta in THETAS:
            identified = FailureTimeIdentifier(theta=theta).identify(prepared)
            deltas = [
                abs(identified[s] - prepared.drives[s].failure_day)
                for s in identified
            ]
            errors[theta] = (float(np.median(deltas)), float(np.mean(deltas)))
        return errors

    errors = benchmark(labeling_errors)

    rows = []
    reports = {}
    for theta in THETAS:
        model = MFPA(MFPAConfig(theta=theta))
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        report = model.evaluate(TRAIN_END, EVAL_END).drive_report
        reports[theta] = report
        median_err, mean_err = errors[theta]
        rows.append([theta, median_err, mean_err, report.tpr, report.fpr, report.auc])

    table = render_table(
        ["theta", "median |err|", "mean |err|", "TPR", "FPR", "AUC"],
        rows,
        title="Fig 7 / theta sensitivity: failure-time identification",
    )
    save_exhibit("fig7_theta", table)

    # θ=7 must be competitive: within a whisker of the best AUC.
    best_auc = max(report.auc for report in reports.values())
    assert reports[7].auc >= best_auc - 0.05
    # Labeling error should be small at moderate θ.
    assert errors[7][0] <= 7
