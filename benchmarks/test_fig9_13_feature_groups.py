"""Figs 9 + 13 — MFPA performance across the seven feature groups.

Paper: SFWB performs best (TPR 98.18%, FPR 0.56%); SF trails (95.37%,
3.58%); S alone is the weakest full-dimension group; W and B alone are
informative but incomplete. The reproduced shape: SFWB's AUC tops the
table, S underperforms SFWB, and W/B alone sit below the multidim
groups on TPR.
"""

import pytest

from benchmarks._util import save_exhibit
from benchmarks.conftest import EVAL_END, TRAIN_END
from repro.core import MFPA, MFPAConfig
from repro.reporting import render_table

GROUPS = ("SFWB", "SFW", "SFB", "SF", "S", "W", "B")


@pytest.mark.benchmark(group="fig9")
def test_fig9_13_feature_groups(benchmark, fleet_vendor_i):
    def run_group(name):
        model = MFPA(MFPAConfig(feature_group_name=name))
        model.fit(fleet_vendor_i, train_end_day=TRAIN_END)
        return model.evaluate(TRAIN_END, EVAL_END)

    # Benchmark the full end-to-end run of the headline group.
    headline = benchmark.pedantic(run_group, args=("SFWB",), rounds=1, iterations=1)

    results = {"SFWB": headline}
    for name in GROUPS[1:]:
        results[name] = run_group(name)

    rows = []
    for name in GROUPS:
        report = results[name].drive_report
        rows.append([name, report.tpr, report.fpr, report.accuracy, report.pdr, report.auc])
    table = render_table(
        ["Group", "TPR", "FPR", "ACC", "PDR", "AUC"],
        rows,
        title=(
            "Figs 9+13: feature groups (drive-level, "
            f"eval days {TRAIN_END}-{EVAL_END}; paper: SFWB 98.18%/0.56%)"
        ),
    )
    save_exhibit("fig9_13_feature_groups", table)

    reports = {name: results[name].drive_report for name in GROUPS}
    best_auc = max(report.auc for report in reports.values())
    assert reports["SFWB"].auc >= best_auc - 0.01, "SFWB must (co-)lead on AUC"
    assert reports["SFWB"].tpr >= reports["S"].tpr, "adding W/B must not hurt TPR"
    assert reports["SFWB"].fpr <= reports["S"].fpr + 0.02
    # W or B alone are weaker than the full multidimensional set.
    assert reports["SFWB"].auc >= max(reports["W"].auc, reports["B"].auc)
