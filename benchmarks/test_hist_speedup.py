"""Exact-vs-histogram split-backend wall-clock (``make bench-hist``).

Times forest and GBDT training with ``split_algorithm="exact"`` vs
``"hist"`` at ``n_jobs=1``, reruns the Table-V SFWB experiment under
both backends to record the drive-level TPR/FPR deltas, and writes
machine-readable JSON under ``benchmarks/results/hist_speedup.json``
(same shape as ``parallel_speedup.json``) so the speedup and the
accuracy cost of binning are tracked alongside the paper exhibits.

The hist timings include the quantile bin build (the cache is cleared
first), so the recorded speedups are end-to-end, not marginal. Three
training shapes are covered because the backend's advantage differs by
an order of magnitude across them:

- ``forest_fit_sqrt`` — ``max_features="sqrt"`` disables the
  parent-minus-sibling histogram subtraction (children sample different
  feature subsets), so every node pays a fresh ``bincount``.
- ``forest_fit_full`` — all features per split enables subtraction;
  each right child's histogram is derived instead of recomputed.
- ``gbdt_fit`` — many shallow trees over the *same* rows: one bin
  build is amortized across every boosting round.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks._util import RESULTS_DIR, save_exhibit
from repro.core import MFPA, MFPAConfig
from repro.ml.binning import clear_binned_cache
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import GradientBoostingClassifier
from repro.obs import get_registry
from repro.parallel import fork_available
from repro.reporting import render_table

from benchmarks.conftest import EVAL_END, TRAIN_END

pytestmark = pytest.mark.hist_bench

#: The drive-level Table-V deltas the hist backend must stay within.
PARITY_TOLERANCE = 0.005


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _training_data(n_samples=6000, n_features=16, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n_samples, n_features))
    y = (X[:, 0] + 0.5 * X[:, 3] - X[:, 7] + rng.normal(0, 0.7, n_samples) > 0).astype(
        int
    )
    return X, y


def _bench_forest(max_features, n_estimators):
    X, y = _training_data()

    def fit(split_algorithm):
        clear_binned_cache()
        return RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=None,
            max_features=max_features,
            split_algorithm=split_algorithm,
            seed=0,
            n_jobs=1,
        ).fit(X, y)

    exact, exact_seconds = _timed(lambda: fit("exact"))
    hist, hist_seconds = _timed(lambda: fit("hist"))
    agreement = (exact.predict(X) == hist.predict(X)).mean()
    assert agreement >= 0.99, f"forest backends disagree: {agreement:.3f}"
    return exact_seconds, hist_seconds


def _bench_gbdt():
    X, y = _training_data()

    def fit(split_algorithm):
        clear_binned_cache()
        return GradientBoostingClassifier(
            n_estimators=60, max_depth=3, split_algorithm=split_algorithm, seed=0
        ).fit(X, y)

    exact, exact_seconds = _timed(lambda: fit("exact"))
    hist, hist_seconds = _timed(lambda: fit("hist"))
    # Continuous gaussian features make the 64-bin quantile grid lossy,
    # so boosted stumps near the decision boundary may flip; this is a
    # sanity check, the accuracy pin is the Table-V parity section.
    agreement = (exact.predict(X) == hist.predict(X)).mean()
    assert agreement >= 0.95, f"gbdt backends disagree: {agreement:.3f}"
    return exact_seconds, hist_seconds


def _table_v_reports(fleet_vendor_i):
    """Fit the Table-V SFWB model under both backends; return reports."""
    out = {}
    for split_algorithm in ("exact", "hist"):
        clear_binned_cache()
        model = MFPA(
            MFPAConfig(feature_group_name="SFWB", split_algorithm=split_algorithm)
        )
        _, fit_seconds = _timed(lambda: model.fit(fleet_vendor_i, TRAIN_END))
        result = model.evaluate(TRAIN_END, EVAL_END)
        out[split_algorithm] = (result, fit_seconds)
    return out


def test_hist_speedup(fleet_vendor_i):
    bin_build = get_registry().histogram("tree_bin_build_seconds")
    builds0, build_seconds0 = bin_build.count, bin_build.sum

    # Table-V first: the fit timings there are the paper-workload
    # numbers, so keep them clear of allocator pressure from the large
    # synthetic benches below.
    reports = _table_v_reports(fleet_vendor_i)

    benches = {
        "forest_fit_sqrt": lambda: _bench_forest("sqrt", 24),
        "forest_fit_full": lambda: _bench_forest(None, 12),
        "gbdt_fit": _bench_gbdt,
    }
    records = []
    for name, bench in benches.items():
        exact_seconds, hist_seconds = bench()
        records.append(
            {
                "name": name,
                "n_jobs": 1,
                "exact_seconds": round(exact_seconds, 4),
                "hist_seconds": round(hist_seconds, 4),
                "speedup": round(exact_seconds / hist_seconds, 3),
            }
        )
    combined = sum(r["exact_seconds"] for r in records) / sum(
        r["hist_seconds"] for r in records
    )

    exact_drive = reports["exact"][0].drive_report
    hist_drive = reports["hist"][0].drive_report
    delta_tpr = abs(exact_drive.tpr - hist_drive.tpr)
    delta_fpr = abs(exact_drive.fpr - hist_drive.fpr)
    delta_auc = abs(
        reports["exact"][0].record_report.auc - reports["hist"][0].record_report.auc
    )

    payload = {
        "cpu_count": os.cpu_count(),
        "fork_available": fork_available(),
        "n_jobs": 1,
        "benchmarks": records,
        "combined_speedup": round(combined, 3),
        "table_v_parity": {
            "exact": {
                "tpr": round(exact_drive.tpr, 4),
                "fpr": round(exact_drive.fpr, 4),
                "fit_seconds": round(reports["exact"][1], 4),
            },
            "hist": {
                "tpr": round(hist_drive.tpr, 4),
                "fpr": round(hist_drive.fpr, 4),
                "fit_seconds": round(reports["hist"][1], 4),
            },
            "delta_tpr": round(delta_tpr, 4),
            "delta_fpr": round(delta_fpr, 4),
            "delta_record_auc": round(delta_auc, 4),
            "tolerance": PARITY_TOLERANCE,
        },
        "bin_build": {
            "builds": bin_build.count - builds0,
            "seconds_total": round(bin_build.sum - build_seconds0, 4),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "hist_speedup.json").write_text(json.dumps(payload, indent=2))

    save_exhibit(
        "hist_speedup",
        render_table(
            ["Benchmark", "Exact (s)", "Hist (s)", "Speedup"],
            [
                [
                    r["name"],
                    f"{r['exact_seconds']:.2f}",
                    f"{r['hist_seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                ]
                for r in records
            ]
            + [
                ["combined", "", "", f"{combined:.2f}x"],
                ["table_v dTPR/dFPR", "", "", f"{delta_tpr:.4f}/{delta_fpr:.4f}"],
            ],
            title="Histogram split backend (n_jobs=1)",
        ),
    )

    assert combined >= 3.0, (
        f"expected >=3x combined forest+GBDT speedup at n_jobs=1, "
        f"got {combined:.2f}x ({records})"
    )
    assert delta_tpr <= PARITY_TOLERANCE + 1e-9, f"Table-V TPR drift: {delta_tpr:.4f}"
    assert delta_fpr <= PARITY_TOLERANCE + 1e-9, f"Table-V FPR drift: {delta_fpr:.4f}"
