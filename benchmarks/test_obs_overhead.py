"""Observability overhead budget (``make bench-obs``).

Times the forest-fit benchmark from ``test_parallel_speedup.py`` with
observability off vs fully on (tracing + metric capture) and asserts
the overhead stays under 5% — the instrumentation contract. Uses
min-of-repeats on both sides so scheduler noise doesn't flip the
verdict, verifies the fitted models predict bit-identically, and writes
machine-readable numbers plus the instrumented span/metric dump to
``benchmarks/results/obs_overhead.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks._util import RESULTS_DIR, save_exhibit
from repro.ml.forest import RandomForestClassifier
from repro.obs import (
    disable_observability,
    enable_observability,
    get_registry,
    get_tracer,
    trace_span,
)
from repro.reporting import render_table

pytestmark = pytest.mark.obs_bench

REPEATS = 3
OVERHEAD_BUDGET = 0.05


def _training_data(n_samples=6000, n_features=16, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n_samples, n_features))
    y = (X[:, 0] + 0.5 * X[:, 3] - X[:, 7] + rng.normal(0, 0.7, n_samples) > 0).astype(
        int
    )
    return X, y


def _fit(X, y):
    return RandomForestClassifier(
        n_estimators=24, max_depth=None, seed=0, n_jobs=1
    ).fit(X, y)


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_tracing_overhead_under_budget():
    """Untraced and traced fits are paired round by round and the
    verdict uses the best (lowest) traced/untraced ratio — adjacent
    measurements cancel ambient load drift (CPU throttling under
    sustained benchmark load) that sequential min-of-repeats cannot."""
    X, y = _training_data()

    def traced_fit():
        with trace_span("bench.forest_fit"):
            return _fit(X, y)

    rounds = []
    for _ in range(REPEATS):
        disable_observability()  # also resets the tracer + registry
        plain_model, plain_seconds = _best_of(lambda: _fit(X, y), repeats=1)
        enable_observability()
        traced_model, traced_seconds = _best_of(traced_fit, repeats=1)
        rounds.append(
            {
                "untraced_seconds": round(plain_seconds, 4),
                "traced_seconds": round(traced_seconds, 4),
                "ratio": round(traced_seconds / plain_seconds, 4),
            }
        )
    # The tracer and registry were reset at each round start; the spans
    # and counters below are the final round's.
    spans = get_tracer().span_records()
    tree_counter = get_registry().counter("forest_trees_fitted_total").value
    metrics = [
        entry
        for entry in get_registry().dump()
        if any(
            sample.get("value") or sample.get("count")
            for sample in entry["samples"]
        )
    ]
    disable_observability()

    # Observability never perturbs outputs.
    np.testing.assert_array_equal(
        plain_model.predict_proba(X[:200]), traced_model.predict_proba(X[:200])
    )
    # Collection is always on: both sides of the final round counted
    # their 24 trees each.
    assert tree_counter == 2 * 24
    assert any(record["name"] == "forest.fit_tree" for record in spans)

    best = min(rounds, key=lambda r: r["ratio"])
    plain_seconds = best["untraced_seconds"]
    traced_seconds = best["traced_seconds"]
    overhead = traced_seconds / plain_seconds - 1.0
    payload = {
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "benchmark": "forest_fit (6000x16, 24 trees, n_jobs=1)",
        "untraced_seconds": plain_seconds,
        "traced_seconds": traced_seconds,
        "rounds": rounds,
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": OVERHEAD_BUDGET,
        "spans": spans,
        "metrics": metrics,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_overhead.json").write_text(json.dumps(payload, indent=2))

    save_exhibit(
        "obs_overhead",
        render_table(
            ["Benchmark", "Untraced (s)", "Traced (s)", "Overhead"],
            [
                [
                    "forest_fit",
                    f"{plain_seconds:.3f}",
                    f"{traced_seconds:.3f}",
                    f"{overhead:+.2%}",
                ]
            ],
            title=f"Observability overhead (budget {OVERHEAD_BUDGET:.0%})",
        ),
    )

    assert overhead < OVERHEAD_BUDGET, (
        f"tracing overhead {overhead:.2%} exceeds the {OVERHEAD_BUDGET:.0%} "
        f"budget ({plain_seconds:.3f}s -> {traced_seconds:.3f}s)"
    )


SCRAPE_INTERVAL = 5.0  # 3x faster than Prometheus' default 15s


def test_endpoint_scrape_overhead_under_budget():
    """A live `/metrics` endpoint under scrape while the workload runs
    must cost under the same 5% budget — the scrape path renders off
    the always-on registry, it never touches the hot loop.

    Plain and scraped fits are paired round by round and the verdict
    uses the best (lowest) served/plain ratio: a pair is adjacent in
    time, so ambient load drift — CPU throttling under sustained
    benchmark load on small hosts — cancels out instead of flipping
    the verdict."""
    import threading
    import urllib.request

    from repro.obs.server import ObsServer

    X, y = _training_data()

    scrape_count = 0
    scraping = threading.Event()
    stop = threading.Event()
    rounds: list[dict] = []
    with ObsServer(port=0) as server:
        def scraper():
            nonlocal scrape_count
            while not stop.is_set():
                # Block while the plain side is being timed; scrape
                # immediately once a served round opens, then pace.
                if not scraping.wait(timeout=0.2):
                    continue
                with urllib.request.urlopen(
                    server.url + "/metrics", timeout=5
                ) as response:
                    response.read()
                scrape_count += 1
                stop.wait(SCRAPE_INTERVAL)

        thread = threading.Thread(target=scraper, daemon=True)
        thread.start()
        try:
            for _ in range(REPEATS):
                scraping.clear()
                plain_model, plain_seconds = _best_of(
                    lambda: _fit(X, y), repeats=1
                )
                scraping.set()
                served_model, served_seconds = _best_of(
                    lambda: _fit(X, y), repeats=1
                )
                rounds.append(
                    {
                        "plain_seconds": round(plain_seconds, 4),
                        "served_seconds": round(served_seconds, 4),
                        "ratio": round(served_seconds / plain_seconds, 4),
                    }
                )
        finally:
            stop.set()
            thread.join(timeout=5)

    assert scrape_count > 0, "the scraper never completed a scrape"
    best = min(rounds, key=lambda r: r["ratio"])
    plain_seconds = best["plain_seconds"]
    served_seconds = best["served_seconds"]
    np.testing.assert_array_equal(
        plain_model.predict_proba(X[:200]), served_model.predict_proba(X[:200])
    )

    overhead = served_seconds / plain_seconds - 1.0
    payload = {
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "benchmark": "forest_fit under live /metrics scrapes",
        "scrape_interval_seconds": SCRAPE_INTERVAL,
        "unserved_seconds": plain_seconds,
        "served_seconds": served_seconds,
        "rounds": rounds,
        "scrapes": scrape_count,
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": OVERHEAD_BUDGET,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_endpoint_overhead.json").write_text(
        json.dumps(payload, indent=2)
    )

    save_exhibit(
        "obs_endpoint_overhead",
        render_table(
            ["Benchmark", "No endpoint (s)", "Scraped (s)", "Overhead"],
            [
                [
                    "forest_fit",
                    f"{plain_seconds:.3f}",
                    f"{served_seconds:.3f}",
                    f"{overhead:+.2%}",
                ]
            ],
            title=f"Live endpoint overhead (budget {OVERHEAD_BUDGET:.0%})",
        ),
    )

    assert overhead < OVERHEAD_BUDGET, (
        f"endpoint overhead {overhead:.2%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget "
        f"({plain_seconds:.3f}s -> {served_seconds:.3f}s)"
    )
