"""Observability overhead budget (``make bench-obs``).

Times the forest-fit benchmark from ``test_parallel_speedup.py`` with
observability off vs fully on (tracing + metric capture) and asserts
the overhead stays under 5% — the instrumentation contract. Uses
min-of-repeats on both sides so scheduler noise doesn't flip the
verdict, verifies the fitted models predict bit-identically, and writes
machine-readable numbers plus the instrumented span/metric dump to
``benchmarks/results/obs_overhead.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks._util import RESULTS_DIR, save_exhibit
from repro.ml.forest import RandomForestClassifier
from repro.obs import (
    disable_observability,
    enable_observability,
    get_registry,
    get_tracer,
    trace_span,
)
from repro.reporting import render_table

pytestmark = pytest.mark.obs_bench

REPEATS = 3
OVERHEAD_BUDGET = 0.05


def _training_data(n_samples=6000, n_features=16, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n_samples, n_features))
    y = (X[:, 0] + 0.5 * X[:, 3] - X[:, 7] + rng.normal(0, 0.7, n_samples) > 0).astype(
        int
    )
    return X, y


def _fit(X, y):
    return RandomForestClassifier(
        n_estimators=24, max_depth=None, seed=0, n_jobs=1
    ).fit(X, y)


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_tracing_overhead_under_budget():
    X, y = _training_data()

    disable_observability()
    plain_model, plain_seconds = _best_of(lambda: _fit(X, y))

    enable_observability()
    # Collection is always on, so the untraced fits above also counted
    # trees; zero the registry so the assertions below see only the
    # traced phase.
    get_registry().reset()

    def traced_fit():
        with trace_span("bench.forest_fit"):
            return _fit(X, y)

    traced_model, traced_seconds = _best_of(traced_fit)
    spans = get_tracer().span_records()
    tree_counter = get_registry().counter("forest_trees_fitted_total").value
    metrics = [
        entry
        for entry in get_registry().dump()
        if any(
            sample.get("value") or sample.get("count")
            for sample in entry["samples"]
        )
    ]
    disable_observability()

    # Observability never perturbs outputs.
    np.testing.assert_array_equal(
        plain_model.predict_proba(X[:200]), traced_model.predict_proba(X[:200])
    )
    # All REPEATS * 24 trees were observed.
    assert tree_counter == REPEATS * 24
    assert any(record["name"] == "forest.fit_tree" for record in spans)

    overhead = traced_seconds / plain_seconds - 1.0
    payload = {
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "benchmark": "forest_fit (6000x16, 24 trees, n_jobs=1)",
        "untraced_seconds": round(plain_seconds, 4),
        "traced_seconds": round(traced_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": OVERHEAD_BUDGET,
        "spans": spans,
        "metrics": metrics,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_overhead.json").write_text(json.dumps(payload, indent=2))

    save_exhibit(
        "obs_overhead",
        render_table(
            ["Benchmark", "Untraced (s)", "Traced (s)", "Overhead"],
            [
                [
                    "forest_fit",
                    f"{plain_seconds:.3f}",
                    f"{traced_seconds:.3f}",
                    f"{overhead:+.2%}",
                ]
            ],
            title=f"Observability overhead (budget {OVERHEAD_BUDGET:.0%})",
        ),
    )

    assert overhead < OVERHEAD_BUDGET, (
        f"tracing overhead {overhead:.2%} exceeds the {OVERHEAD_BUDGET:.0%} "
        f"budget ({plain_seconds:.3f}s -> {traced_seconds:.3f}s)"
    )
