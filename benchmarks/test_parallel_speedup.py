"""Serial-vs-parallel wall-clock for the hot paths (``make bench-parallel``).

Times forest fitting, grid search and fleet scoring at ``n_jobs=1`` vs
``n_jobs=4``, verifies the outputs are identical either way, and records
machine-readable JSON under ``benchmarks/results/parallel_speedup.json``
so speedups are tracked alongside the paper exhibits.

The ≥2× assertion only fires on machines with at least 4 physical
workers to use — on smaller runners the numbers are still recorded but a
fork pool cannot beat the clock, which is a property of the host, not
the code.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks._util import RESULTS_DIR, save_exhibit
from repro.core.deployment import FleetMonitor
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import GridSearchCV, KFold
from repro.ml.tree import DecisionTreeClassifier
from repro.parallel import fork_available
from repro.reporting import render_table
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

pytestmark = pytest.mark.parallel_bench

N_JOBS = 4
#: Assert speedup only when the host can actually run N_JOBS workers.
ENOUGH_CORES = (os.cpu_count() or 1) >= N_JOBS


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _training_data(n_samples=6000, n_features=16, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n_samples, n_features))
    y = (X[:, 0] + 0.5 * X[:, 3] - X[:, 7] + rng.normal(0, 0.7, n_samples) > 0).astype(
        int
    )
    return X, y


def _bench_forest_fit():
    X, y = _training_data()

    def fit(n_jobs):
        return RandomForestClassifier(
            n_estimators=24, max_depth=None, seed=0, n_jobs=n_jobs
        ).fit(X, y)

    serial, serial_seconds = _timed(lambda: fit(1))
    parallel, parallel_seconds = _timed(lambda: fit(N_JOBS))
    np.testing.assert_array_equal(
        serial.predict_proba(X[:200]), parallel.predict_proba(X[:200])
    )
    return serial_seconds, parallel_seconds


def _bench_grid_search():
    X, y = _training_data(n_samples=4000)
    grid = {"max_depth": [4, 8, 12], "min_samples_leaf": [1, 4]}

    def search(n_jobs):
        return GridSearchCV(
            DecisionTreeClassifier(seed=0),
            grid,
            splitter=KFold(n_splits=3, seed=0),
            refit=False,
            n_jobs=n_jobs,
        ).fit(X, y)

    serial, serial_seconds = _timed(lambda: search(1))
    parallel, parallel_seconds = _timed(lambda: search(N_JOBS))
    assert serial.best_params_ == parallel.best_params_
    assert serial.results_ == parallel.results_
    return serial_seconds, parallel_seconds


def _bench_fleet_scoring():
    fleet = simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 400}),
            horizon_days=540,
            failure_boost=20.0,
            seed=11,
        )
    )

    def score(n_jobs):
        monitor = FleetMonitor(n_jobs=n_jobs)
        monitor.start(fleet, train_end_day=360)
        return [monitor.score_window(day, day + 30) for day in range(360, 540, 30)]

    serial, serial_seconds = _timed(lambda: score(1))
    parallel, parallel_seconds = _timed(lambda: score(N_JOBS))
    assert serial == parallel
    return serial_seconds, parallel_seconds


def test_parallel_speedup():
    benches = {
        "forest_fit": _bench_forest_fit,
        "grid_search": _bench_grid_search,
        "fleet_scoring": _bench_fleet_scoring,
    }
    records = []
    for name, bench in benches.items():
        serial_seconds, parallel_seconds = bench()
        records.append(
            {
                "name": name,
                "n_jobs": N_JOBS,
                "serial_seconds": round(serial_seconds, 4),
                "parallel_seconds": round(parallel_seconds, 4),
                "speedup": round(serial_seconds / parallel_seconds, 3),
            }
        )

    payload = {
        "cpu_count": os.cpu_count(),
        "fork_available": fork_available(),
        "n_jobs": N_JOBS,
        "benchmarks": records,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "parallel_speedup.json").write_text(json.dumps(payload, indent=2))

    save_exhibit(
        "parallel_speedup",
        render_table(
            ["Benchmark", "Serial (s)", f"n_jobs={N_JOBS} (s)", "Speedup"],
            [
                [
                    r["name"],
                    f"{r['serial_seconds']:.2f}",
                    f"{r['parallel_seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                ]
                for r in records
            ],
            title=f"Parallel speedup ({os.cpu_count()} cores)",
        ),
    )

    if ENOUGH_CORES and fork_available():
        training_speedups = [
            r["speedup"] for r in records if r["name"] in ("forest_fit", "grid_search")
        ]
        assert max(training_speedups) >= 2.0, (
            f"expected ≥2x on forest fit or grid search at n_jobs={N_JOBS}, "
            f"got {training_speedups}"
        )
