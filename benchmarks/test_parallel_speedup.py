"""Serial-vs-parallel wall-clock for the hot paths (``make bench-parallel``).

Times forest fitting, grid search and fleet scoring serially and at
``n_jobs`` ∈ {2, 4}, verifies the outputs are identical either way, and
records machine-readable JSON under
``benchmarks/results/parallel_speedup.json`` so speedups are tracked
alongside the paper exhibits.

Two classes of assertion:

* **Never slower** (every host, every ``n_jobs``): with the persistent
  pool and the calibrated serial fallback, a parallel run may cost at
  most ``NEVER_SLOWER_RATIO``× the serial run plus a small absolute
  slack. On a single-core host this proves the fallback: ``n_jobs``
  clamps to the core count and the run degrades to the serial loop
  instead of paying fork overhead for nothing.
* **Actually faster** (hosts with ≥ 4 cores only): forest fit or grid
  search must reach ≥ 2× at ``n_jobs=4``, and fleet scoring must at
  least break even. On smaller runners the numbers are still recorded,
  but a fork pool cannot beat the clock there — a property of the
  host, not the code.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks._util import (
    NEVER_SLOWER_RATIO,
    NEVER_SLOWER_SLACK_SECONDS,
    RESULTS_DIR,
    cores_label,
    never_slower,
    save_exhibit,
)
from repro.core.deployment import FleetMonitor
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import GridSearchCV, KFold
from repro.ml.tree import DecisionTreeClassifier
from repro.parallel import effective_n_jobs, fork_available, shutdown_pool
from repro.reporting import render_table
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

pytestmark = pytest.mark.parallel_bench

#: Requested worker counts; each clamps to ``os.cpu_count()``.
N_JOBS_GRID = (2, 4)
#: Assert real speedup only when the host can run 4 workers.
ENOUGH_CORES = (os.cpu_count() or 1) >= 4


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _training_data(n_samples=6000, n_features=16, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n_samples, n_features))
    y = (X[:, 0] + 0.5 * X[:, 3] - X[:, 7] + rng.normal(0, 0.7, n_samples) > 0).astype(
        int
    )
    return X, y


def _bench_forest_fit():
    X, y = _training_data()

    def run(n_jobs):
        model = RandomForestClassifier(
            n_estimators=24, max_depth=None, seed=0, n_jobs=n_jobs
        ).fit(X, y)
        return model.predict_proba(X[:200])

    return run, lambda a, b: np.testing.assert_array_equal(a, b)


def _bench_grid_search():
    X, y = _training_data(n_samples=4000)
    grid = {"max_depth": [4, 8, 12], "min_samples_leaf": [1, 4]}

    def run(n_jobs):
        search = GridSearchCV(
            DecisionTreeClassifier(seed=0),
            grid,
            splitter=KFold(n_splits=3, seed=0),
            refit=False,
            n_jobs=n_jobs,
        ).fit(X, y)
        return search.best_params_, search.results_

    def check(a, b):
        assert a == b

    return run, check


def _bench_fleet_scoring():
    fleet = simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 400}),
            horizon_days=540,
            failure_boost=20.0,
            seed=11,
        )
    )

    def run(n_jobs):
        monitor = FleetMonitor(n_jobs=n_jobs)
        monitor.start(fleet, train_end_day=360)
        return [monitor.score_window(day, day + 30) for day in range(360, 540, 30)]

    def check(a, b):
        assert a == b

    return run, check


def test_parallel_speedup():
    benches = {
        "forest_fit": _bench_forest_fit,
        "grid_search": _bench_grid_search,
        "fleet_scoring": _bench_fleet_scoring,
    }
    shutdown_pool()  # cold-start baseline: first dispatch pays the fork
    records = []
    for name, build in benches.items():
        run, check = build()
        serial_result, serial_seconds = _timed(lambda: run(1))
        runs = []
        for n_jobs in N_JOBS_GRID:
            parallel_result, parallel_seconds = _timed(lambda: run(n_jobs))
            check(serial_result, parallel_result)
            runs.append(
                {
                    "requested_n_jobs": n_jobs,
                    "effective_n_jobs": effective_n_jobs(n_jobs),
                    "seconds": round(parallel_seconds, 4),
                    "speedup": round(serial_seconds / parallel_seconds, 3),
                    "never_slower": never_slower(serial_seconds, parallel_seconds),
                }
            )
        records.append(
            {
                "name": name,
                "serial_seconds": round(serial_seconds, 4),
                "runs": runs,
            }
        )

    payload = {
        "cpu_count": os.cpu_count(),
        "fork_available": fork_available(),
        "gate": {
            "ratio": NEVER_SLOWER_RATIO,
            "slack_seconds": NEVER_SLOWER_SLACK_SECONDS,
            "passed": all(r["never_slower"] for b in records for r in b["runs"]),
        },
        "benchmarks": records,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "parallel_speedup.json").write_text(json.dumps(payload, indent=2))

    save_exhibit(
        "parallel_speedup",
        render_table(
            ["Benchmark", "n_jobs (eff)", "Serial (s)", "Parallel (s)", "Speedup", "Gate"],
            [
                [
                    bench["name"],
                    f"{r['requested_n_jobs']} ({r['effective_n_jobs']})",
                    f"{bench['serial_seconds']:.2f}",
                    f"{r['seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                    "ok" if r["never_slower"] else "SLOWER",
                ]
                for bench in records
                for r in bench["runs"]
            ],
            title=f"Parallel speedup ({cores_label(os.cpu_count())})",
        ),
    )

    slower = [
        (bench["name"], r["requested_n_jobs"], r["speedup"])
        for bench in records
        for r in bench["runs"]
        if not r["never_slower"]
    ]
    assert not slower, (
        f"parallel lost to serial beyond the {NEVER_SLOWER_RATIO}x gate "
        f"(+{NEVER_SLOWER_SLACK_SECONDS}s slack): {slower}"
    )

    if ENOUGH_CORES and fork_available():
        at_four = {
            bench["name"]: r["speedup"]
            for bench in records
            for r in bench["runs"]
            if r["requested_n_jobs"] == 4
        }
        training = [at_four["forest_fit"], at_four["grid_search"]]
        assert max(training) >= 2.0, (
            f"expected ≥2x on forest fit or grid search at n_jobs=4, got {training}"
        )
        assert at_four["fleet_scoring"] >= 1.0, (
            f"expected fleet scoring to at least break even at n_jobs=4, "
            f"got {at_four['fleet_scoring']}"
        )
