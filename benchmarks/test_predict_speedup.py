"""Exact-vs-arena prediction wall-clock (``make bench-predict``).

Times drive scoring through the seed per-tree loop ("exact"), the
contiguous-arena float engine, and the binned code-descent engine at
three batch shapes, plus the cold-start comparison the artifact layer
exists for: seconds from process start to the first scored window when
the model is refit versus loaded from a versioned artifact. Results
land in ``benchmarks/results/predict_speedup.json`` so the inference
fast path is tracked alongside the training-side exhibits.

The headline shape is 1024 rows — the serve daemon and the sharded
monitor both score windows of roughly that size, so that is the regime
the ``>= 2x`` gate pins. The arena's advantage shrinks as batches grow
(the seed loop's per-tree Python overhead amortizes away), which is why
the large-batch row is recorded but not gated.

Engine parity is asserted bit-for-bit here as well: a speedup measured
on diverging outputs would be meaningless.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks._util import RESULTS_DIR, save_exhibit
from repro.ml.arena import set_inference_mode
from repro.ml.artifact import load_model, save_model
from repro.ml.forest import RandomForestClassifier
from repro.reporting import render_table

pytestmark = pytest.mark.predict_bench

#: The serve/shard window regime the acceptance gate is measured at.
WINDOW_ROWS = 1024
#: Minimum drives/second win the binned arena must post at WINDOW_ROWS.
REQUIRED_SPEEDUP = 2.0
#: Batch shapes covered (rows per predict call).
BATCH_SHAPES = (256, WINDOW_ROWS, 8192)
#: Timing repeats; best-of keeps allocator/GC noise out of the ratios.
REPEATS = 9


def _timed_best(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _training_data(n_samples=6000, n_features=16, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n_samples, n_features))
    y = (
        X[:, 0] + 0.5 * X[:, 3] - X[:, 7] + rng.normal(0, 0.7, n_samples) > 0
    ).astype(int)
    return X, y


def _fit_model():
    X, y = _training_data()
    model = RandomForestClassifier(
        n_estimators=40, max_depth=12, seed=0, n_jobs=1
    ).fit(X, y)
    return model, X.shape[1]


def _with_mode(mode, fn):
    previous = set_inference_mode(mode)
    try:
        return fn()
    finally:
        set_inference_mode(previous)


def _bench_engines(model, n_features):
    records = []
    for n_rows in BATCH_SHAPES:
        rows = np.random.default_rng(n_rows).normal(
            scale=2.0, size=(n_rows, n_features)
        )
        # Parity first; these calls also build and cache the arena so
        # its one-time construction stays out of the timings below.
        exact = _with_mode("exact", lambda: model.predict_proba(rows))
        for mode in ("float", "binned"):
            np.testing.assert_array_equal(
                _with_mode(mode, lambda: model.predict_proba(rows)), exact
            )
        exact_seconds = _timed_best(
            lambda: _with_mode("exact", lambda: model.predict_proba(rows))
        )
        float_seconds = _timed_best(
            lambda: _with_mode("float", lambda: model.predict_proba(rows))
        )
        binned_seconds = _timed_best(
            lambda: _with_mode("binned", lambda: model.predict_proba(rows))
        )
        records.append(
            {
                "n_rows": n_rows,
                "exact_seconds": round(exact_seconds, 6),
                "float_seconds": round(float_seconds, 6),
                "binned_seconds": round(binned_seconds, 6),
                "exact_drives_per_second": round(n_rows / exact_seconds, 1),
                "binned_drives_per_second": round(n_rows / binned_seconds, 1),
                "speedup": round(exact_seconds / binned_seconds, 3),
            }
        )
    return records


def _bench_cold_start(model, n_features, tmp_path):
    """Seconds to the first scored window: refit vs artifact load."""
    rows = np.random.default_rng(1).normal(
        scale=2.0, size=(WINDOW_ROWS, n_features)
    )
    save_model(model, tmp_path / "artifact")

    def cold():
        refit, _ = _fit_model()
        refit.predict_proba(rows)

    def from_artifact():
        load_model(tmp_path / "artifact").predict_proba(rows)

    cold_seconds = _timed_best(cold, repeats=3)
    artifact_seconds = _timed_best(from_artifact, repeats=3)
    return {
        "cold_fit_seconds": round(cold_seconds, 4),
        "artifact_load_seconds": round(artifact_seconds, 4),
        "speedup": round(cold_seconds / artifact_seconds, 1),
    }


def test_predict_speedup(tmp_path):
    model, n_features = _fit_model()
    records = _bench_engines(model, n_features)
    cold_start = _bench_cold_start(model, n_features, tmp_path)

    window = next(r for r in records if r["n_rows"] == WINDOW_ROWS)
    payload = {
        "cpu_count": os.cpu_count(),
        "model": {"n_estimators": 40, "max_depth": 12, "n_features": n_features},
        "window_rows": WINDOW_ROWS,
        "required_speedup": REQUIRED_SPEEDUP,
        "batches": records,
        "window_speedup": window["speedup"],
        "cold_start": cold_start,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "predict_speedup.json").write_text(
        json.dumps(payload, indent=2)
    )

    save_exhibit(
        "predict_speedup",
        render_table(
            ["Rows", "Exact (drv/s)", "Binned (drv/s)", "Speedup"],
            [
                [
                    str(r["n_rows"]),
                    f"{r['exact_drives_per_second']:.0f}",
                    f"{r['binned_drives_per_second']:.0f}",
                    f"{r['speedup']:.2f}x",
                ]
                for r in records
            ]
            + [
                [
                    "first window",
                    f"refit {cold_start['cold_fit_seconds']:.2f}s",
                    f"artifact {cold_start['artifact_load_seconds']:.2f}s",
                    f"{cold_start['speedup']:.0f}x",
                ]
            ],
            title="Binned forest-arena inference (RF 40x d12)",
        ),
    )

    assert window["speedup"] >= REQUIRED_SPEEDUP, (
        f"expected >={REQUIRED_SPEEDUP}x drive-scoring win at "
        f"{WINDOW_ROWS} rows, got {window['speedup']:.2f}x ({window})"
    )
    assert cold_start["speedup"] >= REQUIRED_SPEEDUP, (
        f"artifact start should beat a refit by >={REQUIRED_SPEEDUP}x, "
        f"got {cold_start}"
    )
