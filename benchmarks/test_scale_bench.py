"""Million-drive out-of-core benchmark (``make bench-scale``).

Generates a 1,000,000-drive fleet straight into a shard store (the
fleet never exists in RAM), stream-trains an MFPA on it, replays a
monitored deployment over the full store under an enforced peak-RSS
ceiling, and writes ``benchmarks/results/scale_1m.json`` recording
peak RSS, wall-clock per stage and monitored drives/second.

Correctness is pinned separately from scale: a small parity fleet is
run through both the sharded and the in-RAM monitor and the alarm
records must match bit for bit (the same invariant ``make scale-smoke``
and ``tests/scale`` enforce), so the headline number measures a
pipeline known to produce identical answers.

Size knobs (env): ``SCALE_BENCH_DRIVES`` (default 1,000,000) and
``SCALE_BENCH_CEILING_MB`` (default 16384).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks._util import RESULTS_DIR, save_exhibit
from repro.core.deployment import RetrainPolicy, simulate_operation
from repro.core.pipeline import MFPAConfig
from repro.ml.forest import RandomForestClassifier
from repro.reporting import render_table
from repro.scale import (
    ShardWriter,
    ShardedFleetMonitor,
    peak_rss_mb,
)
from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.fleet import FleetConfig, SSDFleet, VendorMix

pytestmark = pytest.mark.scale_bench

N_DRIVES = int(os.environ.get("SCALE_BENCH_DRIVES", "1000000"))
CEILING_MB = int(os.environ.get("SCALE_BENCH_CEILING_MB", "16384"))
PARITY_DRIVES = 1500
DRIVES_PER_SHARD = 10_000
HORIZON, TRAIN_END, WINDOW = 40, 25, 8
NEVER = RetrainPolicy(interval_days=10**9, min_new_failures=10**9)


def _fleet_config(n_drives: int) -> FleetConfig:
    return FleetConfig(
        mix=VendorMix.proportional(n_drives),
        horizon_days=HORIZON,
        failure_boost=50.0,
        seed=2024,
    )


def _mfpa_config() -> MFPAConfig:
    # Histogram splits: the binned backend is what makes training on a
    # million-drive undersample tractable on one core.
    return MFPAConfig(
        algorithm=RandomForestClassifier(
            n_estimators=20, max_depth=8, split_algorithm="hist", seed=0
        ),
        memory_ceiling_mb=CEILING_MB,
    )


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _parity_check(tmp_path) -> dict:
    """Sharded vs in-RAM monitor on a small fleet: bit-identical alarms."""
    writer = ShardWriter(tmp_path / "parity")
    fleet = SSDFleet(_fleet_config(PARITY_DRIVES))
    for shard in fleet.generate_shards(drives_per_shard=500):
        writer.add_shard(shard)
    store = writer.close()

    monitor = ShardedFleetMonitor(store, config=_mfpa_config(), policy=NEVER)
    sharded = monitor.run(TRAIN_END, HORIZON, window_days=WINDOW)

    full = TelemetryDataset.concat([s for _, s in store.iter_shards()])
    batch = simulate_operation(
        full,
        config=_mfpa_config(),
        policy=NEVER,
        start_day=TRAIN_END,
        end_day=HORIZON,
        window_days=WINDOW,
    )
    assert sharded.alarm_records() == batch.alarm_records(), (
        "sharded/in-RAM alarm mismatch on the parity fleet"
    )
    assert sharded.missed_failures == batch.missed_failures
    return {
        "n_drives": PARITY_DRIVES,
        "n_alarms": sharded.n_alarms,
        "bit_identical": True,
    }


def test_scale_bench(tmp_path):
    parity = _parity_check(tmp_path)

    fleet = SSDFleet(_fleet_config(N_DRIVES))
    writer = ShardWriter(tmp_path / "store")

    def generate():
        for shard in fleet.generate_shards(drives_per_shard=DRIVES_PER_SHARD):
            writer.add_shard(shard)
        return writer.close()

    store, generate_seconds = _timed(generate)

    monitor = ShardedFleetMonitor(store, config=_mfpa_config(), policy=NEVER)
    _, fit_seconds = _timed(lambda: monitor.start(TRAIN_END))
    summary, monitor_seconds = _timed(
        lambda: monitor.run(TRAIN_END, HORIZON, window_days=WINDOW)
    )

    peak = peak_rss_mb()
    assert peak < CEILING_MB, (
        f"peak RSS {peak:.0f} MiB breached the {CEILING_MB} MiB ceiling"
    )
    assert len(summary.windows) == 2
    assert all(w.n_drives_scored > 0 for w in summary.windows)

    drives_per_second = store.n_drives / monitor_seconds
    payload = {
        "cpu_count": os.cpu_count(),
        "n_drives": store.n_drives,
        "n_rows": store.n_rows,
        "n_shards": store.n_shards,
        "store_bytes": store.n_bytes,
        "fleet_fingerprint": store.fleet_fingerprint,
        "memory_ceiling_mb": CEILING_MB,
        "peak_rss_mb": round(peak, 1),
        "generate_seconds": round(generate_seconds, 1),
        "fit_seconds": round(fit_seconds, 1),
        "monitor_seconds": round(monitor_seconds, 1),
        "drives_per_second": round(drives_per_second, 1),
        "windows": [
            {
                "start_day": w.start_day,
                "end_day": w.end_day,
                "n_drives_scored": w.n_drives_scored,
                "n_alarms": len(w.alarms),
            }
            for w in summary.windows
        ],
        "n_alarms": summary.n_alarms,
        "true_alarms": summary.true_alarms,
        "false_alarms": summary.false_alarms,
        "parity": parity,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scale_1m.json").write_text(json.dumps(payload, indent=2))

    save_exhibit(
        "scale_1m",
        render_table(
            ["Stage", "Seconds", "Detail"],
            [
                ["generate", f"{generate_seconds:.0f}",
                 f"{store.n_shards} shards / {store.n_rows} rows"],
                ["fit", f"{fit_seconds:.0f}", "streaming MFPA"],
                ["monitor", f"{monitor_seconds:.0f}",
                 f"{drives_per_second:.0f} drives/s"],
                ["peak RSS", f"{peak:.0f} MiB",
                 f"ceiling {CEILING_MB} MiB"],
            ],
            title=f"Out-of-core bench: {store.n_drives} drives",
        ),
    )
