"""Table I — RaSRF trouble-ticket breakdown.

Paper: drive-level 31.62% / system-level 68.38%, with "Storage drive
failure" (31.13%) and "Blue/Black screen after startup" (21.44%) as the
largest causes. The bench regenerates the table from the synthetic
fleet's tickets and checks the shares track the catalog.
"""

import pytest

from benchmarks._util import save_exhibit
from repro.analysis.rasrf import level_shares, rasrf_breakdown
from repro.reporting import render_table


@pytest.mark.benchmark(group="table1")
def test_table1_rasrf_breakdown(benchmark, fleet_all_vendors):
    rows = benchmark(rasrf_breakdown, fleet_all_vendors)

    table = render_table(
        ["Failure Level", "Category", "Cause", "Count", "Share", "Paper"],
        [
            [
                row["failure_level"],
                row["category"],
                row["cause"],
                row["count"],
                row["share"],
                row["expected_share"],
            ]
            for row in rows
        ],
        title="Table I: RaSRF — Replaced as SSD_Related Failures",
    )
    shares = level_shares(fleet_all_vendors)
    table += (
        f"\nlevel split: drive-level {shares['drive_level']:.2%} "
        f"(paper 31.62%), system-level {shares['system_level']:.2%} (paper 68.38%)"
    )
    save_exhibit("table1_rasrf", table)

    assert shares["drive_level"] == pytest.approx(0.3162, abs=0.08)
    largest = max(rows, key=lambda r: r["share"])
    assert largest["cause"] == "Storage drive failure"
