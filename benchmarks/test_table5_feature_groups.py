"""Table V — the seven feature group definitions.

A structural exhibit: feature counts per dimension for SFWB..B, plus a
check that the assembled matrices have the advertised widths on real
fleet data.
"""

import pytest

from benchmarks._util import save_exhibit
from repro.core.features import FEATURE_GROUPS, FeatureAssembler
from repro.core.preprocess import preprocess
from repro.reporting import render_table


@pytest.mark.benchmark(group="table5")
def test_table5_feature_groups(benchmark, fleet_vendor_i):
    prepared, _, _ = preprocess(fleet_vendor_i)

    def assemble_all():
        widths = {}
        for name, group in FEATURE_GROUPS.items():
            assembler = FeatureAssembler(group.columns)
            X = assembler.assemble(prepared.columns, list(range(64)))
            widths[name] = X.shape[1]
        return widths

    widths = benchmark(assemble_all)

    rows = []
    for name in ("SFWB", "SFW", "SFB", "SF", "S", "W", "B"):
        counts = FEATURE_GROUPS[name].counts
        rows.append(
            [
                name,
                counts["SMART"] or "NaN",
                counts["Firmware"] or "NaN",
                counts["WindowsEvent"] or "NaN",
                counts["BlueScreenofDeath"] or "NaN",
                widths[name],
            ]
        )
    table = render_table(
        ["Group", "SMART", "Firmware", "WindowsEvent", "BlueScreenofDeath", "Matrix width"],
        rows,
        title="Table V: Feature Groups",
    )
    save_exhibit("table5_feature_groups", table)

    assert widths["SFWB"] == 45
    assert widths["S"] == 16
    assert widths["W"] == 5
    assert widths["B"] == 23
