"""Table VI — dataset summary and per-vendor replacement rates.

Paper: RRs 0.0068 / 0.0007 / 0.0005 / 0.0011 for vendors I-IV. With the
bench fleet's uniform failure boost the *ratios* between vendors are
preserved, so the reproduced property is the ordering I >> IV > II > III
and rough ratio agreement after dividing the boost back out.
"""

import pytest

from benchmarks._util import save_exhibit
from repro.analysis.dataset_summary import dataset_summary_rows, replacement_rate_ordering
from repro.reporting import render_table

BOOST = 25.0  # must match the fleet_all_vendors fixture


@pytest.mark.benchmark(group="table6")
def test_table6_dataset_summary(benchmark, fleet_all_vendors):
    rows = benchmark(dataset_summary_rows, fleet_all_vendors)

    table = render_table(
        ["Manu.", "F/F", "Protocol", "FlashTech", "Total", "Sum_failure", "Sum_RR", "RR/boost", "Paper RR"],
        [
            [
                row["vendor"],
                row["form_factor"],
                row["protocol"],
                row["flash_tech"],
                row["total"],
                row["sum_failure"],
                row["sum_rr"],
                row["sum_rr"] / BOOST,
                row["paper_rr"],
            ]
            for row in rows
        ],
        title=f"Table VI: Dataset (failure_boost={BOOST})",
    )
    save_exhibit("table6_dataset", table)

    ordering = replacement_rate_ordering(rows)
    assert ordering[0] == "I", "vendor I must have the highest RR"
    assert ordering[-1] in ("II", "III"), "lowest RR must be vendor II or III"
    by_vendor = {row["vendor"]: row for row in rows}
    # Vendor I's RR should be roughly an order of magnitude above III's.
    assert by_vendor["I"]["sum_rr"] > 4 * by_vendor["III"]["sum_rr"]
    # Fleet shares follow Table VI: II largest population, IV smallest.
    totals = {row["vendor"]: row["total"] for row in rows}
    assert totals["II"] > totals["III"] > totals["I"] > totals["IV"]
