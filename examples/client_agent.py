#!/usr/bin/env python3
"""Scenario: the on-device prediction agent.

The paper's deployment pushes the trained model to consumer machines
("Microsecond prediction can be achieved for the model deployed on the
client side", §IV Fig 20). This example plays that role: it trains MFPA
centrally, packages it as a :class:`ClientPredictor`, then replays one
machine's raw daily telemetry through the agent — including the day the
agent would have popped a "back up your data now" notification.

Run:  python examples/client_agent.py
"""

import time

from repro.core import MFPA, MFPAConfig
from repro.core.client import ClientPredictor
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet
from repro.telemetry.dataset import B_COLUMNS, W_COLUMNS
from repro.telemetry.smart import SMART_COLUMNS

TRAIN_END = 240
HORIZON = 360


def raw_readings(model, serial):
    """What the on-device collector would emit, day by day."""
    rows = model.dataset_.drive_rows(serial)
    for i in range(rows["day"].size):
        reading = {"firmware": rows["firmware"][i]}
        for column in (*SMART_COLUMNS, *W_COLUMNS, *B_COLUMNS):
            reading[column] = float(rows[column][i])
        yield int(rows["day"][i]), reading


def main() -> None:
    print("training MFPA centrally ...")
    fleet = simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 400}),
            horizon_days=HORIZON,
            failure_boost=25.0,
            seed=7,
        )
    )
    model = MFPA(MFPAConfig(feature_group_name="SFWB"))
    model.fit(fleet, train_end_day=TRAIN_END)

    print("packaging the model for client deployment ...")
    agent = ClientPredictor.from_model(model)

    # Replay one machine that fails during the deployment period.
    serial = next(
        s for s, d in model.failure_times_.items() if d >= TRAIN_END
    )
    meta = model.dataset_.drives[serial]
    print(f"\nreplaying drive S/N {serial} "
          f"(will fail on day {meta.failure_day}, {meta.archetype}):\n")

    first_alarm = None
    latencies = []
    for day, reading in raw_readings(model, serial):
        started = time.perf_counter()
        alarmed, probability = agent.alarm(serial, day, reading)
        latencies.append(time.perf_counter() - started)
        if alarmed and first_alarm is None:
            first_alarm = day
            print(f"  day {day:3d}: p(fail)={probability:.3f}  "
                  f"*** ALARM: back up your data and contact support ***")
        elif day % 30 == 0 or probability > 0.3:
            print(f"  day {day:3d}: p(fail)={probability:.3f}")

    print(f"\nper-reading latency: median "
          f"{sorted(latencies)[len(latencies) // 2] * 1e3:.2f} ms "
          f"(the paper targets client-grade latency)")
    if first_alarm is None:
        print("the agent never alarmed — this failure was missed.")
    else:
        print(f"warning lead time: {meta.failure_day - first_alarm} days "
              f"before the actual failure.")


if __name__ == "__main__":
    main()
