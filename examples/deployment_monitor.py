#!/usr/bin/env python3
"""Scenario: operating MFPA in production — monthly scoring and retraining.

The paper's deployment story (§IV-(5), Fig 20): train on history, push
the model to clients, score the fleet continuously, and iterate the
model every ~2 months because FPR drifts upward. This example plays a
12-month operation forward, month by month, comparing a *frozen* model
against one retrained every two months, and prints the alarm volumes an
after-sales team would see.

Run:  python examples/deployment_monitor.py
"""

from repro.analysis.temporal import rolling_monthly_evaluation
from repro.core import MFPA, MFPAConfig
from repro.reporting import render_table
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

INITIAL_TRAIN_END = 240
HORIZON = 600
MONTH = 30
RETRAIN_EVERY_MONTHS = 2


def main() -> None:
    print("simulating an 18-month, 600-drive vendor-I fleet ...")
    fleet = simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 600}),
            horizon_days=HORIZON,
            failure_boost=20.0,
            seed=99,
        )
    )
    print(f"  {len(fleet.tickets)} trouble tickets\n")

    print("training the initial model on the first 8 months ...")
    frozen = MFPA(MFPAConfig(feature_group_name="SFWB"))
    frozen.fit(fleet, train_end_day=INITIAL_TRAIN_END)

    n_months = (HORIZON - INITIAL_TRAIN_END) // MONTH
    frozen_rows = rolling_monthly_evaluation(
        frozen, INITIAL_TRAIN_END, n_months=n_months, month_days=MONTH
    )

    print("operating a retrained-every-2-months model ...")
    refreshed_rows = []
    current = frozen
    for month in range(n_months):
        start = INITIAL_TRAIN_END + month * MONTH
        if month > 0 and month % RETRAIN_EVERY_MONTHS == 0:
            current = MFPA(MFPAConfig(feature_group_name="SFWB"))
            current.fit(fleet, train_end_day=start)
            print(f"  month {month + 1}: model iterated (trained through day {start})")
        refreshed_rows.extend(
            rolling_monthly_evaluation(current, start, n_months=1, month_days=MONTH)
        )

    rows = []
    for frozen_row, refreshed_row in zip(frozen_rows, refreshed_rows):
        rows.append(
            [
                frozen_row["month"],
                frozen_row["tpr"],
                frozen_row["fpr"],
                refreshed_row["tpr"],
                refreshed_row["fpr"],
            ]
        )
    print()
    print(
        render_table(
            ["Month", "Frozen TPR", "Frozen FPR", "Refreshed TPR", "Refreshed FPR"],
            rows,
            title="Frozen vs periodically-iterated model (paper: iterate every 2-3 months)",
        )
    )

    frozen_fpr = [r["fpr"] for r in frozen_rows if r["n_healthy"] > 0]
    refreshed_fpr = [r["fpr"] for r in refreshed_rows if r["n_healthy"] > 0]
    print(
        f"\nmean monthly FPR: frozen {sum(frozen_fpr) / len(frozen_fpr):.3%}, "
        f"iterated {sum(refreshed_fpr) / len(refreshed_fpr):.3%}"
    )
    print("every avoided false alarm is one consumer not sent through a "
          "needless drive replacement.")


if __name__ == "__main__":
    main()
