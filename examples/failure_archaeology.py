#!/usr/bin/env python3
"""Scenario: post-mortem of a failed consumer SSD.

An after-sales engineer receives a trouble ticket and wants to know:
what did this drive's telemetry look like in its final weeks, when
could MFPA have warned the user, and which feature dimension carried
the signal? This example walks one faulty drive end to end — the
drive-level story behind the paper's Figs 4-7.

Run:  python examples/failure_archaeology.py
"""

import numpy as np

from repro.core import MFPA, MFPAConfig
from repro.core.labeling import FailureTimeIdentifier
from repro.reporting import render_series, render_table
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet
from repro.telemetry.bsod import B_50_COLUMN

TRAIN_END = 240
HORIZON = 360


def main() -> None:
    fleet = simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 400}),
            horizon_days=HORIZON,
            failure_boost=25.0,
            seed=7,
        )
    )

    model = MFPA(MFPAConfig(feature_group_name="SFWB"))
    model.fit(fleet, train_end_day=TRAIN_END)
    prepared = model.dataset_

    # Pick a system-level failure from the evaluation period — the kind
    # whose SMART stays deceptively quiet.
    candidates = [
        serial
        for serial, failure_day in model.failure_times_.items()
        if failure_day >= TRAIN_END
        and prepared.drives[serial].archetype == "system_level"
    ]
    if not candidates:
        candidates = [s for s, d in model.failure_times_.items() if d >= TRAIN_END]
    serial = candidates[0]
    meta = prepared.drives[serial]
    ticket = next(t for t in prepared.tickets if t.serial == serial)

    print(f"=== post-mortem: drive S/N {serial} ===")
    print(f"model {meta.model_id}, firmware {meta.firmware}, {meta.capacity_gb} GB")
    print(f"true failure day: {meta.failure_day} ({meta.archetype})")
    print(f"ticket: '{ticket.cause}' filed day {ticket.initial_maintenance_time} "
          f"(repair lag {ticket.initial_maintenance_time - meta.failure_day} days)")
    identified = FailureTimeIdentifier(theta=7).identify(prepared)[serial]
    print(f"theta-rule identified failure time: day {identified}")

    rows = prepared.drive_rows(serial)
    days = rows["day"]
    window = days >= meta.failure_day - 35
    shown_days = days[window]

    print("\nfinal 5 weeks of telemetry:")
    print(
        render_table(
            ["Day", "MediaErr", "ErrLog", "Spare%", "cum W161", "cum B50", "p(fail)"],
            [
                [
                    int(day),
                    int(rows["s14_media_errors"][window][i]),
                    int(rows["s15_error_log_entries"][window][i]),
                    int(rows["s3_available_spare"][window][i]),
                    int(rows["cum_w161_fs_io_error"][window][i]),
                    int(rows[f"cum_{B_50_COLUMN}"][window][i]),
                    float(
                        model.predict_proba_rows(
                            [prepared._row_slices()[serial].start
                             + int(np.flatnonzero(days == day)[0])]
                        )[0]
                    ),
                ]
                for i, day in enumerate(shown_days)
            ],
        )
    )

    base = prepared._row_slices()[serial].start
    probabilities = model.predict_proba_rows(base + np.flatnonzero(window))
    first_alarm = None
    for day, probability in zip(shown_days, probabilities):
        if probability >= 0.5:
            first_alarm = int(day)
            break
    print()
    print(
        render_series(
            "p(fail)",
            [str(int(d)) for d in shown_days],
            probabilities.tolist(),
            width=30,
            title="failure probability over the final weeks",
        )
    )
    if first_alarm is None:
        print("\nMFPA never crossed the alarm threshold for this drive (a miss).")
    else:
        lead = meta.failure_day - first_alarm
        print(f"\nfirst alarm on day {first_alarm} -> {lead} days of warning "
              f"to back up and replace before the failure.")


if __name__ == "__main__":
    main()
