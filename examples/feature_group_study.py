#!/usr/bin/env python3
"""Scenario: which telemetry dimensions are worth collecting?

A PC manufacturer deciding what to log faces a cost/benefit question:
SMART comes for free, but shipping Windows-event and blue-screen
collectors costs engineering and bandwidth. This example reruns the
paper's feature-group comparison (Figs 9/13) on a synthetic fleet and
prints the marginal value of each dimension — the quantitative case the
paper makes for multidimensional collection.

Run:  python examples/feature_group_study.py
"""

from repro.core import MFPA, MFPAConfig
from repro.reporting import render_table
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

GROUPS = ("S", "SF", "SFW", "SFB", "SFWB")
TRAIN_END = 300
HORIZON = 420


def main() -> None:
    print("simulating a 500-drive vendor-I fleet ...")
    fleet = simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 500}),
            horizon_days=HORIZON,
            failure_boost=22.0,
            seed=21,
        )
    )
    print(f"  {len(fleet.tickets)} trouble tickets over {HORIZON} days\n")

    rows = []
    reports = {}
    for group in GROUPS:
        model = MFPA(MFPAConfig(feature_group_name=group))
        model.fit(fleet, train_end_day=TRAIN_END)
        report = model.evaluate(TRAIN_END, HORIZON).drive_report
        reports[group] = report
        rows.append([group, len(model.assembler_.columns), report.tpr, report.fpr, report.auc])
        print(f"  {group:5s} trained: TPR {report.tpr:.2%}, FPR {report.fpr:.2%}")

    print()
    print(
        render_table(
            ["Group", "#features", "TPR", "FPR", "AUC"],
            rows,
            title="Marginal value of each telemetry dimension",
        )
    )

    smart = reports["S"]
    full = reports["SFWB"]
    print(
        f"\ncollecting W+B on top of SMART+firmware moves TPR "
        f"{smart.tpr:.2%} -> {full.tpr:.2%} and FPR {smart.fpr:.2%} -> {full.fpr:.2%}."
    )
    missed_smart = (1 - smart.tpr) * 100
    missed_full = (1 - full.tpr) * 100
    print(
        f"per 100 failing drives, SMART-only misses ~{missed_smart:.0f}; "
        f"SFWB misses ~{missed_full:.0f} — each miss is a data-loss event "
        f"for a consumer with no RAID and no backups."
    )


if __name__ == "__main__":
    main()
