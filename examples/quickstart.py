#!/usr/bin/env python3
"""Quickstart: simulate a consumer SSD fleet, train MFPA, predict failures.

Walks the full pipeline of the paper in ~40 lines of user code:

1. simulate a vendor-I fleet (the paper's highest-replacement-rate
   vendor) with boosted failure rates so the demo finishes in seconds,
2. train an SFWB random-forest MFPA on the first 8 months,
3. evaluate drive-level TPR/FPR on the following 4 months,
4. show the alarms a deployment would raise.

Run:  python examples/quickstart.py
"""

from repro.core import MFPA, MFPAConfig
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

TRAIN_END = 240  # days of history used for training
HORIZON = 360


def main() -> None:
    print("simulating a 400-drive vendor-I consumer fleet ...")
    fleet = simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 400}),
            horizon_days=HORIZON,
            failure_boost=25.0,  # scale the 0.68% RR up for a small demo fleet
            seed=7,
        )
    )
    summary = fleet.summary()["I"]
    print(
        f"  {fleet.n_drives} drives, {fleet.n_records} daily records, "
        f"{int(summary['failures'])} failures ({summary['replacement_rate']:.1%} RR), "
        f"{len(fleet.tickets)} trouble tickets"
    )

    print("\ntraining SFWB-based MFPA (random forest) ...")
    model = MFPA(MFPAConfig(feature_group_name="SFWB"))
    model.fit(fleet, train_end_day=TRAIN_END)
    print(f"  features: {len(model.assembler_.columns)} columns")
    print(f"  labeled failures in history: {len(model.failure_times_)}")

    print(f"\nevaluating on days {TRAIN_END}-{HORIZON} (unseen future) ...")
    result = model.evaluate(TRAIN_END, HORIZON)
    report = result.drive_report
    print(f"  drives evaluated: {result.n_faulty_drives} faulty, "
          f"{result.n_healthy_drives} healthy")
    print(f"  TPR {report.tpr:.2%}   FPR {report.fpr:.2%}   "
          f"AUC {report.auc:.4f}   PDR {report.pdr:.2%}")
    print(f"  (paper, full production dataset: TPR 98.18%, FPR 0.56%)")

    # What a deployment does with the model: scan the current fleet and
    # raise alarms on the drives most likely to fail.
    print("\ntop suspect drives on the last observed day:")
    prepared = model.dataset_
    suspects = []
    for serial in prepared.drives:
        rows = prepared.drive_rows(serial)
        last_row_offset = rows["day"].size - 1
        base = prepared._row_slices()[serial].start
        probability = model.predict_proba_rows([base + last_row_offset])[0]
        suspects.append((probability, serial))
    suspects.sort(reverse=True)
    for probability, serial in suspects[:5]:
        meta = prepared.drives[serial]
        status = f"failed day {meta.failure_day}" if meta.failed else "healthy"
        print(f"  S/N {serial:5d}  p(fail)={probability:.3f}  truth: {status}")


if __name__ == "__main__":
    main()
