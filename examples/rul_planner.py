#!/usr/bin/env python3
"""Scenario: replacement logistics with remaining-useful-life estimates.

A binary alarm says "this drive will fail"; the logistics team asks
"do we ship the replacement overnight or with next week's batch?" This
example trains the RUL countdown regressor next to the MFPA classifier
and triages the fleet's alarmed drives into shipping buckets.

Run:  python examples/rul_planner.py
"""

import numpy as np

from repro.core import MFPA, MFPAConfig
from repro.core.rul import RULConfig, RULRegressor
from repro.reporting import render_table
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

TRAIN_END = 300
HORIZON = 420


def main() -> None:
    print("simulating a 500-drive vendor-I fleet ...")
    fleet = simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 500}),
            horizon_days=HORIZON,
            failure_boost=22.0,
            seed=31,
        )
    )

    print("training the failure classifier and the RUL regressor ...")
    classifier = MFPA(MFPAConfig(feature_group_name="SFWB"))
    classifier.fit(fleet, train_end_day=TRAIN_END)
    regressor = RULRegressor(RULConfig(n_estimators=40, seed=0))
    regressor.fit(fleet, train_end_day=TRAIN_END)

    evaluation = regressor.evaluate(TRAIN_END, HORIZON)
    print(
        f"  countdown accuracy on test failures: MAE {evaluation.mae_days:.1f} days, "
        f"{evaluation.within_7_days:.0%} within a week, "
        f"Spearman {evaluation.spearman:.2f}\n"
    )

    # Triage: scan the fleet at one "today", bucket the alarmed drives.
    today = TRAIN_END + 30
    prepared = classifier.dataset_
    row_slices = prepared._row_slices()
    triage = []
    for serial in prepared.drives:
        days = prepared.drive_rows(serial)["day"]
        recent = np.flatnonzero((days > today - 7) & (days <= today))
        if recent.size == 0:
            continue
        rows = row_slices[serial].start + recent[-1:]
        probability = classifier.predict_proba_rows(rows)[0]
        if probability < 0.5:
            continue
        countdown = regressor.predict_rows(rows)[0]
        meta = prepared.drives[serial]
        truth = (
            f"fails day {meta.failure_day}" if meta.failed else "healthy (false alarm)"
        )
        triage.append((countdown, serial, probability, truth))

    triage.sort()
    rows = []
    for countdown, serial, probability, truth in triage:
        if countdown <= 7:
            action = "overnight replacement + urgent backup"
        elif countdown <= 21:
            action = "next weekly batch"
        else:
            action = "monitor, re-score next week"
        rows.append([serial, f"{probability:.2f}", f"{countdown:.0f}d", action, truth])

    print(
        render_table(
            ["S/N", "p(fail)", "est. RUL", "Action", "Ground truth"],
            rows,
            title=f"Replacement triage on day {today}",
        )
    )
    print("\nRUL turns one alarm queue into a shipping schedule — the "
          "difference between panic and planning.")


if __name__ == "__main__":
    main()
