#!/usr/bin/env python3
"""Scenario: one prediction service, four SSD vendors.

A PC manufacturer ships drives from several vendors whose failure
behaviour differs (firmware ladders, replacement rates). The paper
trains *per-vendor* models (§IV-(4)) instead of per-drive-model ones.
This example trains a model per vendor, cross-applies vendor I's model
to the others, and shows why per-vendor training wins.

Run:  python examples/vendor_portability.py
"""

from repro.core import MFPA, MFPAConfig
from repro.reporting import render_table
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

TRAIN_END = 300
HORIZON = 420

# Per-vendor (count, boost, seed): boosts equalize absolute failure
# counts at these small fleet sizes (real RRs differ by 13x; Table VI).
FLEETS = {
    "I": (400, 22.0, 101),
    "II": (450, 150.0, 102),
    "III": (420, 190.0, 103),
    "IV": (150, 90.0, 104),
}


def main() -> None:
    fleets = {}
    for vendor, (count, boost, seed) in FLEETS.items():
        fleets[vendor] = simulate_fleet(
            FleetConfig(
                mix=VendorMix({vendor: count}),
                horizon_days=HORIZON,
                failure_boost=boost,
                seed=seed,
            )
        )
        print(
            f"vendor {vendor:>3}: {count} drives, "
            f"{len(fleets[vendor].tickets)} tickets"
        )

    print("\ntraining one SFWB model per vendor ...")
    rows = []
    for vendor, fleet in fleets.items():
        model = MFPA(MFPAConfig(feature_group_name="SFWB"))
        model.fit(fleet, train_end_day=TRAIN_END)
        result = model.evaluate(TRAIN_END, HORIZON)
        report = result.drive_report
        rows.append(
            [vendor, result.n_faulty_drives, report.tpr, report.fpr, report.auc]
        )
    print(
        render_table(
            ["Vendor", "Faulty (eval)", "TPR", "FPR", "AUC"],
            rows,
            title="Per-vendor MFPA models (paper Fig 11: I-III strong, IV data-starved)",
        )
    )

    # Cross-vendor transfer: score vendor II's fleet with vendor I's model.
    print("\ncross-vendor transfer: vendor I's model applied to vendor II ...")
    model_i = MFPA(MFPAConfig(feature_group_name="SFWB"))
    model_i.fit(fleets["I"], train_end_day=TRAIN_END)
    native = MFPA(MFPAConfig(feature_group_name="SFWB"))
    native.fit(fleets["II"], train_end_day=TRAIN_END)

    # Refit vendor I's trained estimator inside vendor II's pipeline
    # state so evaluation uses II's telemetry with I's decision logic.
    transferred = MFPA(MFPAConfig(feature_group_name="SFWB"))
    transferred.fit(fleets["II"], train_end_day=TRAIN_END)
    transferred.model_ = model_i.model_

    native_report = native.evaluate(TRAIN_END, HORIZON).drive_report
    transfer_report = transferred.evaluate(TRAIN_END, HORIZON).drive_report
    print(
        render_table(
            ["Model", "TPR", "FPR", "AUC"],
            [
                ["vendor II native", native_report.tpr, native_report.fpr, native_report.auc],
                ["vendor I transferred", transfer_report.tpr, transfer_report.fpr, transfer_report.auc],
            ],
            title="Native vs transferred model on vendor II",
        )
    )
    print(
        "\nper-vendor training is the paper's recommendation: firmware "
        "encodings and failure signatures are vendor-specific, so "
        "transferred models give up accuracy."
    )


if __name__ == "__main__":
    main()
