"""repro — reproduction of "Multidimensional Features Helping Predict
Failures in Production SSD-Based Consumer Storage Systems" (DATE 2023).

Top-level layout:

* :mod:`repro.telemetry` — synthetic CSS fleet simulator (the paper's
  proprietary dataset substitute),
* :mod:`repro.ml` — from-scratch ML substrate (no scikit-learn offline),
* :mod:`repro.core` — the MFPA pipeline and its baselines,
* :mod:`repro.analysis` — the observation studies behind each exhibit,
* :mod:`repro.reporting` — plain-text table rendering for benchmarks.

Quickstart::

    from repro.telemetry import FleetConfig, VendorMix, simulate_fleet
    from repro.core import MFPA, MFPAConfig

    fleet = simulate_fleet(FleetConfig(mix=VendorMix({"I": 500}),
                                       failure_boost=20.0, seed=1))
    model = MFPA(MFPAConfig(feature_group_name="SFWB"))
    model.fit(fleet, train_end_day=360)
    print(model.evaluate(360, 540).drive_report)
"""

__version__ = "1.0.0"
