"""Observation studies and evaluation helpers behind the paper's exhibits.

Each module regenerates the data of one table/figure from a simulated
fleet; the benchmark suite renders them. See DESIGN.md §4 for the full
experiment index.
"""

from repro.analysis.bathtub import failure_time_distribution
from repro.analysis.cumulative_events import cumulative_event_trajectories
from repro.analysis.dataset_summary import dataset_summary_rows
from repro.analysis.discontinuity import discontinuity_profile, drive_log_timelines
from repro.analysis.firmware_rates import firmware_failure_rates
from repro.analysis.overhead import overhead_rows
from repro.analysis.rasrf import rasrf_breakdown
from repro.analysis.survival import (
    fleet_survival,
    kaplan_meier,
    survival_at,
    survival_by_firmware,
    survival_by_vendor,
)
from repro.analysis.temporal import rolling_monthly_evaluation
from repro.analysis.ticket_lag import repair_lag_distribution, theta_coverage

__all__ = [
    "cumulative_event_trajectories",
    "fleet_survival",
    "kaplan_meier",
    "survival_at",
    "survival_by_firmware",
    "survival_by_vendor",
    "dataset_summary_rows",
    "discontinuity_profile",
    "drive_log_timelines",
    "failure_time_distribution",
    "firmware_failure_rates",
    "overhead_rows",
    "rasrf_breakdown",
    "repair_lag_distribution",
    "theta_coverage",
    "rolling_monthly_evaluation",
]
