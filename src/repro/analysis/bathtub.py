"""Fig 2 — failure count vs power-on time (the bathtub curve).

The paper buckets failed drives by their S_12 (power-on hours) at
failure and observes elevated infant mortality, a stable plateau and a
wear-out rise. We reproduce the same histogram from the simulated
fleet's failure days / power-on hours.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.dataset import TelemetryDataset


def failure_time_distribution(
    dataset: TelemetryDataset, n_buckets: int = 12, by: str = "power_on_hours"
) -> dict[str, np.ndarray]:
    """Histogram of failures over lifetime buckets.

    Parameters
    ----------
    by:
        ``"power_on_hours"`` buckets failures by S_12 at the last
        observed record (the paper's x-axis); ``"day"`` buckets by
        calendar failure day.

    Returns ``{"edges": ..., "counts": ..., "rates": ...}`` where rates
    normalize by the bucket width so the bathtub shape is visible even
    with uneven exposure.
    """
    if by not in ("power_on_hours", "day"):
        raise ValueError(f"unknown bucketing {by!r}")
    failure_values = []
    end_values = []  # every drive's final axis value (failure or censoring)
    for serial, meta in dataset.drives.items():
        if by == "day":
            rows_needed = meta.failed
            end = float(
                meta.failure_day
                if meta.failed
                else dataset.drive_rows(serial)["day"][-1]
            )
        else:
            end = float(dataset.drive_rows(serial)["s12_power_on_hours"][-1])
        end_values.append(end)
        if meta.failed:
            failure_values.append(end)
    if not failure_values:
        raise ValueError("no failed drives in dataset")
    failures = np.asarray(failure_values)
    ends = np.asarray(end_values)
    edges = np.linspace(0.0, float(failures.max()) + 1e-9, n_buckets + 1)
    counts, _ = np.histogram(failures, bins=edges)
    widths = np.diff(edges)
    # Empirical hazard with proper exposure: a drive is at risk in a
    # bucket iff its lifetime (failure or censoring point) reached the
    # bucket's left edge. Raw counts understate the wear-out rise once
    # early failures and light users have left the cohort.
    at_risk = np.array([np.sum(ends >= edge) for edge in edges[:-1]])
    hazard = np.where(at_risk > 0, counts / np.maximum(at_risk, 1), 0.0)
    return {"edges": edges, "counts": counts, "rates": counts / widths, "hazard": hazard}


def bathtub_shape_summary(counts: np.ndarray) -> dict[str, float]:
    """Quantify the bathtub: early, middle and late failure intensity.

    Splits the histogram into thirds and reports each third's mean
    count; a bathtub has ``early > middle`` and ``late >= middle``.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.size < 3:
        raise ValueError("need at least 3 buckets")
    thirds = np.array_split(counts, 3)
    return {
        "early": float(np.mean(thirds[0])),
        "middle": float(np.mean(thirds[1])),
        "late": float(np.mean(thirds[2])),
    }
