"""Figs 4 and 5 — cumulative W/B counts: healthy vs faulty drives.

The paper plots, for four faulty (F1-F4) and four healthy (N1-N4)
drives, the cumulative count of one event (W_161 in Fig 4, B_50 in
Fig 5) over the days leading up to the faulty drives' failures. Faulty
drives accumulate visibly more events.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.dataset import TelemetryDataset


def cumulative_event_trajectories(
    dataset: TelemetryDataset,
    column: str,
    n_faulty: int = 4,
    n_healthy: int = 4,
    window_days: int = 60,
    seed: int = 0,
) -> dict[str, list[dict]]:
    """Per-drive cumulative trajectories of one event column.

    For faulty drives the window is the ``window_days`` before failure;
    for healthy drives it is their last ``window_days`` of observation.
    Returns ``{"faulty": [...], "healthy": [...]}``, each entry holding
    ``serial``, ``days_before_end`` (negative to 0) and ``cumulative``.
    """
    if column not in dataset.columns:
        raise KeyError(f"unknown event column {column!r}")
    rng = np.random.default_rng(seed)

    def trajectory(serial: int, end_day: int) -> dict:
        rows = dataset.drive_rows(serial)
        days = rows["day"]
        mask = (days > end_day - window_days) & (days <= end_day)
        counts = rows[column][mask]
        return {
            "serial": int(serial),
            "days_before_end": (days[mask] - end_day).astype(int),
            "cumulative": np.cumsum(counts),
        }

    faulty = dataset.failed_serials()
    healthy = dataset.healthy_serials()
    if faulty.size < n_faulty or healthy.size < n_healthy:
        raise ValueError("not enough drives for the requested sample sizes")
    picked_faulty = rng.choice(faulty, size=n_faulty, replace=False)
    picked_healthy = rng.choice(healthy, size=n_healthy, replace=False)

    result = {"faulty": [], "healthy": []}
    for serial in picked_faulty:
        end = dataset.drives[int(serial)].failure_day
        result["faulty"].append(trajectory(int(serial), end))
    for serial in picked_healthy:
        end = int(dataset.drive_rows(int(serial))["day"][-1])
        result["healthy"].append(trajectory(int(serial), end))
    return result


def mean_final_cumulative(
    dataset: TelemetryDataset, column: str, window_days: int = 60
) -> dict[str, float]:
    """Population-level version: mean cumulative count of the event over
    the final window, for all faulty vs all healthy drives. The gap
    between the two means is the statistical content of Figs 4-5."""
    totals = {"faulty": [], "healthy": []}
    for serial, meta in dataset.drives.items():
        rows = dataset.drive_rows(serial)
        days = rows["day"]
        end = meta.failure_day if meta.failed else int(days[-1])
        mask = (days > end - window_days) & (days <= end)
        key = "faulty" if meta.failed else "healthy"
        totals[key].append(float(rows[column][mask].sum()))
    return {
        key: float(np.mean(values)) if values else float("nan")
        for key, values in totals.items()
    }
