"""Table VI — dataset summary per manufacturer.

Reproduces the paper's dataset table: per vendor the form factor,
protocol, flash technology, drive total, failure count and replacement
rate. On a boost-free fleet the replacement-rate *ordering*
(I >> IV > II > III) is the reproduced property.
"""

from __future__ import annotations

from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.models import VENDORS


def dataset_summary_rows(dataset: TelemetryDataset) -> list[dict]:
    """Return one Table-VI row per vendor present in the dataset."""
    summary = dataset.summary()
    rows = []
    for vendor in sorted(summary):
        entry = summary[vendor]
        rows.append(
            {
                "vendor": vendor,
                "form_factor": "M.2 (2280)",
                "protocol": "NVMe1.*",
                "flash_tech": "3D TLC",
                "total": int(entry["total"]),
                "sum_failure": int(entry["failures"]),
                "sum_rr": entry["replacement_rate"],
                "paper_rr": VENDORS[vendor].replacement_rate,
            }
        )
    return rows


def replacement_rate_ordering(rows: list[dict]) -> list[str]:
    """Vendors sorted by observed replacement rate, highest first."""
    return [
        row["vendor"]
        for row in sorted(rows, key=lambda r: r["sum_rr"], reverse=True)
    ]
