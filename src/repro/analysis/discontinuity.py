"""Fig 6 — how discontinuous consumer telemetry really is.

The paper plots, for faulty drives of vendor I, the scattered log
timestamps (e.g. F3 logged only on days (0, 11-14)) and the count of
faulty drives per interval bucket. We reproduce both the per-drive
timelines and a gap-length profile of the whole fleet.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.dataset import TelemetryDataset


def drive_log_timelines(
    dataset: TelemetryDataset, serials: list[int] | None = None, limit: int = 5
) -> list[dict]:
    """Observed-day timelines for (by default) the first faulty drives."""
    if serials is None:
        serials = [int(s) for s in dataset.failed_serials()[:limit]]
    timelines = []
    for serial in serials:
        days = dataset.drive_rows(serial)["day"]
        gaps = np.diff(days) - 1
        timelines.append(
            {
                "serial": serial,
                "days": days.astype(int),
                "n_records": int(days.size),
                "max_gap": int(gaps.max()) if gaps.size else 0,
            }
        )
    return timelines


def discontinuity_profile(dataset: TelemetryDataset, faulty_only: bool = True) -> dict:
    """Distribution of inter-record gaps across drives.

    Returns bucketed gap counts (``0``, ``1-3``, ``4-9``, ``>=10``
    missing days — the buckets MFPA's repair thresholds act on) plus the
    share of drives having at least one long gap.
    """
    buckets = {"0": 0, "1-3": 0, "4-9": 0, ">=10": 0}
    drives_with_long_gap = 0
    n_drives = 0
    serials = dataset.failed_serials() if faulty_only else dataset.serials
    for serial in serials:
        days = dataset.drive_rows(int(serial))["day"]
        if days.size < 2:
            continue
        n_drives += 1
        gaps = np.diff(days) - 1
        buckets["0"] += int(np.sum(gaps == 0))
        buckets["1-3"] += int(np.sum((gaps >= 1) & (gaps <= 3)))
        buckets["4-9"] += int(np.sum((gaps >= 4) & (gaps <= 9)))
        buckets[">=10"] += int(np.sum(gaps >= 10))
        if np.any(gaps >= 10):
            drives_with_long_gap += 1
    if n_drives == 0:
        raise ValueError("no drives with enough records")
    return {
        "gap_buckets": buckets,
        "n_drives": n_drives,
        "share_with_long_gap": drives_with_long_gap / n_drives,
    }
