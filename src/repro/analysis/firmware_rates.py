"""Fig 3 — failure rate per firmware version.

Observation #2: for every vendor the earlier the firmware version, the
higher its failure rate. We compute, per firmware version, the fraction
of drives on that version that failed during the study.
"""

from __future__ import annotations

from collections import defaultdict


def firmware_failure_rates(dataset) -> list[dict]:
    """Return one row per firmware version with population and rate.

    Rows are sorted by (vendor, version index) so each vendor's ladder
    reads oldest-to-newest, matching Fig 3's x-axis.
    """
    totals: dict[str, int] = defaultdict(int)
    failures: dict[str, int] = defaultdict(int)
    vendor_of: dict[str, str] = {}
    for meta in dataset.drives.values():
        totals[meta.firmware] += 1
        vendor_of[meta.firmware] = meta.vendor
        if meta.failed:
            failures[meta.firmware] += 1

    def sort_key(name: str) -> tuple[str, int]:
        vendor, _, index = name.partition("_F_")
        return vendor, int(index)

    rows = []
    for name in sorted(totals, key=sort_key):
        vendor, _, index = name.partition("_F_")
        rows.append(
            {
                "firmware": name,
                "vendor": vendor,
                "version_index": int(index),
                "n_drives": totals[name],
                "n_failures": failures[name],
                "failure_rate": failures[name] / totals[name],
            }
        )
    return rows


def is_monotone_decreasing_per_vendor(rows: list[dict], slack: float = 0.0) -> bool:
    """Check Fig 3's claim: within a vendor, later firmware fails less.

    ``slack`` allows small sampling noise (rate may rise by at most
    ``slack`` between consecutive versions without failing the check).
    """
    by_vendor: dict[str, list[tuple[int, float]]] = defaultdict(list)
    for row in rows:
        by_vendor[row["vendor"]].append((row["version_index"], row["failure_rate"]))
    for versions in by_vendor.values():
        versions.sort()
        rates = [rate for _, rate in versions]
        for earlier, later in zip(rates, rates[1:]):
            if later > earlier + slack:
                return False
    return True
