"""Fig 20 — per-stage overhead of the MFPA pipeline.

The paper reports, per stage (feature engineering, labeling, sampling,
training, prediction), the data-item count and execution time, noting
that feature engineering dominates and that scoring 4M records takes
~3 minutes. We read the same accounting off a fitted pipeline's
``stage_stats_``.
"""

from __future__ import annotations

from repro.core.pipeline import MFPA

#: Presentation order matching the pipeline's execution order.
STAGE_ORDER = ("feature_engineering", "labeling", "sampling", "training", "prediction")


def overhead_rows(model: MFPA) -> list[dict]:
    """One row per pipeline stage: items processed, seconds, throughput."""
    if not model.stage_stats_:
        raise ValueError("model has no stage statistics; fit/evaluate it first")
    rows = []
    for stage in STAGE_ORDER:
        stats = model.stage_stats_.get(stage)
        if stats is None:
            continue
        seconds = stats["seconds"]
        items = stats["n_items"]
        rows.append(
            {
                "stage": stage,
                "n_items": int(items),
                "seconds": seconds,
                "items_per_second": items / seconds if seconds > 0 else float("inf"),
            }
        )
    return rows
