"""Table I — RaSRF trouble-ticket breakdown.

Groups a fleet's tickets by failure level / category / cause and
reports each cause's share, reproducing the structure (drive-level ~32%,
system-level ~68%) the paper mines from production tickets.
"""

from __future__ import annotations

from collections import Counter

from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.tickets import RASRF_CATEGORIES


def rasrf_breakdown(dataset: TelemetryDataset) -> list[dict]:
    """Return Table-I rows: one dict per cause with its observed share.

    Rows follow the catalog order; causes with zero observed tickets
    still appear (share 0.0) so the table shape is stable.
    """
    total = len(dataset.tickets)
    if total == 0:
        raise ValueError("dataset has no trouble tickets")
    by_cause = Counter(ticket.cause for ticket in dataset.tickets)
    level_totals = Counter(ticket.failure_level for ticket in dataset.tickets)

    rows = []
    for category in RASRF_CATEGORIES:
        count = by_cause.get(category.cause, 0)
        rows.append(
            {
                "failure_level": category.failure_level,
                "category": category.category,
                "cause": category.cause,
                "count": count,
                "share": count / total,
                "expected_share": category.probability,
                "level_share": level_totals[category.failure_level] / total,
            }
        )
    return rows


def level_shares(dataset: TelemetryDataset) -> dict[str, float]:
    """Drive-level vs system-level ticket shares (the 31.62/68.38 split)."""
    total = len(dataset.tickets)
    if total == 0:
        raise ValueError("dataset has no trouble tickets")
    counts = Counter(ticket.failure_level for ticket in dataset.tickets)
    return {level: count / total for level, count in sorted(counts.items())}
