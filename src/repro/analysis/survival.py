"""Survival analysis of the fleet (Kaplan-Meier), enriching Figs 2-3.

The paper reads lifetime structure off histograms; reliability
engineering's standard tool is the Kaplan-Meier estimator, which
handles the censoring our fleets have (most drives never fail within
the study window). Used to compare survival across firmware versions
and vendors.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.dataset import TelemetryDataset


def kaplan_meier(
    durations: np.ndarray, observed: np.ndarray
) -> dict[str, np.ndarray]:
    """Kaplan-Meier survival estimate.

    Parameters
    ----------
    durations:
        Time until failure (observed) or until censoring.
    observed:
        1 where the duration ends in a failure, 0 where censored.

    Returns ``{"times": ..., "survival": ...}`` — the step function's
    event times and the survival probability after each.
    """
    durations = np.asarray(durations, dtype=float)
    observed = np.asarray(observed).astype(bool)
    if durations.shape != observed.shape:
        raise ValueError("durations and observed must align")
    if durations.size == 0:
        raise ValueError("no observations")
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")

    event_times = np.unique(durations[observed])
    survival = []
    current = 1.0
    for time in event_times:
        at_risk = int(np.sum(durations >= time))
        events = int(np.sum(durations[observed] == time))
        current *= 1.0 - events / at_risk
        survival.append(current)
    return {"times": event_times, "survival": np.asarray(survival)}


def survival_at(km: dict[str, np.ndarray], time: float) -> float:
    """Evaluate a Kaplan-Meier curve at a time point."""
    times = km["times"]
    if times.size == 0 or time < times[0]:
        return 1.0
    index = int(np.searchsorted(times, time, side="right")) - 1
    return float(km["survival"][index])


def _drive_durations(
    dataset: TelemetryDataset, serials
) -> tuple[np.ndarray, np.ndarray]:
    durations, observed = [], []
    for serial in serials:
        meta = dataset.drives[int(serial)]
        if meta.failed:
            durations.append(float(meta.failure_day))
            observed.append(1)
        else:
            durations.append(float(dataset.drive_rows(int(serial))["day"][-1]))
            observed.append(0)
    return np.asarray(durations), np.asarray(observed)


def fleet_survival(dataset: TelemetryDataset) -> dict[str, np.ndarray]:
    """KM curve of the whole fleet (censoring at last observation)."""
    durations, observed = _drive_durations(dataset, dataset.serials)
    return kaplan_meier(durations, observed)


def survival_by_firmware(dataset: TelemetryDataset) -> dict[str, dict[str, np.ndarray]]:
    """One KM curve per firmware version (Fig 3's claim, survival form).

    Earlier firmware should sit strictly below later firmware of the
    same vendor at matched time points.
    """
    groups: dict[str, list[int]] = {}
    for serial, meta in dataset.drives.items():
        groups.setdefault(meta.firmware, []).append(serial)
    curves = {}
    for firmware, serials in sorted(groups.items()):
        durations, observed = _drive_durations(dataset, serials)
        if not observed.any():
            continue  # no failures -> flat curve, nothing to estimate
        curves[firmware] = kaplan_meier(durations, observed)
    return curves


def survival_by_vendor(dataset: TelemetryDataset) -> dict[str, dict[str, np.ndarray]]:
    """One KM curve per vendor (Table VI's RR ordering, survival form)."""
    groups: dict[str, list[int]] = {}
    for serial, meta in dataset.drives.items():
        groups.setdefault(meta.vendor, []).append(serial)
    curves = {}
    for vendor, serials in sorted(groups.items()):
        durations, observed = _drive_durations(dataset, serials)
        if not observed.any():
            continue
        curves[vendor] = kaplan_meier(durations, observed)
    return curves
