"""Figs 12/16 — temporal robustness: predict for months without retraining.

The paper trains MFPA once and lets it predict for five consecutive
months; TPR stays stable while FPR creeps up after 2-3 months (feature
drift), motivating periodic model iteration.
"""

from __future__ import annotations

from repro.core.pipeline import MFPA, EvaluationResult


def rolling_monthly_evaluation(
    model: MFPA,
    start_day: int,
    n_months: int = 5,
    month_days: int = 30,
) -> list[dict]:
    """Evaluate a fitted model over consecutive months, no retraining.

    Returns one row per month with the drive-level TPR/FPR/AUC. Months
    with no evaluable drives are reported with NaNs rather than raised.
    """
    rows = []
    for month in range(n_months):
        period_start = start_day + month * month_days
        period_end = period_start + month_days
        try:
            result: EvaluationResult = model.evaluate(period_start, period_end)
            report = result.drive_report
            rows.append(
                {
                    "month": month + 1,
                    "period": (period_start, period_end),
                    "tpr": report.tpr,
                    "fpr": report.fpr,
                    "auc": report.auc,
                    "n_faulty": result.n_faulty_drives,
                    "n_healthy": result.n_healthy_drives,
                }
            )
        except ValueError:
            rows.append(
                {
                    "month": month + 1,
                    "period": (period_start, period_end),
                    "tpr": float("nan"),
                    "fpr": float("nan"),
                    "auc": float("nan"),
                    "n_faulty": 0,
                    "n_healthy": 0,
                }
            )
    return rows
