"""Repair-lag behaviour: the evidence behind the θ=7 choice.

The θ threshold exists because users delay repairs: the ticket's IMT
lags the true failure. This analysis measures the lag distribution of
a fleet's tickets (possible in simulation, where the true failure day
is known) and reports what fraction of tickets each θ would trust —
the quantitative backdrop of the Fig 7 sensitivity sweep.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.dataset import TelemetryDataset


def repair_lag_distribution(dataset: TelemetryDataset) -> dict:
    """Lag statistics over all tickets (IMT minus true failure day)."""
    lags = []
    for ticket in dataset.tickets:
        meta = dataset.drives.get(ticket.serial)
        if meta is None or not meta.failed:
            continue
        lags.append(ticket.initial_maintenance_time - meta.failure_day)
    if not lags:
        raise ValueError("dataset has no tickets for failed drives")
    lags_arr = np.asarray(lags, dtype=float)
    return {
        "n_tickets": int(lags_arr.size),
        "median": float(np.median(lags_arr)),
        "mean": float(lags_arr.mean()),
        "p90": float(np.percentile(lags_arr, 90)),
        "max": float(lags_arr.max()),
        "lags": lags_arr,
    }


def theta_coverage(dataset: TelemetryDataset, thetas=(1, 3, 5, 7, 10, 14, 21)) -> list[dict]:
    """For each θ: the share of tickets whose lag is within θ.

    Tickets within θ get labeled at the (accurate) last tracking point;
    the rest fall back to the ``IMT - θ`` guess — so this share is the
    fraction of *precisely* labeled failures.
    """
    stats = repair_lag_distribution(dataset)
    lags = stats["lags"]
    return [
        {
            "theta": theta,
            "share_within": float(np.mean(lags <= theta)),
        }
        for theta in thetas
    ]
