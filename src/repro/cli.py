"""Command-line interface: ``python -m repro <command>``.

Commands
--------
simulate    simulate a fleet and save it to a directory
train       train an MFPA model on a saved fleet and report metrics
monitor     replay a monitored deployment over a saved fleet
summary     print Table-VI style statistics of a saved fleet
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.dataset_summary import dataset_summary_rows
from repro.core.deployment import simulate_operation
from repro.core.pipeline import MFPA, MFPAConfig
from repro.reporting import render_table
from repro.telemetry.fleet import FleetConfig, VendorMix, simulate_fleet
from repro.telemetry.io import load_dataset, save_dataset
from repro.telemetry.models import VENDORS


def _add_simulate(subparsers) -> None:
    parser = subparsers.add_parser("simulate", help="simulate a fleet and save it")
    parser.add_argument("output", help="directory to write the dataset to")
    parser.add_argument(
        "--vendor",
        action="append",
        metavar="VENDOR=COUNT",
        help="per-vendor drive count, e.g. --vendor I=500 (repeatable); "
        "default: proportional 2000-drive fleet",
    )
    parser.add_argument("--horizon-days", type=int, default=540)
    parser.add_argument("--failure-boost", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=0)


def _add_train(subparsers) -> None:
    parser = subparsers.add_parser("train", help="train MFPA on a saved fleet")
    parser.add_argument("dataset", help="directory written by `simulate`")
    parser.add_argument("--feature-group", default="SFWB")
    parser.add_argument("--train-end-day", type=int, default=360)
    parser.add_argument("--eval-end-day", type=int, default=480)
    parser.add_argument("--theta", type=int, default=7)
    parser.add_argument("--positive-window", type=int, default=14)
    parser.add_argument("--lookahead", type=int, default=0)
    parser.add_argument("--feature-selection", action="store_true")


def _add_monitor(subparsers) -> None:
    parser = subparsers.add_parser("monitor", help="replay a monitored deployment")
    parser.add_argument("dataset")
    parser.add_argument("--start-day", type=int, default=300)
    parser.add_argument("--end-day", type=int, default=540)
    parser.add_argument("--window-days", type=int, default=30)
    parser.add_argument("--alarm-threshold", type=float, default=0.5)


def _add_summary(subparsers) -> None:
    parser = subparsers.add_parser("summary", help="Table-VI stats of a saved fleet")
    parser.add_argument("dataset")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSD failure prediction in consumer storage systems (DATE 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_simulate(subparsers)
    _add_train(subparsers)
    _add_monitor(subparsers)
    _add_summary(subparsers)
    return parser


def _parse_mix(entries: list[str] | None) -> VendorMix:
    if not entries:
        return VendorMix.proportional(2000)
    counts: dict[str, int] = {}
    for entry in entries:
        vendor, _, count = entry.partition("=")
        if vendor not in VENDORS or not count.isdigit():
            raise SystemExit(f"invalid --vendor spec {entry!r}; expected e.g. I=500")
        counts[vendor] = int(count)
    return VendorMix(counts)


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = FleetConfig(
        mix=_parse_mix(args.vendor),
        horizon_days=args.horizon_days,
        failure_boost=args.failure_boost,
        seed=args.seed,
    )
    dataset = simulate_fleet(config)
    path = save_dataset(dataset, args.output)
    print(
        f"simulated {dataset.n_drives} drives / {dataset.n_records} records "
        f"/ {len(dataset.tickets)} tickets -> {path}"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    config = MFPAConfig(
        feature_group_name=args.feature_group,
        theta=args.theta,
        positive_window=args.positive_window,
        lookahead=args.lookahead,
        feature_selection=args.feature_selection,
    )
    model = MFPA(config)
    model.fit(dataset, train_end_day=args.train_end_day)
    result = model.evaluate(args.train_end_day, args.eval_end_day)
    print(
        render_table(
            ["Level", "TPR", "FPR", "ACC", "PDR", "AUC"],
            [
                ["drive", *[getattr(result.drive_report, k) for k in ("tpr", "fpr", "accuracy", "pdr", "auc")]],
                ["record", *[getattr(result.record_report, k) for k in ("tpr", "fpr", "accuracy", "pdr", "auc")]],
            ],
            title=(
                f"MFPA {args.feature_group}: trained through day {args.train_end_day}, "
                f"evaluated days {args.train_end_day}-{args.eval_end_day}"
            ),
        )
    )
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    summary = simulate_operation(
        dataset,
        start_day=args.start_day,
        end_day=args.end_day,
        window_days=args.window_days,
        alarm_threshold=args.alarm_threshold,
    )
    print(
        render_table(
            ["Window", "Alarms", "Scored", "Retrained"],
            [
                [f"{w.start_day}-{w.end_day}", len(w.alarms), w.n_drives_scored, w.retrained]
                for w in summary.windows
            ],
            title="Monitored operation",
        )
    )
    print(
        f"\nalarms: {summary.n_alarms} ({summary.true_alarms} true, "
        f"{summary.false_alarms} false); precision {summary.precision:.2%}, "
        f"recall {summary.recall:.2%}, median lead time "
        f"{summary.median_lead_time:.0f} days"
    )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    rows = dataset_summary_rows(dataset)
    print(
        render_table(
            ["Manu.", "Total", "Sum_failure", "Sum_RR", "Paper RR"],
            [
                [r["vendor"], r["total"], r["sum_failure"], r["sum_rr"], r["paper_rr"]]
                for r in rows
            ],
            title="Dataset summary (Table VI)",
        )
    )
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "train": _cmd_train,
    "monitor": _cmd_monitor,
    "summary": _cmd_summary,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
