"""Command-line interface: ``python -m repro <command>``.

Commands
--------
simulate    simulate a fleet and save it to a directory
train       train an MFPA model on a saved fleet and report metrics
monitor     replay a monitored deployment over a saved fleet
summary     print Table-VI style statistics of a saved fleet
chaos       corrupt a fleet with fault injectors, sanitize, and
            measure the monitored pipeline's degradation
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.dataset_summary import dataset_summary_rows
from repro.core.deployment import simulate_operation
from repro.core.pipeline import MFPA, MFPAConfig
from repro.reporting import render_table
from repro.telemetry.fleet import FleetConfig, VendorMix, simulate_fleet
from repro.telemetry.io import load_dataset, save_dataset
from repro.telemetry.models import VENDORS


def _add_simulate(subparsers) -> None:
    parser = subparsers.add_parser("simulate", help="simulate a fleet and save it")
    parser.add_argument("output", help="directory to write the dataset to")
    parser.add_argument(
        "--vendor",
        action="append",
        metavar="VENDOR=COUNT",
        help="per-vendor drive count, e.g. --vendor I=500 (repeatable); "
        "default: proportional 2000-drive fleet",
    )
    parser.add_argument("--horizon-days", type=int, default=540)
    parser.add_argument("--failure-boost", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=0)


def _add_n_jobs_flag(parser) -> None:
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for training/search/scoring (1 = serial, "
        "-1 = all cores); results are identical at every setting",
    )


def _add_loading_flags(parser) -> None:
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="repair/quarantine invalid rows on load instead of trusting the directory",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check dataset invariants on load and fail with the violation list",
    )


def _add_train(subparsers) -> None:
    parser = subparsers.add_parser("train", help="train MFPA on a saved fleet")
    parser.add_argument("dataset", help="directory written by `simulate`")
    parser.add_argument("--feature-group", default="SFWB")
    parser.add_argument("--train-end-day", type=int, default=360)
    parser.add_argument("--eval-end-day", type=int, default=480)
    parser.add_argument("--theta", type=int, default=7)
    parser.add_argument("--positive-window", type=int, default=14)
    parser.add_argument("--lookahead", type=int, default=0)
    parser.add_argument("--feature-selection", action="store_true")
    _add_n_jobs_flag(parser)
    _add_loading_flags(parser)


def _add_monitor(subparsers) -> None:
    parser = subparsers.add_parser("monitor", help="replay a monitored deployment")
    parser.add_argument("dataset")
    parser.add_argument("--start-day", type=int, default=300)
    parser.add_argument("--end-day", type=int, default=540)
    parser.add_argument("--window-days", type=int, default=30)
    parser.add_argument("--alarm-threshold", type=float, default=0.5)
    parser.add_argument(
        "--checkpoint-dir",
        help="checkpoint monitor state after every window (resumable with --resume)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from an existing checkpoint in --checkpoint-dir",
    )
    parser.add_argument(
        "--allow-degraded",
        action="store_true",
        help="fall back to a reduced feature group when dimensions are missing",
    )
    _add_n_jobs_flag(parser)
    _add_loading_flags(parser)


def _add_summary(subparsers) -> None:
    parser = subparsers.add_parser("summary", help="Table-VI stats of a saved fleet")
    parser.add_argument("dataset")
    _add_loading_flags(parser)


def _add_chaos(subparsers) -> None:
    parser = subparsers.add_parser(
        "chaos",
        help="inject collector faults, sanitize, and measure pipeline degradation",
    )
    parser.add_argument("dataset")
    parser.add_argument(
        "--fault",
        action="append",
        metavar="NAME",
        help="fault injector to apply (repeatable); default: each one in turn. "
        "Known: drop_days, duplicate_rows, stuck_sensor, counter_reset, "
        "missing_dimension, out_of_order",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--start-day", type=int, default=300)
    parser.add_argument("--end-day", type=int, default=540)
    parser.add_argument("--window-days", type=int, default=30)
    parser.add_argument("--alarm-threshold", type=float, default=0.5)
    parser.add_argument(
        "--no-sanitize",
        action="store_true",
        help="feed the corrupted dataset to the pipeline without quarantine "
        "ingestion (most faults will then crash it — that is the point)",
    )
    _add_n_jobs_flag(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSD failure prediction in consumer storage systems (DATE 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_simulate(subparsers)
    _add_train(subparsers)
    _add_monitor(subparsers)
    _add_summary(subparsers)
    _add_chaos(subparsers)
    return parser


def _parse_mix(entries: list[str] | None) -> VendorMix:
    if not entries:
        return VendorMix.proportional(2000)
    counts: dict[str, int] = {}
    for entry in entries:
        vendor, _, count = entry.partition("=")
        if vendor not in VENDORS or not count.isdigit():
            raise SystemExit(f"invalid --vendor spec {entry!r}; expected e.g. I=500")
        counts[vendor] = int(count)
    return VendorMix(counts)


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = FleetConfig(
        mix=_parse_mix(args.vendor),
        horizon_days=args.horizon_days,
        failure_boost=args.failure_boost,
        seed=args.seed,
    )
    dataset = simulate_fleet(config)
    path = save_dataset(dataset, args.output)
    print(
        f"simulated {dataset.n_drives} drives / {dataset.n_records} records "
        f"/ {len(dataset.tickets)} tickets -> {path}"
    )
    return 0


def _load(args: argparse.Namespace):
    return load_dataset(
        args.dataset,
        validate=getattr(args, "validate", False),
        sanitize=getattr(args, "sanitize", False),
    )


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = _load(args)
    config = MFPAConfig(
        feature_group_name=args.feature_group,
        theta=args.theta,
        positive_window=args.positive_window,
        lookahead=args.lookahead,
        feature_selection=args.feature_selection,
        n_jobs=args.n_jobs,
    )
    model = MFPA(config)
    model.fit(dataset, train_end_day=args.train_end_day)
    result = model.evaluate(args.train_end_day, args.eval_end_day)
    print(
        render_table(
            ["Level", "TPR", "FPR", "ACC", "PDR", "AUC"],
            [
                ["drive", *[getattr(result.drive_report, k) for k in ("tpr", "fpr", "accuracy", "pdr", "auc")]],
                ["record", *[getattr(result.record_report, k) for k in ("tpr", "fpr", "accuracy", "pdr", "auc")]],
            ],
            title=(
                f"MFPA {args.feature_group}: trained through day {args.train_end_day}, "
                f"evaluated days {args.train_end_day}-{args.eval_end_day}"
            ),
        )
    )
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    dataset = _load(args)
    summary = simulate_operation(
        dataset,
        start_day=args.start_day,
        end_day=args.end_day,
        window_days=args.window_days,
        alarm_threshold=args.alarm_threshold,
        allow_degraded=args.allow_degraded,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        n_jobs=args.n_jobs,
    )
    print(
        render_table(
            ["Window", "Alarms", "Scored", "Retrained"],
            [
                [f"{w.start_day}-{w.end_day}", len(w.alarms), w.n_drives_scored, w.retrained]
                for w in summary.windows
            ],
            title="Monitored operation",
        )
    )
    print(
        f"\nalarms: {summary.n_alarms} ({summary.true_alarms} true, "
        f"{summary.false_alarms} false); precision {summary.precision:.2%}, "
        f"recall {summary.recall:.2%}, median lead time "
        f"{summary.median_lead_time:.0f} days"
    )
    if summary.unknown_serial_alarms:
        print(f"unknown-serial alarms: {summary.unknown_serial_alarms}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.robustness import FAULT_REGISTRY, inject, make_fault, sanitize_dataset

    clean = _load(args)
    fault_names = args.fault or sorted(FAULT_REGISTRY)

    def run(dataset):
        summary = simulate_operation(
            dataset,
            start_day=args.start_day,
            end_day=args.end_day,
            window_days=args.window_days,
            alarm_threshold=args.alarm_threshold,
            n_jobs=args.n_jobs,
        )
        fpr_denominator = sum(1 for m in dataset.drives.values() if not m.failed)
        fpr = summary.false_alarms / fpr_denominator if fpr_denominator else float("nan")
        return summary.recall, fpr, summary.median_lead_time

    baseline = run(clean)
    rows = [["(clean)", f"{baseline[0]:.3f}", f"{baseline[1]:.3f}", f"{baseline[2]:.0f}", "-", "-", "-"]]
    for name in fault_names:
        corrupted = inject(clean, [make_fault(name)], seed=args.seed)
        if not args.no_sanitize:
            corrupted, report = sanitize_dataset(corrupted)
            print(f"[{name}] quarantine: {report.summary()}")
        tpr, fpr, lead = run(corrupted)
        rows.append(
            [
                name,
                f"{tpr:.3f}",
                f"{fpr:.3f}",
                f"{lead:.0f}",
                f"{tpr - baseline[0]:+.3f}",
                f"{fpr - baseline[1]:+.3f}",
                f"{lead - baseline[2]:+.0f}",
            ]
        )
    print(
        render_table(
            ["Fault", "TPR", "FPR", "Lead", "dTPR", "dFPR", "dLead"],
            rows,
            title=f"Chaos degradation (seed {args.seed})",
        )
    )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    dataset = _load(args)
    rows = dataset_summary_rows(dataset)
    print(
        render_table(
            ["Manu.", "Total", "Sum_failure", "Sum_RR", "Paper RR"],
            [
                [r["vendor"], r["total"], r["sum_failure"], r["sum_rr"], r["paper_rr"]]
                for r in rows
            ],
            title="Dataset summary (Table VI)",
        )
    )
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "train": _cmd_train,
    "monitor": _cmd_monitor,
    "summary": _cmd_summary,
    "chaos": _cmd_chaos,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
