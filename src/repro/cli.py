"""Command-line interface: ``python -m repro <command>``.

Commands
--------
simulate    simulate a fleet and save it to a directory
train       train an MFPA model on a saved fleet and report metrics
monitor     replay a monitored deployment over a saved fleet
summary     print Table-VI style statistics of a saved fleet
chaos       corrupt a fleet with fault injectors, sanitize, and
            measure the monitored pipeline's degradation
serve       run the always-on fleet-scoring daemon over a recorded
            reading stream (checkpointing, crash-resume, alarm sink)
replay      record a fleet as a replayable per-day reading stream
obs         observability utilities (``obs report <run-dir>``,
            ``obs top <url>`` live dashboard)
scale       shard-store utilities (``scale inspect <shard-dir>``)
model       versioned model artifacts: ``model save`` fits and persists
            a schema-versioned, hash-manifested artifact directory that
            ``monitor --model-artifact`` / ``serve --model-artifact``
            score through without retraining; ``model inspect`` prints
            the manifest, ``model load`` verifies integrity

Out-of-core operation
---------------------
``simulate --shards N`` streams the fleet straight into an npz shard
store (never holding it in RAM); ``train`` and ``monitor`` detect a
shard-store argument and run the streaming trainer / partitioned
monitor from :mod:`repro.scale`, producing results bit-identical to
the in-RAM commands on the same fleet. ``--memory-ceiling-mb`` turns
on peak-RSS enforcement (see docs/scaling.md).

Observability
-------------
``train``/``monitor``/``chaos`` accept ``--trace`` (span tracing),
``--metrics-out PATH`` (JSONL events, or Prometheus text when PATH ends
with ``.prom``), ``--log-level``/``--log-json`` (structured logging) and
``--run-dir DIR`` (write ``DIR/manifest.json`` stamping config hash,
dataset fingerprint, span tree, metrics and results). Default output is
unchanged when none of these flags are given.

``serve`` and ``monitor`` additionally accept ``--obs-port`` (live HTTP
``/metrics`` + ``/health`` + ``/status`` endpoint on a daemon thread)
and ``--obs-textfile PATH`` (periodic atomic ``.prom`` export for the
node_exporter textfile collector); ``repro obs top URL`` renders a
refreshing terminal dashboard from a live endpoint.

Performance
-----------
``train``/``monitor``/``chaos`` accept ``--split-algorithm hist`` to
swap the tree learners' exact sort-based split search for the
histogram-binned backend (see docs/performance.md); the default
``exact`` is bit-identical to previous releases.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.dataset_summary import dataset_summary_rows
from repro.core.deployment import simulate_operation
from repro.core.pipeline import MFPA, MFPAConfig
from repro.obs import (
    annotate_run,
    config_hash,
    configure_logging,
    current_run,
    dataset_fingerprint,
    disable_observability,
    enable_observability,
    get_logger,
    get_registry,
    get_tracer,
    record_result,
    set_current_run,
    start_run,
    trace_span,
)
from repro.obs.logs import LEVELS
from repro.reporting import render_table
from repro.telemetry.fleet import FleetConfig, VendorMix, simulate_fleet
from repro.telemetry.io import load_dataset, save_dataset
from repro.telemetry.models import VENDORS

log = get_logger("repro.cli")


def _add_simulate(subparsers) -> None:
    parser = subparsers.add_parser("simulate", help="simulate a fleet and save it")
    parser.add_argument("output", help="directory to write the dataset to")
    parser.add_argument(
        "--vendor",
        action="append",
        metavar="VENDOR=COUNT",
        help="per-vendor drive count, e.g. --vendor I=500 (repeatable); "
        "default: proportional 2000-drive fleet",
    )
    parser.add_argument("--horizon-days", type=int, default=540)
    parser.add_argument("--failure-boost", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="write an out-of-core shard store with N serial-partitioned "
        "npz shards instead of a flat dataset directory; generation "
        "streams one shard at a time (see docs/scaling.md)",
    )
    parser.add_argument(
        "--compress",
        action="store_true",
        help="zlib-compress the npz shards (smaller, slower; only with --shards)",
    )


def _add_n_jobs_flag(parser) -> None:
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for training/search/scoring (1 = serial, "
        "-1 = all cores); results are identical at every setting",
    )


def _add_memory_ceiling_flag(parser) -> None:
    parser.add_argument(
        "--memory-ceiling-mb",
        type=int,
        default=None,
        metavar="MB",
        help="fail the run if peak RSS ever exceeds this many MiB "
        "(checked after every shard/stage; default: unenforced)",
    )


def _add_split_algorithm_flag(parser) -> None:
    parser.add_argument(
        "--split-algorithm",
        choices=("exact", "hist"),
        default="exact",
        help="tree split search: 'exact' (bit-reproducible per-node sorts) or "
        "'hist' (quantile-binned histogram accumulation, faster on large "
        "fleets; see docs/performance.md)",
    )


def _add_loading_flags(parser) -> None:
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="repair/quarantine invalid rows on load instead of trusting the directory",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check dataset invariants on load and fail with the violation list",
    )


def _add_obs_flags(parser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record a span tree (wall/CPU per stage); printed at exit "
        "unless --run-dir captures it into the manifest",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the run's metrics as JSONL events "
        "(Prometheus text format when PATH ends with .prom)",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=sorted(LEVELS, key=LEVELS.get),
        help="structured-logging threshold (default: info)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines instead of plain text",
    )
    parser.add_argument(
        "--run-dir",
        metavar="DIR",
        help="stamp this run: write DIR/manifest.json (config hash, dataset "
        "fingerprint, span tree, metrics, results) plus DIR/metrics.prom",
    )


def _add_obs_server_flags(parser) -> None:
    parser.add_argument(
        "--obs-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live GET /metrics, /health and /status on this port "
        "while the command runs (0 = ephemeral; default: no endpoint)",
    )
    parser.add_argument(
        "--obs-host",
        default="127.0.0.1",
        metavar="HOST",
        help="bind address for --obs-port (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--obs-textfile",
        metavar="PATH",
        help="periodically write Prometheus text to PATH (atomic replace; "
        "for the node_exporter textfile collector)",
    )
    parser.add_argument(
        "--obs-textfile-interval",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="seconds between --obs-textfile writes (default: 15)",
    )


def _add_train(subparsers) -> None:
    parser = subparsers.add_parser("train", help="train MFPA on a saved fleet")
    parser.add_argument("dataset", help="directory written by `simulate`")
    parser.add_argument("--feature-group", default="SFWB")
    parser.add_argument("--train-end-day", type=int, default=360)
    parser.add_argument("--eval-end-day", type=int, default=480)
    parser.add_argument("--theta", type=int, default=7)
    parser.add_argument("--positive-window", type=int, default=14)
    parser.add_argument("--lookahead", type=int, default=0)
    parser.add_argument("--feature-selection", action="store_true")
    _add_n_jobs_flag(parser)
    _add_split_algorithm_flag(parser)
    _add_memory_ceiling_flag(parser)
    _add_loading_flags(parser)
    _add_obs_flags(parser)


def _add_model(subparsers) -> None:
    parser = subparsers.add_parser(
        "model", help="versioned model artifacts (save / load / inspect)"
    )
    model_subparsers = parser.add_subparsers(dest="model_command", required=True)
    save = model_subparsers.add_parser(
        "save",
        help="fit MFPA on a fleet (or shard store) and save a versioned "
        "artifact directory",
    )
    save.add_argument("dataset", help="fleet directory or shard store")
    save.add_argument("output", help="artifact directory to write")
    save.add_argument("--feature-group", default="SFWB")
    save.add_argument("--train-end-day", type=int, default=360)
    save.add_argument(
        "--with-reduced",
        action="store_true",
        help="also fit the reduced-feature fallback model and bundle it "
        "under <output>/reduced (serve's degraded-mode scorer)",
    )
    save.add_argument(
        "--no-profile",
        action="store_true",
        help="skip sketching the training-era ReferenceProfile into the "
        "artifact (disables drift monitoring on `serve --model-artifact`)",
    )
    _add_n_jobs_flag(save)
    _add_split_algorithm_flag(save)
    _add_memory_ceiling_flag(save)
    _add_loading_flags(save)
    load = model_subparsers.add_parser(
        "load",
        help="load an artifact end to end (verifying every file hash) and "
        "print what it contains",
    )
    load.add_argument("artifact", help="directory written by `model save`")
    inspect = model_subparsers.add_parser(
        "inspect", help="print an artifact's manifest without loading the model"
    )
    inspect.add_argument("artifact", help="directory written by `model save`")


def _add_monitor(subparsers) -> None:
    parser = subparsers.add_parser("monitor", help="replay a monitored deployment")
    parser.add_argument("dataset")
    parser.add_argument(
        "--model-artifact",
        metavar="DIR",
        help="start from a `repro model save` artifact instead of fitting "
        "the initial model (first window is scored without any fit call)",
    )
    parser.add_argument("--start-day", type=int, default=300)
    parser.add_argument("--end-day", type=int, default=540)
    parser.add_argument("--window-days", type=int, default=30)
    parser.add_argument("--alarm-threshold", type=float, default=0.5)
    parser.add_argument(
        "--checkpoint-dir",
        help="checkpoint monitor state after every window (in-RAM) or at "
        "shard boundaries (shard store); resumable with --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from an existing checkpoint in --checkpoint-dir",
    )
    parser.add_argument(
        "--allow-degraded",
        action="store_true",
        help="fall back to a reduced feature group when dimensions are missing",
    )
    _add_n_jobs_flag(parser)
    _add_split_algorithm_flag(parser)
    _add_memory_ceiling_flag(parser)
    _add_loading_flags(parser)
    _add_obs_flags(parser)
    _add_obs_server_flags(parser)


def _add_replay(subparsers) -> None:
    parser = subparsers.add_parser(
        "replay", help="record a fleet as a replayable reading stream"
    )
    parser.add_argument("dataset")
    parser.add_argument("output", help="JSONL stream file to write")
    parser.add_argument("--start-day", type=int, default=0)
    parser.add_argument("--end-day", type=int, default=None)
    parser.add_argument(
        "--no-repair",
        action="store_true",
        help="stream the raw rows instead of the gap-repaired rows "
        "(breaks alarm parity with the batch monitor)",
    )
    parser.add_argument(
        "--speed",
        type=float,
        default=None,
        help="pace the stream at this many simulated days per second "
        "(default: write at full speed)",
    )
    _add_obs_flags(parser)


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve", help="run the fleet-scoring daemon over a reading stream"
    )
    parser.add_argument(
        "dataset",
        nargs="?",
        default=None,
        help="fleet used to fit the models (not needed with --resume or "
        "--model-artifact)",
    )
    parser.add_argument("--input", required=True, help="JSONL stream from `repro replay`")
    parser.add_argument(
        "--model-artifact",
        metavar="DIR",
        help="score through a `repro model save` artifact instead of "
        "fitting at startup; with --resume the checkpoint must have been "
        "written by the same artifact (hash-checked)",
    )
    parser.add_argument("--serve-start-day", type=int, default=240)
    parser.add_argument("--train-end-day", type=int, default=None,
                        help="default: --serve-start-day")
    parser.add_argument("--window-days", type=int, default=30)
    parser.add_argument("--end-day", type=int, default=None)
    parser.add_argument("--alarm-threshold", type=float, default=0.5)
    parser.add_argument("--queue-capacity", type=int, default=4096)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument(
        "--max-alarms-per-window", type=int, default=None,
        help="fleet-wide per-window alarm budget (default: unlimited)",
    )
    parser.add_argument(
        "--stale-after", type=int, default=256,
        help="consecutive readings a feature dimension may be absent "
        "before scoring degrades",
    )
    parser.add_argument(
        "--quarantine-drive-after", type=int, default=20,
        help="ban a drive after this many quarantined readings "
        "(0 disables banning)",
    )
    parser.add_argument(
        "--no-reduced", action="store_true",
        help="skip fitting the reduced-feature fallback model",
    )
    parser.add_argument(
        "--no-drift", action="store_true",
        help="skip the training-time ReferenceProfile and per-window "
        "PSI drift monitoring",
    )
    _add_n_jobs_flag(parser)
    parser.add_argument("--checkpoint-dir",
                        help="checkpoint daemon state at every window boundary")
    parser.add_argument(
        "--resume", action="store_true",
        help="restore from --checkpoint-dir and replay only readings at "
        "or above the checkpoint watermark",
    )
    parser.add_argument("--alarms-out", help="JSONL alarm sink path")
    parser.add_argument(
        "--speed", type=float, default=None,
        help="consume the stream at this many simulated days per second",
    )
    parser.add_argument(
        "--throttle-seconds", type=float, default=0.0,
        help="extra sleep per simulated day (crash-drill pacing)",
    )
    parser.add_argument(
        "--throttle-from-day", type=int, default=None,
        help="only throttle from this day on (default: every day)",
    )
    _add_obs_flags(parser)
    _add_obs_server_flags(parser)


def _add_summary(subparsers) -> None:
    parser = subparsers.add_parser("summary", help="Table-VI stats of a saved fleet")
    parser.add_argument("dataset")
    _add_loading_flags(parser)


def _add_chaos(subparsers) -> None:
    parser = subparsers.add_parser(
        "chaos",
        help="inject collector faults, sanitize, and measure pipeline degradation",
    )
    parser.add_argument("dataset")
    parser.add_argument(
        "--fault",
        action="append",
        metavar="NAME",
        help="fault injector to apply (repeatable); default: each one in turn. "
        "Known: drop_days, duplicate_rows, stuck_sensor, counter_reset, "
        "missing_dimension, out_of_order",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--start-day", type=int, default=300)
    parser.add_argument("--end-day", type=int, default=540)
    parser.add_argument("--window-days", type=int, default=30)
    parser.add_argument("--alarm-threshold", type=float, default=0.5)
    parser.add_argument(
        "--no-sanitize",
        action="store_true",
        help="feed the corrupted dataset to the pipeline without quarantine "
        "ingestion (most faults will then crash it — that is the point)",
    )
    _add_n_jobs_flag(parser)
    _add_split_algorithm_flag(parser)
    _add_obs_flags(parser)


def _add_obs(subparsers) -> None:
    parser = subparsers.add_parser("obs", help="observability utilities")
    obs_subparsers = parser.add_subparsers(dest="obs_command", required=True)
    report = obs_subparsers.add_parser(
        "report", help="render a run manifest's span tree and metrics"
    )
    report.add_argument("run_dir", help="directory a run wrote with --run-dir")
    top = obs_subparsers.add_parser(
        "top",
        help="refreshing terminal dashboard polling a live --obs-port "
        "endpoint's /status and /health",
    )
    top.add_argument(
        "url", help="endpoint base URL, e.g. http://127.0.0.1:9100"
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between repaints (default: 2)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of repainting (for logs/pipes)",
    )


def _add_scale(subparsers) -> None:
    parser = subparsers.add_parser(
        "scale", help="out-of-core shard-store utilities"
    )
    scale_subparsers = parser.add_subparsers(dest="scale_command", required=True)
    inspect = scale_subparsers.add_parser(
        "inspect", help="print a shard store's manifest summary"
    )
    inspect.add_argument("store", help="directory written by `simulate --shards`")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSD failure prediction in consumer storage systems (DATE 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_simulate(subparsers)
    _add_train(subparsers)
    _add_monitor(subparsers)
    _add_summary(subparsers)
    _add_chaos(subparsers)
    _add_serve(subparsers)
    _add_replay(subparsers)
    _add_obs(subparsers)
    _add_scale(subparsers)
    _add_model(subparsers)
    return parser


def _parse_mix(entries: list[str] | None) -> VendorMix:
    if not entries:
        return VendorMix.proportional(2000)
    counts: dict[str, int] = {}
    for entry in entries:
        vendor, _, count = entry.partition("=")
        if vendor not in VENDORS or not count.isdigit():
            raise SystemExit(f"invalid --vendor spec {entry!r}; expected e.g. I=500")
        counts[vendor] = int(count)
    return VendorMix(counts)


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = FleetConfig(
        mix=_parse_mix(args.vendor),
        horizon_days=args.horizon_days,
        failure_boost=args.failure_boost,
        seed=args.seed,
    )
    if args.shards is not None:
        from repro.scale import ShardWriter
        from repro.telemetry.fleet import SSDFleet

        fleet = SSDFleet(config)
        writer = ShardWriter(args.output, compress=args.compress)
        for shard in fleet.generate_shards(n_shards=args.shards):
            writer.add_shard(shard)
        store = writer.close()
        log.info(
            f"simulated {store.n_drives} drives / {store.n_rows} records "
            f"into {store.n_shards} shards ({store.n_bytes} bytes, "
            f"fleet fingerprint {store.fleet_fingerprint}) -> {store.root}",
            n_drives=store.n_drives,
            n_rows=store.n_rows,
            n_shards=store.n_shards,
            path=str(store.root),
        )
        return 0
    dataset = simulate_fleet(config)
    path = save_dataset(dataset, args.output)
    log.info(
        f"simulated {dataset.n_drives} drives / {dataset.n_records} records "
        f"/ {len(dataset.tickets)} tickets -> {path}",
        n_drives=dataset.n_drives,
        n_records=dataset.n_records,
        n_tickets=len(dataset.tickets),
        path=str(path),
    )
    return 0


def _load(args: argparse.Namespace):
    with trace_span("load_dataset"):
        dataset = load_dataset(
            args.dataset,
            validate=getattr(args, "validate", False),
            sanitize=getattr(args, "sanitize", False),
        )
    annotate_run(dataset_fingerprint=dataset_fingerprint(dataset))
    return dataset


def _format_lead_time(summary) -> str:
    """Explicit empty-alarms guard: "n/a", never a printed NaN."""
    if not summary.has_lead_times:
        return "n/a (no true alarms)"
    return f"{summary.median_lead_time:.0f} days"


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.scale import is_shard_store

    config = MFPAConfig(
        feature_group_name=args.feature_group,
        theta=args.theta,
        positive_window=args.positive_window,
        lookahead=args.lookahead,
        feature_selection=args.feature_selection,
        n_jobs=args.n_jobs,
        split_algorithm=args.split_algorithm,
        memory_ceiling_mb=args.memory_ceiling_mb,
    )
    annotate_run(
        config_hash=config_hash(config), seed=config.seed, n_jobs=args.n_jobs
    )
    if is_shard_store(args.dataset):
        from repro.scale import ShardedDataset, evaluate_sharded, fit_sharded

        store = ShardedDataset(args.dataset)
        annotate_run(dataset_fingerprint=store.fleet_fingerprint)
        model = fit_sharded(
            store,
            config,
            train_end_day=args.train_end_day,
            sanitize=args.sanitize,
        )
        result = evaluate_sharded(
            model,
            store,
            args.train_end_day,
            args.eval_end_day,
            sanitize=args.sanitize,
        )
    else:
        dataset = _load(args)
        model = MFPA(config)
        model.fit(dataset, train_end_day=args.train_end_day)
        result = model.evaluate(args.train_end_day, args.eval_end_day)
    for level, report in (
        ("drive", result.drive_report),
        ("record", result.record_report),
    ):
        for metric in ("tpr", "fpr", "accuracy", "pdr", "auc"):
            record_result(f"{level}_{metric}", getattr(report, metric))
    log.info(
        render_table(
            ["Level", "TPR", "FPR", "ACC", "PDR", "AUC"],
            [
                ["drive", *[getattr(result.drive_report, k) for k in ("tpr", "fpr", "accuracy", "pdr", "auc")]],
                ["record", *[getattr(result.record_report, k) for k in ("tpr", "fpr", "accuracy", "pdr", "auc")]],
            ],
            title=(
                f"MFPA {args.feature_group}: trained through day {args.train_end_day}, "
                f"evaluated days {args.train_end_day}-{args.eval_end_day}"
            ),
        )
    )
    return 0


def _start_obs_endpoint(args, status_fn=None, health_fn=None):
    """Start the live HTTP endpoint / textfile exporter if asked for.

    Returns ``(server, exporter)`` (either may be None); pass both to
    :func:`_stop_obs_endpoint` in a ``finally``.
    """
    server = None
    exporter = None
    if getattr(args, "obs_port", None) is not None:
        from repro.obs import ObsServer

        server = ObsServer(
            host=args.obs_host,
            port=args.obs_port,
            status_fn=status_fn,
            health_fn=health_fn,
        ).start()
        log.info(f"observability endpoint at {server.url}")
    if getattr(args, "obs_textfile", None):
        from repro.obs import TextfileExporter

        exporter = TextfileExporter(
            args.obs_textfile, interval=args.obs_textfile_interval
        ).start()
        log.info(f"textfile exporter writing {args.obs_textfile}")
    return server, exporter


def _stop_obs_endpoint(server, exporter) -> None:
    if exporter is not None:
        exporter.stop()
    if server is not None:
        server.stop()


def _monitor_config(args: argparse.Namespace) -> MFPAConfig | None:
    """Monitor/chaos MFPA config; None keeps the all-defaults path."""
    ceiling = getattr(args, "memory_ceiling_mb", None)
    if args.split_algorithm == "exact" and ceiling is None:
        return None
    return MFPAConfig(
        split_algorithm=args.split_algorithm, memory_ceiling_mb=ceiling
    )


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.scale import is_shard_store

    annotate_run(n_jobs=args.n_jobs, split_algorithm=args.split_algorithm)
    obs_server, obs_textfile = _start_obs_endpoint(args)
    try:
        return _run_monitor(args, is_shard_store)
    finally:
        _stop_obs_endpoint(obs_server, obs_textfile)


def _run_monitor(args: argparse.Namespace, is_shard_store) -> int:
    initial_model = None
    if getattr(args, "model_artifact", None):
        from repro.ml.artifact import load_model

        with trace_span("monitor.load_artifact"):
            initial_model = load_model(args.model_artifact)
        if args.allow_degraded:
            raise SystemExit(
                "--allow-degraded cannot be combined with --model-artifact; "
                "the loaded model's feature group is fixed"
            )
        log.info(f"initial model loaded from {args.model_artifact} — no fit")
    if is_shard_store(args.dataset):
        from repro.scale import ShardedDataset, ShardedFleetMonitor

        if args.allow_degraded:
            raise SystemExit(
                "--allow-degraded is not supported on a shard store; "
                "run the in-RAM monitor instead"
            )
        store = ShardedDataset(args.dataset)
        annotate_run(dataset_fingerprint=store.fleet_fingerprint)
        monitor = ShardedFleetMonitor(
            store,
            config=_monitor_config(args),
            alarm_threshold=args.alarm_threshold,
            sanitize=args.sanitize,
            n_jobs=args.n_jobs,
        )
        if initial_model is not None:
            monitor.use_model(initial_model, args.start_day)
        summary = monitor.run(
            args.start_day,
            args.end_day,
            window_days=args.window_days,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    else:
        dataset = _load(args)
        summary = simulate_operation(
            dataset,
            config=_monitor_config(args),
            start_day=args.start_day,
            end_day=args.end_day,
            window_days=args.window_days,
            alarm_threshold=args.alarm_threshold,
            allow_degraded=args.allow_degraded,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            n_jobs=args.n_jobs,
            initial_model=initial_model,
        )
    record_result("n_alarms", summary.n_alarms)
    record_result("true_alarms", summary.true_alarms)
    record_result("false_alarms", summary.false_alarms)
    record_result("missed_failures", summary.missed_failures)
    record_result("precision", summary.precision)
    record_result("recall", summary.recall)
    record_result("median_lead_time_days", summary.median_lead_time)
    log.info(
        render_table(
            ["Window", "Alarms", "Scored", "Retrained"],
            [
                [f"{w.start_day}-{w.end_day}", len(w.alarms), w.n_drives_scored, w.retrained]
                for w in summary.windows
            ],
            title="Monitored operation",
        )
    )
    log.info(
        f"\nalarms: {summary.n_alarms} ({summary.true_alarms} true, "
        f"{summary.false_alarms} false); precision {summary.precision:.2%}, "
        f"recall {summary.recall:.2%}, median lead time "
        f"{_format_lead_time(summary)}"
    )
    if summary.unknown_serial_alarms:
        log.warning(f"unknown-serial alarms: {summary.unknown_serial_alarms}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.robustness import FAULT_REGISTRY, inject, make_fault, sanitize_dataset

    clean = _load(args)
    fault_names = args.fault or sorted(FAULT_REGISTRY)
    annotate_run(seed=args.seed, n_jobs=args.n_jobs, faults=fault_names)

    def run(dataset):
        summary = simulate_operation(
            dataset,
            config=_monitor_config(args),
            start_day=args.start_day,
            end_day=args.end_day,
            window_days=args.window_days,
            alarm_threshold=args.alarm_threshold,
            n_jobs=args.n_jobs,
        )
        fpr_denominator = sum(1 for m in dataset.drives.values() if not m.failed)
        fpr = summary.false_alarms / fpr_denominator if fpr_denominator else float("nan")
        return summary.recall, fpr, summary.median_lead_time

    def fmt(value: float, fmt_spec: str) -> str:
        return "n/a" if value != value else format(value, fmt_spec)

    baseline = run(clean)
    record_result(
        "baseline", {"tpr": baseline[0], "fpr": baseline[1], "lead": baseline[2]}
    )
    rows = [
        ["(clean)", fmt(baseline[0], ".3f"), fmt(baseline[1], ".3f"),
         fmt(baseline[2], ".0f"), "-", "-", "-"]
    ]
    for name in fault_names:
        corrupted = inject(clean, [make_fault(name)], seed=args.seed)
        if not args.no_sanitize:
            corrupted, report = sanitize_dataset(corrupted)
            log.info(f"[{name}] quarantine: {report.summary()}")
        tpr, fpr, lead = run(corrupted)
        record_result(name, {"tpr": tpr, "fpr": fpr, "lead": lead})
        rows.append(
            [
                name,
                fmt(tpr, ".3f"),
                fmt(fpr, ".3f"),
                fmt(lead, ".0f"),
                fmt(tpr - baseline[0], "+.3f"),
                fmt(fpr - baseline[1], "+.3f"),
                fmt(lead - baseline[2], "+.0f"),
            ]
        )
    log.info(
        render_table(
            ["Fault", "TPR", "FPR", "Lead", "dTPR", "dFPR", "dLead"],
            rows,
            title=f"Chaos degradation (seed {args.seed})",
        )
    )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    dataset = _load(args)
    rows = dataset_summary_rows(dataset)
    log.info(
        render_table(
            ["Manu.", "Total", "Sum_failure", "Sum_RR", "Paper RR"],
            [
                [r["vendor"], r["total"], r["sum_failure"], r["sum_rr"], r["paper_rr"]]
                for r in rows
            ],
            title="Dataset summary (Table VI)",
        )
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import time

    from repro.serve.replay import dataset_to_readings, write_stream

    dataset = _load(args)
    with trace_span("replay.record"):
        readings = dataset_to_readings(
            dataset,
            start_day=args.start_day,
            end_day=args.end_day,
            repair=not args.no_repair,
        )
    if args.speed:
        # Paced recording: append day groups in real time so a
        # concurrently tailing consumer sees a live stream.
        import json as _json
        from pathlib import Path

        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        current_day = None
        with open(path, "w") as handle:
            for serial, day, reading in readings:
                if current_day is not None and day != current_day:
                    handle.flush()
                    time.sleep((day - current_day) / args.speed)
                current_day = day
                handle.write(
                    _json.dumps(
                        {"kind": "reading", "serial": serial, "day": day,
                         "reading": reading},
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.write(_json.dumps({"kind": "end", "day": args.end_day}) + "\n")
    else:
        write_stream(args.output, readings, end_day=args.end_day)
    log.info(
        f"recorded {len(readings)} readings -> {args.output}",
        n_readings=len(readings),
        path=args.output,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.robustness.checkpoint import has_checkpoint_files
    from repro.serve.daemon import SERVE_FILES, ServeConfig, ServeDaemon
    from repro.serve.ingest import GatePolicy
    from repro.serve.replay import iter_stream

    gate = GatePolicy(
        quarantine_drive_after=args.quarantine_drive_after or None
    )
    config = ServeConfig(
        serve_start_day=args.serve_start_day,
        window_days=args.window_days,
        end_day=args.end_day,
        alarm_threshold=args.alarm_threshold,
        queue_capacity=args.queue_capacity,
        batch_size=args.batch_size,
        max_alarms_per_window=args.max_alarms_per_window,
        stale_after=args.stale_after,
        gate=gate,
        n_jobs=args.n_jobs,
    )
    if args.resume and args.checkpoint_dir and has_checkpoint_files(
        args.checkpoint_dir, SERVE_FILES
    ):
        expected_hash = None
        if args.model_artifact:
            from repro.ml.artifact import artifact_hash

            expected_hash = artifact_hash(args.model_artifact)
        daemon = ServeDaemon.resume(
            args.checkpoint_dir,
            sink_path=args.alarms_out,
            expected_model_hash=expected_hash,
        )
        log.info(
            f"resumed from {args.checkpoint_dir} at watermark day "
            f"{daemon.watermark}"
        )
        min_day = daemon.watermark
    elif args.model_artifact:
        from pathlib import Path

        from repro.ml.artifact import (
            artifact_hash,
            load_model,
            load_reference_profile,
        )

        with trace_span("serve.load_artifact"):
            full = load_model(args.model_artifact)
            reduced_dir = Path(args.model_artifact) / "reduced"
            reduced = (
                load_model(reduced_dir)
                if not args.no_reduced and reduced_dir.is_dir()
                else None
            )
            profile = (
                load_reference_profile(args.model_artifact)
                if not args.no_drift
                else None
            )
            daemon = ServeDaemon.from_models(
                full,
                reduced,
                config,
                drift=profile if profile is not None else False,
                checkpoint_dir=args.checkpoint_dir,
                sink_path=args.alarms_out,
                model_hash=artifact_hash(args.model_artifact),
            )
        log.info(
            f"serving model artifact {args.model_artifact} "
            f"(hash {daemon.model_hash}, drift "
            f"{'on' if daemon.drift is not None else 'off'}) — no fit"
        )
        min_day = None
    else:
        if args.dataset is None:
            raise SystemExit(
                "serve needs a fleet dataset unless --resume or "
                "--model-artifact supplies the models"
            )
        dataset = _load(args)
        with trace_span("serve.bootstrap"):
            daemon = ServeDaemon.bootstrap(
                dataset,
                config,
                train_end_day=args.train_end_day,
                fit_reduced=not args.no_reduced,
                drift=not args.no_drift,
                checkpoint_dir=args.checkpoint_dir,
                sink_path=args.alarms_out,
            )
        min_day = None
        run = current_run()
        if run is not None and daemon.drift is not None:
            from pathlib import Path

            profile_path = daemon.drift.profile.save(
                Path(run.run_dir) / "reference_profile.json"
            )
            log.info(f"reference profile written to {profile_path}")

    obs_server, obs_textfile = _start_obs_endpoint(
        args,
        status_fn=daemon.status_snapshot,
        health_fn=daemon.health_snapshot,
    )
    end_day = args.end_day
    current_day = None
    try:
        with trace_span("serve.consume"):
            for event in iter_stream(args.input):
                if event["kind"] == "end":
                    if event.get("day") is not None:
                        end_day = event["day"]
                    break
                day = event["day"]
                if min_day is not None and day < min_day:
                    continue
                if current_day is not None and day != current_day:
                    daemon.pump()
                    if args.speed:
                        time.sleep((day - current_day) / args.speed)
                    if args.throttle_seconds and (
                        args.throttle_from_day is None
                        or day >= args.throttle_from_day
                    ):
                        time.sleep(args.throttle_seconds)
                current_day = day
                daemon.submit(event["serial"], day, event["reading"])
            summary = daemon.finish(end_day)
    finally:
        _stop_obs_endpoint(obs_server, obs_textfile)

    log.info(
        render_table(
            ["Windows", "Alarms", "Degraded windows", "Watermark"],
            [[summary["n_windows"], summary["n_alarms"],
              summary["degraded_windows"], summary["watermark"]]],
            title="serve summary",
        )
    )
    latency = summary["e2e_latency_seconds"]
    if latency["count"]:
        log.info(
            f"ingest→alarm latency over {latency['count']} alarms: "
            f"p50 {latency['p50']:.3f}s, p95 {latency['p95']:.3f}s, "
            f"p99 {latency['p99']:.3f}s"
        )
    drift = daemon.drift.last if daemon.drift is not None else None
    if drift is not None:
        log.info(
            f"drift: state {drift['state_name']}, worst PSI "
            f"{drift['worst']:.4f} (window starting day "
            f"{drift['window_start']})"
        )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "top":
        from repro.obs.top import run_top

        frames = run_top(
            args.url,
            interval=args.interval,
            iterations=args.iterations,
            clear=not args.no_clear,
            out=sys.stdout,
        )
        return 0 if frames else 1
    from repro.obs.report import render_run_report

    log.info(render_run_report(args.run_dir))
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.scale import ShardedDataset

    store = ShardedDataset(args.store)
    rows = [
        [
            info.index,
            info.filename,
            info.n_drives,
            f"{info.first_serial}-{info.last_serial}",
            info.n_rows,
            info.n_bytes,
            info.fingerprint,
        ]
        for info in store.shards
    ]
    log.info(
        render_table(
            ["Shard", "File", "Drives", "Serials", "Rows", "Bytes", "Fingerprint"],
            rows,
            title=f"Shard store {store.root}",
        )
    )
    log.info(
        f"\n{store.n_shards} shards / {store.n_drives} drives / "
        f"{store.n_rows} rows / {store.n_bytes} bytes; "
        f"fleet fingerprint {store.fleet_fingerprint}"
    )
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    import json as _json

    from repro.ml.artifact import (
        artifact_hash,
        inspect_artifact,
        load_model,
        save_model,
    )

    if args.model_command == "inspect":
        log.info(_json.dumps(inspect_artifact(args.artifact), indent=2, sort_keys=True))
        return 0
    if args.model_command == "load":
        model = load_model(args.artifact)
        log.info(
            f"loaded {type(model).__name__} from {args.artifact} "
            f"(hash {artifact_hash(args.artifact)}); every file hash verified"
        )
        return 0

    # save: fit on the fleet, then persist the versioned artifact.
    from repro.scale import is_shard_store

    config = MFPAConfig(
        feature_group_name=args.feature_group,
        n_jobs=args.n_jobs,
        split_algorithm=args.split_algorithm,
        memory_ceiling_mb=args.memory_ceiling_mb,
    )
    annotate_run(config_hash=config_hash(config), n_jobs=args.n_jobs)
    profile = None
    dataset = None
    if is_shard_store(args.dataset):
        from repro.scale import ShardedDataset, fit_sharded

        store = ShardedDataset(args.dataset)
        annotate_run(dataset_fingerprint=store.fleet_fingerprint)
        model = fit_sharded(
            store, config, train_end_day=args.train_end_day, sanitize=args.sanitize
        )
        if not args.no_profile:
            log.warning(
                "shard-store training keeps no in-RAM dataset; artifact is "
                "saved without a ReferenceProfile"
            )
        if args.with_reduced:
            raise SystemExit(
                "--with-reduced needs an in-RAM fleet; shard stores fit "
                "only the full model"
            )
    else:
        dataset = _load(args)
        model = MFPA(config)
        with trace_span("model.fit"):
            model.fit(dataset, train_end_day=args.train_end_day)
        if not args.no_profile:
            from repro.serve.drift import ReferenceProfile

            train_end = min(
                args.train_end_day,
                int(model.dataset_.columns["day"].max()) + 1,
            )
            profile = ReferenceProfile.from_model(model, (0, train_end))
    with trace_span("model.save"):
        save_model(
            model, args.output, dataset=dataset, reference_profile=profile
        )
        if args.with_reduced:
            from pathlib import Path

            from repro.robustness.degraded import fit_reduced_model

            reduced = fit_reduced_model(
                dataset, args.train_end_day, base_config=model.config
            )
            save_model(reduced, Path(args.output) / "reduced", dataset=dataset)
    log.info(
        f"saved {type(model).__name__} artifact to {args.output} "
        f"(hash {artifact_hash(args.output)}, profile "
        f"{'yes' if profile is not None else 'no'}, reduced "
        f"{'yes' if args.with_reduced else 'no'})"
    )
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "train": _cmd_train,
    "monitor": _cmd_monitor,
    "summary": _cmd_summary,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "replay": _cmd_replay,
    "obs": _cmd_obs,
    "scale": _cmd_scale,
    "model": _cmd_model,
}


#: Commands carrying the obs flags. ``obs report`` itself is excluded —
#: its ``run_dir`` positional must never be mistaken for ``--run-dir``
#: (that would overwrite the manifest being rendered).
_OBSERVABLE_COMMANDS = frozenset({"train", "monitor", "chaos", "serve", "replay"})


def _begin_observability(args: argparse.Namespace):
    """Enable tracing/metrics per the obs flags; open a run context
    when ``--run-dir`` asks for a manifest."""
    wants_obs = args.command in _OBSERVABLE_COMMANDS and (
        getattr(args, "trace", False)
        or getattr(args, "metrics_out", None)
        or getattr(args, "run_dir", None)
    )
    if not wants_obs:
        return None
    enable_observability()
    run = None
    if getattr(args, "run_dir", None):
        cli_args = {
            k: v for k, v in vars(args).items() if k not in ("command", "run_dir")
        }
        run = start_run(args.run_dir, command=args.command, args=cli_args)
        set_current_run(run)
    return run


def _finish_observability(args: argparse.Namespace, run, status: str) -> None:
    """Export metrics / manifest / span tree, then reset all obs state
    so repeated ``main()`` calls in one process start clean."""
    try:
        metrics_out = getattr(args, "metrics_out", None)
        if metrics_out:
            registry = get_registry()
            text = (
                registry.to_prometheus()
                if str(metrics_out).endswith(".prom")
                else registry.to_jsonl()
            )
            from pathlib import Path

            path = Path(metrics_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            log.info(f"metrics written to {path}")
        if run is not None:
            manifest_path = run.finalize(get_tracer(), get_registry(), status=status)
            log.info(f"run manifest written to {manifest_path}")
        elif getattr(args, "trace", False):
            from repro.obs.report import render_span_tree

            log.info("\n" + render_span_tree(get_tracer().span_records()))
    finally:
        disable_observability()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(
        level=getattr(args, "log_level", "info"),
        json_lines=getattr(args, "log_json", False),
    )
    run = _begin_observability(args)
    status = "error"
    try:
        with trace_span(args.command):
            code = _COMMANDS[args.command](args)
        status = "ok" if code == 0 else "error"
        return code
    finally:
        _finish_observability(args, run, status)


if __name__ == "__main__":
    sys.exit(main())
