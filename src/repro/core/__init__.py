"""MFPA — the paper's Multidimensional-based Failure Prediction Approach.

The pipeline stages map one-to-one onto §III-C of the paper:

1. :mod:`repro.core.preprocess` — optimization of discontinuous data
   (gap dropping / mean filling) and accumulation of W/B counts.
2. :mod:`repro.core.labeling` — identification of the eventual failure
   time from trouble tickets with the θ threshold.
3. :mod:`repro.core.splitting` — timepoint-based sample segmentation and
   time-series-based cross-validation.
4. :mod:`repro.core.pipeline` — multi-algorithm training with
   hyperparameter grid search; :mod:`repro.core.selection` adds the
   sequential forward feature selection.
5. :mod:`repro.core.features` — the SFWB feature group sets (Table V).

:mod:`repro.core.baselines` implements the comparators: the vendor
SMART-threshold detector and the prior-work model recipes of Fig 18.
"""

from repro.core.baselines import (
    SOTA_RECIPES,
    BaselineRecipe,
    SmartThresholdDetector,
)
from repro.core.client import ClientPredictor
from repro.core.deployment import (
    Alarm,
    FleetMonitor,
    OperationSummary,
    RetrainPolicy,
    simulate_operation,
)
from repro.core.derived import DEFAULT_DERIVE_COLUMNS, add_derived_features
from repro.core.drift import (
    FeatureDrift,
    drifted_columns,
    feature_drift_report,
    population_stability_index,
)
from repro.core.explain import (
    AlarmExplanation,
    FeatureImportance,
    explain_alarm,
    permutation_importance,
)
from repro.core.features import (
    FEATURE_GROUPS,
    FeatureAssembler,
    FeatureGroup,
    feature_group,
)
from repro.core.labeling import (
    FailureTimeIdentifier,
    SampleSet,
    build_samples,
)
from repro.core.pipeline import MFPA, MFPAConfig, EvaluationResult
from repro.core.preprocess import (
    PreprocessReport,
    accumulate_events,
    encode_firmware,
    preprocess,
    repair_discontinuity,
)
from repro.core.selection import SequentialForwardSelector, youden_score
from repro.core.splitting import TimepointSplit, TimeSeriesCrossValidator
from repro.core.thresholding import (
    CostModel,
    ThresholdChoice,
    tune_threshold_cost,
    tune_threshold_fpr_budget,
    tune_threshold_youden,
)
from repro.core.transfer import TransferredMFPA, TransferResult

__all__ = [
    "Alarm",
    "AlarmExplanation",
    "ClientPredictor",
    "CostModel",
    "DEFAULT_DERIVE_COLUMNS",
    "FEATURE_GROUPS",
    "BaselineRecipe",
    "EvaluationResult",
    "FeatureDrift",
    "FeatureImportance",
    "FleetMonitor",
    "OperationSummary",
    "RetrainPolicy",
    "ThresholdChoice",
    "TransferResult",
    "TransferredMFPA",
    "FailureTimeIdentifier",
    "FeatureAssembler",
    "FeatureGroup",
    "MFPA",
    "MFPAConfig",
    "PreprocessReport",
    "SOTA_RECIPES",
    "SampleSet",
    "SequentialForwardSelector",
    "SmartThresholdDetector",
    "TimeSeriesCrossValidator",
    "TimepointSplit",
    "accumulate_events",
    "add_derived_features",
    "build_samples",
    "encode_firmware",
    "feature_group",
    "population_stability_index",
    "preprocess",
    "repair_discontinuity",
    "drifted_columns",
    "explain_alarm",
    "feature_drift_report",
    "permutation_importance",
    "simulate_operation",
    "tune_threshold_cost",
    "tune_threshold_fpr_budget",
    "tune_threshold_youden",
    "youden_score",
]
