"""Baselines and prior-work comparators (§II, Fig 18).

Three families:

* the **vendor threshold detector** — the SMART-threshold alarm every
  disk vendor ships (the paper cites 3-10% TPR at ~0.1% FPR);
* the **SMART-only ML model** — MFPA restricted to feature group S
  (already expressible through :class:`MFPAConfig`);
* **state-of-the-art recipes** approximating the four cited SSD failure
  predictors [19]-[22], each reduced to its feature diet + algorithm
  choice so the Fig 18 comparison is apples-to-apples on our substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.features import CUM_B_COLUMNS, CUM_W_COLUMNS
from repro.ml.base import BaseClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTreeClassifier
from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.smart import SMART_COLUMNS


class SmartThresholdDetector:
    """Static SMART-threshold alarm (the industry default, §II).

    Flags a record when any monitored attribute crosses its vendor
    threshold. Thresholds are deliberately conservative — vendors
    prioritize a near-zero false-alarm rate, which is why the paper
    reports only 3-10% TPR for this detector.
    """

    #: (column, threshold, direction): flag when value >= / <= threshold.
    DEFAULT_RULES: tuple[tuple[str, float, str], ...] = (
        ("s1_critical_warning", 1.0, "ge"),
        ("s3_available_spare", 8.0, "le"),
        ("s5_percentage_used", 100.0, "ge"),
        ("s14_media_errors", 60.0, "ge"),
    )

    def __init__(self, rules: tuple[tuple[str, float, str], ...] | None = None):
        self.rules = rules or self.DEFAULT_RULES
        for _, _, direction in self.rules:
            if direction not in ("ge", "le"):
                raise ValueError(f"invalid rule direction {direction!r}")

    def predict_rows(self, columns: dict[str, np.ndarray], row_indices: np.ndarray) -> np.ndarray:
        """Return 0/1 alarms for the given dataset rows."""
        row_indices = np.asarray(row_indices)
        alarm = np.zeros(row_indices.size, dtype=bool)
        for column, threshold, direction in self.rules:
            values = columns[column][row_indices]
            if direction == "ge":
                alarm |= values >= threshold
            else:
                alarm |= values <= threshold
        return alarm.astype(int)

    def evaluate_drives(
        self,
        dataset: TelemetryDataset,
        failure_times: dict[int, int],
        start_day: int,
        end_day: int,
        positive_window: int = 14,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drive-level ``(y_true, y_pred)`` over an evaluation period."""
        truths: list[int] = []
        alarms: list[int] = []
        row_slices = dataset._row_slices()
        for serial in dataset.drives:
            days = dataset.drive_rows(serial)["day"]
            if serial in failure_times:
                failure_time = failure_times[serial]
                if not start_day <= failure_time < end_day:
                    continue
                in_window = (days > failure_time - positive_window) & (
                    days <= failure_time
                )
                truth = 1
            else:
                in_window = (days >= start_day) & (days < end_day)
                truth = 0
            if not np.any(in_window):
                continue
            rows = row_slices[serial].start + np.flatnonzero(in_window)
            truths.append(truth)
            alarms.append(int(self.predict_rows(dataset.columns, rows).max()))
        return np.asarray(truths), np.asarray(alarms)


@dataclass(frozen=True)
class BaselineRecipe:
    """One prior-work comparator: a feature diet plus an algorithm."""

    name: str
    citation: str
    columns: tuple[str, ...]
    make_estimator: Callable[[], BaseClassifier] = field(repr=False)
    history_length: int = 1


#: Error-log columns: what Jacob et al. (SC'19) could see in data-center
#: SSD telemetry (drive error counters, no SMART health gauges).
_ERROR_LOG_COLUMNS: tuple[str, ...] = (
    "s13_unsafe_shutdowns",
    "s14_media_errors",
    "s15_error_log_entries",
)

SOTA_RECIPES: tuple[BaselineRecipe, ...] = (
    BaselineRecipe(
        name="ErrorLog-RF",
        citation="Jacob et al., 'SSD failures in the field', SC 2019 [19]",
        columns=_ERROR_LOG_COLUMNS,
        make_estimator=lambda: RandomForestClassifier(
            n_estimators=40, max_depth=10, seed=1
        ),
    ),
    BaselineRecipe(
        name="Transfer-GBDT",
        citation="Ji et al., minority-disk transfer learning, TPDS 2020 [20]",
        columns=SMART_COLUMNS,
        make_estimator=lambda: GradientBoostingClassifier(
            n_estimators=60, max_depth=3, seed=1
        ),
    ),
    BaselineRecipe(
        name="Interpretable-Tree",
        citation="Chakraborttii et al., interpretable SSD prediction, SoCC 2020 [21]",
        columns=SMART_COLUMNS,
        make_estimator=lambda: DecisionTreeClassifier(
            max_depth=6, min_samples_leaf=5, seed=1
        ),
    ),
    BaselineRecipe(
        name="Lifespan-NB",
        citation="Pinciroli et al., SSD/HDD lifespan models, TDSC 2021 [22]",
        columns=(*SMART_COLUMNS[:5], "s12_power_on_hours", "s14_media_errors"),
        make_estimator=lambda: GaussianNaiveBayes(),
    ),
)

#: MFPA itself, expressed in the same recipe form for Fig 18.
MFPA_RECIPE = BaselineRecipe(
    name="MFPA-SFWB",
    citation="this paper",
    columns=(*SMART_COLUMNS, "firmware_code", *CUM_W_COLUMNS, *CUM_B_COLUMNS),
    make_estimator=lambda: RandomForestClassifier(n_estimators=40, max_depth=12, seed=1),
)
