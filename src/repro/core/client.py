"""Client-side streaming prediction (§IV Fig 20's deployment story).

The paper pushes the trained model to consumer machines, where it must
score each day's fresh telemetry in microseconds without the batch
pipeline's columnar dataset. :class:`ClientPredictor` packages a fitted
MFPA for that setting: it keeps per-drive incremental state (cumulative
W/B counters, encoded firmware) and turns one day's raw readings into
the same feature vector the batch pipeline would assemble — verified
equivalent in the test suite.

``observe`` is exception-safe: a rejected reading (out-of-order day,
missing column in strict mode) leaves the drive's state untouched, so
the caller can correct the reading and retry. With
``on_missing="impute"`` a reading with absent columns is scored anyway
— last-known value, else zero — and flagged degraded (see
:mod:`repro.robustness.degraded` for dimension-level fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import FIRMWARE_CODE_COLUMN
from repro.core.pipeline import MFPA
from repro.telemetry.dataset import B_COLUMNS, W_COLUMNS

_EVENT_COLUMNS = (*W_COLUMNS, *B_COLUMNS)


@dataclass
class _DriveState:
    """Incremental per-drive accumulators."""

    cumulative_events: dict[str, float] = field(default_factory=dict)
    history: list[np.ndarray] = field(default_factory=list)
    last_day: int | None = None
    last_raw: dict[str, float] = field(default_factory=dict)
    last_firmware: str | None = None
    n_degraded: int = 0


class ClientPredictor:
    """Streaming scorer built from a fitted :class:`MFPA`.

    Usage::

        predictor = ClientPredictor.from_model(fitted_mfpa)
        probability = predictor.observe(serial=7, day=120, reading={...})

    ``reading`` maps raw telemetry names (SMART columns, daily W/B
    counts, ``firmware``) to values — exactly what a client collector
    produces. The predictor accumulates the W/B counters itself and
    maintains the trailing-history window when the model was trained
    with ``history_length > 1``.

    ``on_missing`` selects the missing-column policy: ``"raise"``
    (default, reject the reading with ``KeyError``) or ``"impute"``
    (fill from the drive's last-known value, else zero, and record the
    prediction as degraded in ``last_prediction_degraded`` /
    ``last_missing_columns``).
    """

    def __init__(
        self,
        model,
        columns,
        history_length,
        firmware_encoder,
        threshold,
        on_missing: str = "raise",
    ):
        if on_missing not in ("raise", "impute"):
            raise ValueError("on_missing must be 'raise' or 'impute'")
        self._model = model
        self._columns = tuple(columns)
        self._history_length = history_length
        self._encoder = firmware_encoder
        self.threshold = threshold
        self.on_missing = on_missing
        self._states: dict[int, _DriveState] = {}
        self.last_prediction_degraded = False
        self.last_missing_columns: tuple[str, ...] = ()

    @classmethod
    def from_model(cls, fitted: MFPA, on_missing: str = "raise") -> "ClientPredictor":
        """Package a fitted pipeline for client deployment."""
        fitted._check_fitted()
        return cls(
            model=fitted.model_,
            columns=fitted.assembler_.columns,
            history_length=fitted.assembler_.history_length,
            firmware_encoder=fitted.firmware_encoder_,
            threshold=fitted.config.decision_threshold,
            on_missing=on_missing,
        )

    @property
    def n_tracked_drives(self) -> int:
        return len(self._states)

    def _feature_vector(
        self,
        state: _DriveState,
        reading: dict,
        cumulative: dict[str, float],
    ) -> tuple[np.ndarray, list[str]]:
        """Assemble the vector without touching ``state``.

        Returns ``(vector, missing_columns)``; raises ``KeyError`` in
        strict mode instead of imputing.
        """
        values = []
        missing: list[str] = []
        for column in self._columns:
            if column == FIRMWARE_CODE_COLUMN:
                firmware = reading.get("firmware")
                if firmware is None:
                    if self.on_missing == "raise":
                        raise KeyError("reading is missing 'firmware'")
                    missing.append("firmware")
                    firmware = state.last_firmware
                    if firmware is None:
                        values.append(0.0)
                        continue
                values.append(float(self._encoder.transform([firmware])[0]))
            elif column.startswith("cum_"):
                values.append(cumulative.get(column, 0.0))
            else:
                if column not in reading:
                    if self.on_missing == "raise":
                        raise KeyError(f"reading is missing {column!r}")
                    missing.append(column)
                    values.append(state.last_raw.get(column, 0.0))
                else:
                    values.append(float(reading[column]))
        return np.asarray(values), missing

    def ingest(self, serial: int, day: int, reading: dict) -> np.ndarray:
        """Commit one day's telemetry; return the model-input row.

        This is :meth:`observe` without the model call — the streaming
        state update (cumulative counters, trailing history, last-known
        values) plus feature assembly. The serve daemon uses it to
        assemble rows incrementally and batch the predictions; pass the
        returned row(s) to :meth:`predict_matrix`.

        Readings must arrive in chronological order per drive; the daily
        W/B counts in ``reading`` are added to the drive's running
        cumulative counters *before* assembly, matching the batch
        pipeline's accumulate-then-assemble order. All validation runs
        before any state mutation — a raised reading is retryable.
        """
        state = self._states.setdefault(int(serial), _DriveState())
        if state.last_day is not None and day <= state.last_day:
            raise ValueError(
                f"out-of-order reading for drive {serial}: "
                f"day {day} after day {state.last_day}"
            )

        # Stage the cumulative update on a copy so a validation failure
        # below leaves the drive's counters untouched.
        cumulative = dict(state.cumulative_events)
        for column in _EVENT_COLUMNS:
            if column in reading:
                cum_column = f"cum_{column}"
                cumulative[cum_column] = (
                    cumulative.get(cum_column, 0.0) + float(reading[column])
                )

        vector, missing = self._feature_vector(state, reading, cumulative)

        # ---- validation passed: commit ----
        state.last_day = int(day)
        state.cumulative_events = cumulative
        for column in self._columns:
            if column in reading:
                state.last_raw[column] = float(reading[column])
        if reading.get("firmware") is not None:
            state.last_firmware = reading["firmware"]
        self.last_missing_columns = tuple(missing)
        self.last_prediction_degraded = bool(missing)
        if missing:
            state.n_degraded += 1

        state.history.append(vector)
        if len(state.history) > self._history_length:
            state.history.pop(0)

        if self._history_length == 1:
            return vector
        # Pad with the earliest available vector, earliest-first —
        # the same clamping FeatureAssembler applies.
        padded = [state.history[0]] * (
            self._history_length - len(state.history)
        ) + state.history
        return np.concatenate(padded)

    def predict_matrix(self, X: np.ndarray) -> np.ndarray:
        """Positive-class probabilities for stacked :meth:`ingest` rows."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return self._model.predict_proba(X)[:, 1]

    def observe(self, serial: int, day: int, reading: dict) -> float:
        """Ingest one day's telemetry and return the failure probability.

        Equivalent to ``predict_matrix(ingest(...))[0]`` — see
        :meth:`ingest` for the ordering and retry contract.
        """
        row = self.ingest(serial, day, reading)
        return float(self.predict_matrix(row[None, :])[0])

    def alarm(self, serial: int, day: int, reading: dict) -> tuple[bool, float]:
        """Convenience: ``(raises_alarm, probability)`` for one reading."""
        probability = self.observe(serial, day, reading)
        return probability >= self.threshold, probability

    def n_degraded_predictions(self, serial: int) -> int:
        """How many of a drive's predictions used imputed values."""
        state = self._states.get(int(serial))
        return state.n_degraded if state is not None else 0

    def forget(self, serial: int) -> None:
        """Drop a drive's state (it was replaced or decommissioned)."""
        self._states.pop(int(serial), None)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable copy of every drive's streaming state.

        Finite floats round-trip exactly through JSON, so a predictor
        restored from a snapshot scores future readings bit-identically
        to one that never stopped — the serve daemon's resume contract.
        """
        return {
            "drives": {
                str(serial): {
                    "cumulative_events": dict(state.cumulative_events),
                    "history": [vector.tolist() for vector in state.history],
                    "last_day": state.last_day,
                    "last_raw": dict(state.last_raw),
                    "last_firmware": state.last_firmware,
                    "n_degraded": state.n_degraded,
                }
                for serial, state in self._states.items()
            }
        }

    def restore(self, snapshot: dict) -> None:
        """Replace all per-drive state with a :meth:`snapshot`."""
        states: dict[int, _DriveState] = {}
        for serial, entry in snapshot["drives"].items():
            states[int(serial)] = _DriveState(
                cumulative_events=dict(entry["cumulative_events"]),
                history=[
                    np.asarray(vector, dtype=float)
                    for vector in entry["history"]
                ],
                last_day=entry["last_day"],
                last_raw=dict(entry["last_raw"]),
                last_firmware=entry["last_firmware"],
                n_degraded=entry["n_degraded"],
            )
        self._states = states
