"""Operating MFPA as a fleet-monitoring service.

The paper's deployment story (§IV): the model is trained on history,
pushed to clients, scores incoming telemetry continuously, and is
re-iterated every ~2 months because feature drift pushes the FPR up.
This module packages that loop:

* :class:`FleetMonitor` scores a fleet window by window, raises
  deduplicated per-drive :class:`Alarm`\\ s, and retrains itself on the
  accumulated history per its :class:`RetrainPolicy`;
* :func:`simulate_operation` replays a whole study horizon through a
  monitor and summarizes the operational metrics a storage team cares
  about — alarm precision and failure lead time (how many days of
  warning users get to back up their data).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import MFPA, MFPAConfig
from repro.obs import inc_counter, observe_histogram, trace_span
from repro.parallel import ParallelExecutor, SharedPayload, share
from repro.telemetry.dataset import TelemetryDataset


@dataclass(frozen=True)
class Alarm:
    """One raised prediction: this drive is about to fail."""

    serial: int
    day: int
    probability: float


@dataclass(frozen=True)
class RetrainPolicy:
    """When the monitor refreshes its model.

    Parameters
    ----------
    interval_days:
        Retrain after this many days of operation (paper: ~60).
    min_new_failures:
        Skip a scheduled retrain unless at least this many new labeled
        failures arrived — retraining on an unchanged failure set only
        reshuffles noise.
    """

    interval_days: int = 60
    min_new_failures: int = 1

    def __post_init__(self) -> None:
        if self.interval_days < 1:
            raise ValueError("interval_days must be positive")
        if self.min_new_failures < 0:
            raise ValueError("min_new_failures must be non-negative")


@dataclass
class MonitoringWindow:
    """What happened during one scored window."""

    start_day: int
    end_day: int
    alarms: list[Alarm]
    n_drives_scored: int
    retrained: bool


@dataclass
class OperationSummary:
    """Aggregate operational metrics over a full monitored horizon."""

    windows: list[MonitoringWindow]
    true_alarms: int
    false_alarms: int
    missed_failures: int
    lead_times: list[int] = field(default_factory=list)
    unknown_serial_alarms: int = 0
    """Alarms for serials with no :class:`DriveMeta` in the grading
    dataset — a bookkeeping fault (quarantined drive, mismatched
    dataset), reported separately instead of polluting the FPR."""

    @property
    def n_alarms(self) -> int:
        return self.true_alarms + self.false_alarms

    def alarm_records(self) -> list[tuple[int, int, float]]:
        """Every alarm as sorted ``(serial, day, probability)`` tuples —
        the comparison key for batch-vs-streaming alarm parity."""
        return sorted(
            (alarm.serial, alarm.day, alarm.probability)
            for window in self.windows
            for alarm in window.alarms
        )

    @property
    def precision(self) -> float:
        if self.n_alarms == 0:
            return float("nan")
        return self.true_alarms / self.n_alarms

    @property
    def recall(self) -> float:
        caught = self.true_alarms
        total = caught + self.missed_failures
        if total == 0:
            return float("nan")
        return caught / total

    @property
    def has_lead_times(self) -> bool:
        """Whether any true alarm produced a lead-time measurement.

        Check this before formatting :attr:`median_lead_time` — an
        operation with no true alarms has no lead time, and callers
        should render that as "n/a" rather than ``nan``.
        """
        return bool(self.lead_times)

    @property
    def median_lead_time(self) -> float:
        """Median days of warning across true alarms.

        Explicitly NaN when no true alarm was raised (the empty-alarms
        case) — see :attr:`has_lead_times` for a printable guard;
        ``summarize_windows`` counts the underlying empty windows in
        the ``monitor_windows_empty_total`` metric.
        """
        if not self.lead_times:
            return float("nan")
        return float(np.median(self.lead_times))


def _predict_chunk(model: SharedPayload, row_indices: np.ndarray) -> np.ndarray:
    """Worker task: score one contiguous chunk of prepared-dataset rows."""
    return model.get().predict_proba_rows(row_indices)


def predict_rows_parallel(
    model: MFPA, row_indices: np.ndarray, n_jobs: int = 1
) -> np.ndarray:
    """Positive-class probabilities for prepared-dataset rows.

    With ``n_jobs > 1`` the rows fan out in contiguous chunks over a
    worker pool; the fitted model travels to the workers by fork
    inheritance (it is never pickled) and per-row independence makes
    the concatenated result identical to the serial pass.
    """
    executor = ParallelExecutor(n_jobs)
    # The executor's calibrated cost model decides serial-vs-pool per
    # call; no hand-tuned row threshold here (small windows fall back
    # to serial automatically, and the persistent pool makes dispatch
    # cheap for the large ones).
    if not executor.is_parallel:
        return model.predict_proba_rows(row_indices)
    chunks = np.array_split(row_indices, executor.n_jobs)
    with share(model) as shared:
        parts = executor.starmap(
            _predict_chunk, [(shared, chunk) for chunk in chunks if chunk.size]
        )
    return np.concatenate(parts)


def score_prepared_window(
    model: MFPA,
    alarmed: set[int],
    alarm_threshold: float,
    start_day: int,
    end_day: int,
    n_jobs: int = 1,
) -> tuple[list[Alarm], int]:
    """Score one window of ``model.dataset_``; the monitor's core step.

    Scans every not-yet-alarmed drive's records in ``[start_day,
    end_day)``, batches one prediction pass, and raises an alarm at the
    *first* threshold crossing per drive — in a live deployment the
    user is notified the day the score crosses, and every day earlier
    is warning lead time. Newly alarmed serials are added to ``alarmed``
    in place. Returns ``(alarms, n_drives_scored)``.

    This is deliberately a function of ``(model, alarmed)`` rather than
    a monitor method: the sharded monitor calls it once per (shard,
    window) with a per-shard alarmed set, and because drives are scored
    independently the union of per-shard alarms equals the in-RAM
    monitor's window bit for bit.
    """
    prepared = model.dataset_
    row_slices = prepared._row_slices()
    scored_serials: list[int] = []
    scored_days: list[np.ndarray] = []
    scored_indices: list[np.ndarray] = []
    for serial in prepared.drives:
        if serial in alarmed:
            continue
        rows = prepared.drive_rows(serial)
        days = rows["day"]
        in_window = (days >= start_day) & (days < end_day)
        if not np.any(in_window):
            continue
        base = row_slices[serial].start
        scored_serials.append(int(serial))
        scored_days.append(days[in_window])
        scored_indices.append(base + np.flatnonzero(in_window))

    alarms: list[Alarm] = []
    n_scored = len(scored_serials)
    if n_scored:
        # One batched prediction pass across every scored drive,
        # chunked over the worker pool when n_jobs > 1.
        counts = np.array([indices.size for indices in scored_indices])
        all_probabilities = predict_rows_parallel(
            model, np.concatenate(scored_indices), n_jobs
        )
        per_drive = np.split(all_probabilities, np.cumsum(counts)[:-1])
        for serial, days, probabilities in zip(
            scored_serials, scored_days, per_drive
        ):
            crossings = np.flatnonzero(probabilities >= alarm_threshold)
            if crossings.size:
                first = int(crossings[0])
                alarms.append(
                    Alarm(
                        serial=serial,
                        day=int(days[first]),
                        probability=float(probabilities[first]),
                    )
                )
                alarmed.add(serial)
    return alarms, n_scored


def plan_retrains(
    boundaries: list[int],
    policy: RetrainPolicy,
    failure_times: dict[int, int],
    train_end_day: int,
) -> list[bool]:
    """Which window boundaries the monitor will retrain at.

    ``FleetMonitor._maybe_retrain`` depends only on the boundary day,
    the policy, and the failure-time table — never on scoring results —
    and the failure-time table itself is a pure function of the full
    prepared dataset (identical after every refit). The whole retrain
    schedule is therefore known up front, which is what lets the
    sharded monitor run shard-outer/window-inner loops with each
    boundary's model trained once.
    """
    last_trained = train_end_day
    failures_at_training = sum(
        1 for day in failure_times.values() if day < train_end_day
    )
    plan: list[bool] = []
    for day in boundaries:
        if day - last_trained < policy.interval_days:
            plan.append(False)
            continue
        known = sum(1 for fd in failure_times.values() if fd < day)
        if known - failures_at_training < policy.min_new_failures:
            plan.append(False)
            continue
        plan.append(True)
        last_trained = day
        failures_at_training = known
    return plan


class FleetMonitor:
    """Windowed scoring loop with alarm deduplication and retraining.

    The monitor sees the same :class:`TelemetryDataset` the offline
    pipeline does but only *uses* records before the current day — the
    windowing discipline enforces that no future data leaks into either
    scoring or retraining.
    """

    def __init__(
        self,
        config: MFPAConfig | None = None,
        policy: RetrainPolicy | None = None,
        alarm_threshold: float | None = None,
        allow_degraded: bool = False,
        n_jobs: int = 1,
    ):
        self.config = config or MFPAConfig()
        self.policy = policy or RetrainPolicy()
        self.alarm_threshold = (
            self.config.decision_threshold if alarm_threshold is None else alarm_threshold
        )
        if not 0 < self.alarm_threshold < 1:
            raise ValueError("alarm_threshold must be in (0, 1)")
        self.allow_degraded = allow_degraded
        self.n_jobs = n_jobs
        self.degraded_dimensions_: tuple[str, ...] = ()
        self._alarmed: set[int] = set()
        self._last_trained_day: int | None = None
        self._failures_at_training = 0

    # ------------------------------------------------------------------
    def start(self, dataset: TelemetryDataset, train_end_day: int) -> None:
        """Train the initial model on history before ``train_end_day``.

        With ``allow_degraded=True`` a dataset missing whole feature
        dimensions (no W/B columns, no firmware) is still accepted: the
        monitor falls back to the largest feature group the data
        supports (the paper's Table-5 reduced groups) and records the
        missing dimensions in ``degraded_dimensions_``.
        """
        with trace_span("monitor.start"):
            if self.allow_degraded:
                from repro.robustness.degraded import adapt_for_missing_dimensions

                dataset, self.config, self.degraded_dimensions_ = (
                    adapt_for_missing_dimensions(dataset, self.config)
                )
            self.dataset = dataset
            self.model = MFPA(self.config)
            self.model.fit(dataset, train_end_day=train_end_day)
        self._last_trained_day = train_end_day
        self._failures_at_training = sum(
            1 for day in self.model.failure_times_.values() if day < train_end_day
        )

    def start_with_model(
        self,
        model: MFPA,
        dataset: TelemetryDataset,
        train_end_day: int,
    ) -> None:
        """Adopt an already-fitted pipeline instead of training one.

        The artifact-loaded fast path: ``repro monitor --model-artifact``
        reaches its first scored window with zero ``fit()`` calls. The
        monitor takes the model's own config (so a later scheduled
        retrain reproduces the artifact's training recipe) and binds the
        fleet dataset through :meth:`MFPA.bind_dataset` when the loaded
        pipeline does not carry one.
        """
        with trace_span("monitor.start"):
            model._check_fitted()
            self.config = model.config
            self.dataset = dataset
            self.model = model
            if not hasattr(model, "dataset_"):
                model.bind_dataset(dataset)
        self._last_trained_day = train_end_day
        self._failures_at_training = sum(
            1 for day in self.model.failure_times_.values() if day < train_end_day
        )

    def _check_started(self) -> None:
        if self._last_trained_day is None:
            raise RuntimeError("FleetMonitor.start() must be called first")

    def _maybe_retrain(self, day: int) -> bool:
        if day - self._last_trained_day < self.policy.interval_days:
            return False
        known_failures = sum(
            1 for failure_day in self.model.failure_times_.values() if failure_day < day
        )
        if known_failures - self._failures_at_training < self.policy.min_new_failures:
            return False
        with trace_span("monitor.retrain"):
            self.model = MFPA(self.config)
            self.model.fit(self.dataset, train_end_day=day)
        inc_counter("monitor_retrains_total")
        self._last_trained_day = day
        self._failures_at_training = known_failures
        return True

    def _predict_rows(self, row_indices: np.ndarray) -> np.ndarray:
        """Positive-class probabilities for prepared-dataset rows."""
        return predict_rows_parallel(self.model, row_indices, self.n_jobs)

    def score_window(self, start_day: int, end_day: int) -> MonitoringWindow:
        """Score every drive's records in ``[start_day, end_day)``.

        Raises at most one alarm per drive over the monitor's lifetime
        (an alarmed drive is assumed pulled for backup/replacement).
        Retraining, when due, happens *before* scoring using only data
        prior to ``start_day``.

        Every call emits a ``window_score_seconds`` observation plus
        window/drive/alarm counters, and runs inside a
        ``monitor.score_window`` span.
        """
        self._check_started()
        if end_day <= start_day:
            raise ValueError("end_day must exceed start_day")
        started = time.perf_counter()
        with trace_span("monitor.score_window"):
            window = self._score_window(start_day, end_day)
        observe_histogram("window_score_seconds", time.perf_counter() - started)
        inc_counter("monitor_windows_scored_total")
        inc_counter("monitor_drives_scored_total", window.n_drives_scored)
        inc_counter("monitor_alarms_raised_total", len(window.alarms))
        return window

    def _score_window(self, start_day: int, end_day: int) -> MonitoringWindow:
        retrained = self._maybe_retrain(start_day)
        alarms, n_scored = score_prepared_window(
            self.model,
            self._alarmed,
            self.alarm_threshold,
            start_day,
            end_day,
            n_jobs=self.n_jobs,
        )
        return MonitoringWindow(
            start_day=start_day,
            end_day=end_day,
            alarms=alarms,
            n_drives_scored=n_scored,
            retrained=retrained,
        )


def summarize_windows(
    windows: list[MonitoringWindow],
    dataset: TelemetryDataset,
    start_day: int,
    end_day: int,
) -> OperationSummary:
    """Grade scored windows against ground truth.

    An alarm is *true* if the drive actually fails within the study and
    the alarm precedes (or coincides with) the failure; its lead time
    is ``failure_day - alarm_day``. A failure in the monitored period
    with no preceding alarm is *missed*. Alarms for serials absent from
    ``dataset.drives`` are counted as ``unknown_serial_alarms`` rather
    than folded into the false alarms.

    Grading emits the ``monitor_alarms_total{kind=tp|fp|unknown_serial}``
    counters, a ``monitor_lead_time_days`` observation per true alarm,
    and ``monitor_windows_empty_total`` for every alarm-free window —
    the explicit signal for "no alarms, hence no lead time" replacing a
    silently NaN median.
    """
    true_alarms = 0
    false_alarms = 0
    unknown = 0
    lead_times = []
    alarmed_serials = set()
    for window in windows:
        if not window.alarms:
            inc_counter("monitor_windows_empty_total")
    for alarm in (alarm for window in windows for alarm in window.alarms):
        meta = dataset.drives.get(alarm.serial)
        alarmed_serials.add(alarm.serial)
        if meta is None:
            unknown += 1
            inc_counter("monitor_alarms_total", kind="unknown_serial")
        elif meta.failed and meta.failure_day >= alarm.day:
            true_alarms += 1
            lead_time = int(meta.failure_day - alarm.day)
            lead_times.append(lead_time)
            inc_counter("monitor_alarms_total", kind="tp")
            observe_histogram("monitor_lead_time_days", lead_time)
        else:
            false_alarms += 1
            inc_counter("monitor_alarms_total", kind="fp")
    missed = sum(
        1
        for meta in dataset.drives.values()
        if meta.failed
        and start_day <= meta.failure_day < end_day
        and meta.serial not in alarmed_serials
    )
    inc_counter("monitor_missed_failures_total", missed)
    return OperationSummary(
        windows=windows,
        true_alarms=true_alarms,
        false_alarms=false_alarms,
        missed_failures=missed,
        lead_times=lead_times,
        unknown_serial_alarms=unknown,
    )


def simulate_operation(
    dataset: TelemetryDataset,
    config: MFPAConfig | None = None,
    policy: RetrainPolicy | None = None,
    start_day: int = 240,
    end_day: int = 540,
    window_days: int = 30,
    alarm_threshold: float | None = None,
    allow_degraded: bool = False,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    max_windows: int | None = None,
    n_jobs: int = 1,
    initial_model: MFPA | None = None,
) -> OperationSummary:
    """Replay a monitored operation and grade it against ground truth.

    With ``checkpoint_dir`` set, monitor state is checkpointed after
    every scored window; ``resume=True`` continues from an existing
    checkpoint instead of retraining from scratch, producing the same
    summary an uninterrupted run would. ``max_windows`` stops the
    replay early (a controlled "crash") after that many total windows,
    returning a partial summary. ``n_jobs`` chunks the per-drive scoring
    over a worker pool without changing any alarm or summary field.
    ``initial_model`` (an artifact-loaded fitted :class:`MFPA`) skips
    the initial training entirely — the first window is scored without
    a ``fit()`` call.
    """
    boundaries = list(range(start_day, end_day, window_days))
    windows: list[MonitoringWindow] = []
    monitor = None
    if checkpoint_dir is not None and resume:
        from repro.robustness.checkpoint import has_checkpoint, load_checkpoint

        if has_checkpoint(checkpoint_dir):
            restore_dataset = dataset
            if allow_degraded:
                # Rebind the restored monitor to the same dimension-filled
                # dataset a fresh degraded start would use, so a retrain
                # after resume sees identical inputs.
                from repro.robustness.degraded import adapt_for_missing_dimensions

                restore_dataset, _, _ = adapt_for_missing_dimensions(
                    dataset, config or MFPAConfig()
                )
            monitor, windows = load_checkpoint(checkpoint_dir, restore_dataset)
            monitor.n_jobs = n_jobs
    if monitor is None:
        monitor = FleetMonitor(
            config=config,
            policy=policy,
            alarm_threshold=alarm_threshold,
            allow_degraded=allow_degraded,
            n_jobs=n_jobs,
        )
        if initial_model is not None:
            monitor.start_with_model(
                initial_model, dataset, train_end_day=start_day
            )
        else:
            monitor.start(dataset, train_end_day=start_day)

    for window_start in boundaries[len(windows):]:
        if max_windows is not None and len(windows) >= max_windows:
            break
        windows.append(
            monitor.score_window(window_start, min(window_start + window_days, end_day))
        )
        if checkpoint_dir is not None:
            from repro.robustness.checkpoint import save_checkpoint

            save_checkpoint(monitor, windows, checkpoint_dir)

    return summarize_windows(windows, dataset, start_day, end_day)
