"""Derived time-series features: deltas and rolling means.

The SMART-prediction literature ("Making disk failure predictions
SMARTer!", Sidi et al. FAST 2020 [11]) augments raw attributes with
*change* features: day-over-day deltas and short rolling statistics.
On CSS data they have a second benefit this library diagnosed
empirically: cumulative counters (power-on hours, data written) grow
with fleet age, so their raw values drift out of the training
distribution within months (see ``core.drift``), while their deltas
are stationary. The ablation bench quantifies the effect.

Columns are added per drive, respecting the (serial, day)-sorted
invariant:

* ``d1_<col>``  — difference from the drive's previous record (0 for a
  drive's first record),
* ``rm<w>_<col>`` — trailing rolling mean over the drive's last ``w``
  records (shorter at the start).
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.dataset import TelemetryDataset

#: Default columns to derive from: the monotone usage/error counters.
DEFAULT_DERIVE_COLUMNS: tuple[str, ...] = (
    "s5_percentage_used",
    "s6_data_units_read",
    "s7_data_units_written",
    "s8_host_read_commands",
    "s9_host_write_commands",
    "s10_controller_busy_time",
    "s11_power_cycles",
    "s12_power_on_hours",
    "s13_unsafe_shutdowns",
    "s14_media_errors",
    "s15_error_log_entries",
)


def _grouped_diff(values: np.ndarray, group_starts: np.ndarray) -> np.ndarray:
    """First difference restarting (at 0) on each group boundary."""
    diff = np.empty_like(values, dtype=float)
    diff[0] = 0.0
    diff[1:] = values[1:] - values[:-1]
    diff[group_starts] = 0.0
    return diff


def _grouped_rolling_mean(
    values: np.ndarray, group_starts: np.ndarray, window: int
) -> np.ndarray:
    """Trailing rolling mean within groups (partial windows at starts)."""
    n = values.size
    group_id = np.cumsum(group_starts)
    position = np.arange(n) - np.maximum.accumulate(
        np.where(group_starts, np.arange(n), 0)
    )
    cumulative = np.cumsum(values)
    result = np.empty(n, dtype=float)
    window_len = np.minimum(position + 1, window)
    start_index = np.arange(n) - window_len + 1
    # Sum over [start, i] = cumsum[i] - cumsum[start-1].
    left = np.where(start_index > 0, cumulative[np.maximum(start_index - 1, 0)], 0.0)
    result = (cumulative - left) / window_len
    # Guard: windows never cross group boundaries because position
    # resets to 0 at each start, bounding window_len by in-group length.
    del group_id
    return result


def add_derived_features(
    dataset: TelemetryDataset,
    columns: tuple[str, ...] = DEFAULT_DERIVE_COLUMNS,
    rolling_window: int = 7,
) -> tuple[TelemetryDataset, tuple[str, ...]]:
    """Return a dataset with delta/rolling-mean columns, plus their names.

    Apply *after* :func:`repro.core.preprocess.preprocess` (deltas over
    repaired, gap-filled rows are well defined).
    """
    if rolling_window < 2:
        raise ValueError("rolling_window must be at least 2")
    missing = [c for c in columns if c not in dataset.columns]
    if missing:
        raise KeyError(f"dataset is missing columns {missing}")

    serial = dataset.columns["serial"]
    group_starts = np.concatenate([[True], serial[1:] != serial[:-1]])

    new_columns = dict(dataset.columns)
    added: list[str] = []
    for column in columns:
        values = dataset.columns[column].astype(float)
        delta_name = f"d1_{column}"
        new_columns[delta_name] = _grouped_diff(values, group_starts)
        added.append(delta_name)
        mean_name = f"rm{rolling_window}_{column}"
        new_columns[mean_name] = _grouped_rolling_mean(
            new_columns[delta_name], group_starts, rolling_window
        )
        added.append(mean_name)
    return (
        TelemetryDataset(new_columns, dataset.drives, dataset.tickets),
        tuple(added),
    )
