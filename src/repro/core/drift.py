"""Feature-drift measurement: why models need iteration (Figs 12/16).

The paper observes FPR creeping up after 2-3 months and attributes it
to "historical changes of some feature values that MFPA has learned in
the past". This module quantifies that with the population stability
index (PSI) — the standard model-monitoring statistic — computed per
feature between the training-era healthy population and a later window.
PSI > 0.1 is conventionally "drifting", > 0.25 "severe"; a deployment
can retrain on drift instead of on a fixed calendar.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import MFPA


def reference_bins(
    expected: np.ndarray, n_bins: int = 10
) -> tuple[np.ndarray, np.ndarray | None]:
    """Quantile bin edges + floored expected shares of a reference sample.

    This is the training-time half of the PSI computation: everything
    that depends only on the *reference* population. The returned
    ``(edges, expected_share)`` pair is what a deployed monitor persists
    (see :class:`repro.serve.drift.ReferenceProfile`) so live windows
    can be scored against the exact training-era distribution.
    ``expected_share`` is ``None`` for a degenerate sample whose edges
    collapse below three (PSI is then defined as 0).
    """
    expected = np.asarray(expected, dtype=float)
    if expected.size == 0:
        raise ValueError("reference sample must be non-empty")
    if n_bins < 2:
        raise ValueError("n_bins must be at least 2")

    quantiles = np.linspace(0, 100, n_bins + 1)
    edges = np.percentile(expected, quantiles)
    edges[0], edges[-1] = -np.inf, np.inf
    # Collapse duplicate edges (constant-ish features).
    edges = np.unique(edges)
    if edges.size < 3:
        return edges, None
    expected_counts, _ = np.histogram(expected, bins=edges)
    expected_share = np.maximum(expected_counts / expected.size, 1e-6)
    return edges, expected_share


def psi_against_reference(
    edges: np.ndarray, expected_share: np.ndarray | None, actual: np.ndarray
) -> float:
    """PSI of ``actual`` against a :func:`reference_bins` pair.

    The serving-time half: shared by the offline
    :func:`population_stability_index` and the serve daemon's live drift
    monitor, so both produce bit-identical values on the same windows.
    """
    actual = np.asarray(actual, dtype=float)
    if actual.size == 0:
        raise ValueError("current sample must be non-empty")
    if expected_share is None or len(edges) < 3:
        return 0.0
    actual_counts, _ = np.histogram(actual, bins=np.asarray(edges, dtype=float))
    actual_share = np.maximum(actual_counts / actual.size, 1e-6)
    return float(np.sum((actual_share - expected_share) * np.log(actual_share / expected_share)))


def population_stability_index(
    expected: np.ndarray, actual: np.ndarray, n_bins: int = 10
) -> float:
    """PSI between a reference sample and a current sample.

    Bins are the reference sample's quantiles, so a stationary feature
    scores ~0 regardless of its marginal shape. Empty-bin counts are
    floored to keep the statistic finite. Composed from
    :func:`reference_bins` + :func:`psi_against_reference` so an
    offline report and a live monitor follow one code path.
    """
    actual = np.asarray(actual, dtype=float)
    if actual.size == 0:
        raise ValueError("both samples must be non-empty")
    edges, expected_share = reference_bins(expected, n_bins)
    if expected_share is None:
        return 0.0
    return psi_against_reference(edges, expected_share, actual)


@dataclass(frozen=True)
class FeatureDrift:
    """One feature's drift measurement."""

    column: str
    psi: float

    @property
    def severity(self) -> str:
        if self.psi < 0.1:
            return "stable"
        if self.psi < 0.25:
            return "drifting"
        return "severe"


def feature_drift_report(
    model: MFPA,
    reference_window: tuple[int, int],
    current_window: tuple[int, int],
    healthy_only: bool = True,
    max_rows: int = 20000,
    seed: int = 0,
) -> list[FeatureDrift]:
    """Per-feature PSI between two time windows of the prepared fleet.

    ``healthy_only`` restricts both samples to never-failed drives so
    genuine drift is not confounded with failure signatures. Returns
    features sorted by descending PSI.
    """
    prepared = model.dataset_
    day = prepared.columns["day"]
    serial = prepared.columns["serial"]
    rng = np.random.default_rng(seed)

    def window_rows(window: tuple[int, int]) -> np.ndarray:
        start, end = window
        if end <= start:
            raise ValueError("window end must exceed start")
        mask = (day >= start) & (day < end)
        if healthy_only:
            faulty = np.fromiter(model.failure_times_, dtype=np.int64)
            mask &= ~np.isin(serial, faulty)
        rows = np.flatnonzero(mask)
        if rows.size == 0:
            raise ValueError(f"no rows in window {window}")
        if rows.size > max_rows:
            rows = rng.choice(rows, size=max_rows, replace=False)
        return rows

    reference_X = model.assembler_.assemble(
        prepared.columns, window_rows(reference_window)
    )
    current_X = model.assembler_.assemble(prepared.columns, window_rows(current_window))

    report = [
        FeatureDrift(
            column=column,
            psi=population_stability_index(reference_X[:, i], current_X[:, i]),
        )
        for i, column in enumerate(model.assembler_.columns)
    ]
    report.sort(key=lambda drift: drift.psi, reverse=True)
    return report


def drifted_columns(report: list[FeatureDrift], threshold: float = 0.1) -> list[str]:
    """Columns whose PSI exceeds the drift threshold."""
    return [drift.column for drift in report if drift.psi > threshold]
