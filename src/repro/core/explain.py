"""Explaining MFPA predictions (extension, cf. DFPE [9]).

Operators do not act on opaque alarms: an after-sales team confirms a
prediction by looking at *which* telemetry moved. Two tools:

* :func:`permutation_importance` — model-agnostic global importance:
  how much does drive-level AUC drop when one feature column is
  shuffled? Works for every MFPA algorithm, unlike tree-specific
  impurity importances.
* :func:`explain_alarm` — per-drive local explanation: for an alarmed
  record, which features sit in the extreme tail of the healthy-fleet
  distribution, and how does the alarm probability fall when each is
  replaced by a typical healthy value?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import MFPA
from repro.ml.metrics import auc_score


@dataclass(frozen=True)
class FeatureImportance:
    """One feature's permutation-importance measurement."""

    column: str
    auc_drop: float
    baseline_auc: float


def permutation_importance(
    model: MFPA,
    start_day: int,
    end_day: int,
    n_repeats: int = 3,
    seed: int = 0,
) -> list[FeatureImportance]:
    """Record-level permutation importance over an evaluation period.

    For each feature column, its values across the evaluated records
    are shuffled (within the evaluation set) and the record-level AUC
    is recomputed; the mean AUC drop over ``n_repeats`` shuffles is the
    feature's importance. Record level is deliberately chosen over
    drive level: the drive-level max-aggregation saturates at AUC 1.0
    whenever the model has redundant signals, hiding all structure.
    Returns columns sorted by descending drop.
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be at least 1")
    (
        _,
        _,
        record_truth,
        record_scores,
        n_faulty,
        n_healthy,
    ) = model._collect_drive_scores(start_day, end_day)
    if n_faulty == 0 or n_healthy == 0:
        raise ValueError("permutation importance needs both classes in the period")
    baseline = auc_score(record_truth, record_scores)

    # Rebuild the evaluation rows once; shuffling happens on the
    # assembled matrix so the dataset itself is never mutated.
    assembler = model.assembler_
    prepared = model.dataset_
    rng = np.random.default_rng(seed)

    config = model.config
    row_slices = prepared._row_slices()
    all_rows_parts: list[np.ndarray] = []
    for serial in prepared.drives:
        rows = prepared.drive_rows(serial)
        days = rows["day"]
        if serial in model.failure_times_:
            failure_time = model.failure_times_[serial]
            if not start_day <= failure_time < end_day:
                continue
            window_end = failure_time - config.lookahead
            in_window = (days > window_end - config.positive_window) & (
                days <= window_end
            )
        else:
            in_window = (days >= start_day) & (days < end_day)
        if not np.any(in_window):
            continue
        base = row_slices[serial].start
        all_rows_parts.append(base + np.flatnonzero(in_window))

    X = assembler.assemble(prepared.columns, np.concatenate(all_rows_parts))

    importances = []
    history = assembler.history_length
    n_base_columns = len(assembler.columns)
    for column_index, column in enumerate(assembler.columns):
        drops = []
        for _ in range(n_repeats):
            shuffled = X.copy()
            permutation = rng.permutation(X.shape[0])
            # With history stacking the column appears once per step.
            for step in range(history):
                flat_index = step * n_base_columns + column_index
                shuffled[:, flat_index] = X[permutation, flat_index]
            scores = model.model_.predict_proba(shuffled)[:, 1]
            drops.append(baseline - auc_score(record_truth, scores))
        importances.append(
            FeatureImportance(
                column=column,
                auc_drop=float(np.mean(drops)),
                baseline_auc=float(baseline),
            )
        )
    importances.sort(key=lambda imp: imp.auc_drop, reverse=True)
    return importances


@dataclass(frozen=True)
class AlarmExplanation:
    """Why one record alarmed."""

    serial: int
    day: int
    probability: float
    contributions: list[dict]
    """Per suspicious feature: column, value, healthy p95, and the
    probability after substituting the healthy median (counterfactual)."""


def explain_alarm(
    model: MFPA,
    serial: int,
    day: int,
    top_k: int = 5,
    healthy_sample: int = 5000,
    seed: int = 0,
) -> AlarmExplanation:
    """Local explanation of one (drive, day) prediction.

    Each feature of the record is compared against the healthy fleet's
    distribution; features beyond the healthy 95th percentile (or below
    the 5th for downward indicators) are counterfactually reset to the
    healthy median to measure how much of the alarm they carry.
    """
    prepared = model.dataset_
    rows = prepared.drive_rows(serial)
    positions = np.flatnonzero(rows["day"] == day)
    if positions.size == 0:
        raise ValueError(f"drive {serial} has no record on day {day}")
    base = prepared._row_slices()[serial].start
    row_index = base + int(positions[0])
    X = model.assembler_.assemble(prepared.columns, np.array([row_index]))
    probability = float(model.model_.predict_proba(X)[0, 1])

    # Healthy reference distribution: a sample of healthy-drive records.
    rng = np.random.default_rng(seed)
    healthy = set(int(s) for s in prepared.healthy_serials())
    serial_column = prepared.columns["serial"]
    healthy_rows = np.flatnonzero(
        np.isin(serial_column, np.fromiter(healthy, dtype=np.int64))
    )
    if healthy_rows.size > healthy_sample:
        healthy_rows = rng.choice(healthy_rows, size=healthy_sample, replace=False)
    reference = model.assembler_.assemble(prepared.columns, healthy_rows)
    p05, p50, p95 = np.percentile(reference, [5, 50, 95], axis=0)

    record = X[0]
    suspicious = np.flatnonzero((record > p95) | (record < p05))
    contributions = []
    for flat_index in suspicious:
        counterfactual = X.copy()
        counterfactual[0, flat_index] = p50[flat_index]
        new_probability = float(model.model_.predict_proba(counterfactual)[0, 1])
        column = model.assembler_.columns[flat_index % len(model.assembler_.columns)]
        contributions.append(
            {
                "column": column,
                "value": float(record[flat_index]),
                "healthy_p95": float(p95[flat_index]),
                "healthy_median": float(p50[flat_index]),
                "probability_without": new_probability,
                "drop": probability - new_probability,
            }
        )
    contributions.sort(key=lambda c: c["drop"], reverse=True)
    return AlarmExplanation(
        serial=int(serial),
        day=int(day),
        probability=probability,
        contributions=contributions[:top_k],
    )
