"""Feature group sets (Table V) and feature-matrix assembly.

The paper evaluates seven input groups — SFWB, SFW, SFB, SF, S, W, B —
where S is the 16 SMART attributes, F the (label-encoded) firmware
version, W five Windows-event cumulative counters and B the 23 BSOD
cumulative counters. ``FeatureAssembler`` turns dataset rows into model
matrices, optionally stacking a trailing history window for the
sequence model (CNN_LSTM).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.bsod import BSOD_CODES
from repro.telemetry.smart import SMART_COLUMNS
from repro.telemetry.windows_events import MODEL_W_COLUMNS

#: Cumulative-count column names produced by core.preprocess.
CUM_W_COLUMNS: tuple[str, ...] = tuple(f"cum_{c}" for c in MODEL_W_COLUMNS)
CUM_B_COLUMNS: tuple[str, ...] = tuple(f"cum_{e.column}" for e in BSOD_CODES)
FIRMWARE_CODE_COLUMN = "firmware_code"


@dataclass(frozen=True)
class FeatureGroup:
    """A named set of input columns (one row of Table V)."""

    name: str
    smart: bool
    firmware: bool
    windows_events: bool
    bsod: bool

    @property
    def columns(self) -> tuple[str, ...]:
        """Dataset columns this group consumes, in canonical order."""
        parts: list[str] = []
        if self.smart:
            parts.extend(SMART_COLUMNS)
        if self.firmware:
            parts.append(FIRMWARE_CODE_COLUMN)
        if self.windows_events:
            parts.extend(CUM_W_COLUMNS)
        if self.bsod:
            parts.extend(CUM_B_COLUMNS)
        return tuple(parts)

    @property
    def counts(self) -> dict[str, int]:
        """The Table-V row: feature count per dimension (0 for NaN)."""
        return {
            "SMART": len(SMART_COLUMNS) if self.smart else 0,
            "Firmware": 1 if self.firmware else 0,
            "WindowsEvent": len(CUM_W_COLUMNS) if self.windows_events else 0,
            "BlueScreenofDeath": len(CUM_B_COLUMNS) if self.bsod else 0,
        }

    def __len__(self) -> int:
        return len(self.columns)


FEATURE_GROUPS: dict[str, FeatureGroup] = {
    "SFWB": FeatureGroup("SFWB", True, True, True, True),
    "SFW": FeatureGroup("SFW", True, True, True, False),
    "SFB": FeatureGroup("SFB", True, True, False, True),
    "SF": FeatureGroup("SF", True, True, False, False),
    "S": FeatureGroup("S", True, False, False, False),
    "W": FeatureGroup("W", False, False, True, False),
    "B": FeatureGroup("B", False, False, False, True),
}


def feature_group(name: str) -> FeatureGroup:
    """Look up a Table-V feature group by name."""
    try:
        return FEATURE_GROUPS[name]
    except KeyError:
        raise ValueError(
            f"unknown feature group {name!r}; known: {sorted(FEATURE_GROUPS)}"
        ) from None


class FeatureAssembler:
    """Builds model input matrices from dataset columns.

    Parameters
    ----------
    columns:
        The input columns (typically ``feature_group(name).columns``, or
        a subset chosen by forward selection).
    history_length:
        1 produces one row per record (tabular models). k > 1 stacks the
        record's k most recent observations of the *same drive* into a
        flattened ``k * n_columns`` vector (earlier-first), padding with
        the drive's first observation — the sequence input for CNN_LSTM.
    """

    def __init__(self, columns: tuple[str, ...], history_length: int = 1):
        if not columns:
            raise ValueError("columns must not be empty")
        if history_length < 1:
            raise ValueError("history_length must be at least 1")
        self.columns = tuple(columns)
        self.history_length = history_length

    @property
    def n_features(self) -> int:
        return len(self.columns) * self.history_length

    def assemble(
        self,
        dataset_columns: dict[str, np.ndarray],
        row_indices: np.ndarray,
    ) -> np.ndarray:
        """Build the matrix for the given rows.

        ``dataset_columns`` must contain ``serial`` and be sorted by
        (serial, day) — the invariant :class:`TelemetryDataset`
        maintains — so a drive's history is the contiguous run of rows
        preceding each index.
        """
        row_indices = np.asarray(row_indices)
        missing = [c for c in self.columns if c not in dataset_columns]
        if missing:
            raise KeyError(f"dataset is missing feature columns {missing}")
        base = np.column_stack(
            [dataset_columns[column] for column in self.columns]
        ).astype(float)
        if self.history_length == 1:
            return base[row_indices]

        serial = np.asarray(dataset_columns["serial"])
        # Rows are sorted by (serial, day), so each drive is one
        # contiguous run; its first row bounds how far history may walk
        # back. Clamping to that start replaces the data-dependent
        # walk-forward loop with one searchsorted over the run starts.
        drive_starts = np.flatnonzero(np.r_[True, serial[1:] != serial[:-1]])
        row_starts = drive_starts[
            np.searchsorted(drive_starts, row_indices, side="right") - 1
        ]
        blocks = [
            base[np.maximum(row_indices - offset, row_starts)]
            for offset in range(self.history_length - 1, -1, -1)
        ]
        return np.concatenate(blocks, axis=1)
