"""Stage 2 of MFPA: identification of the eventual failure time (§III-C(2)).

CSS drives are labeled through trouble tickets, but the ticket's initial
maintenance time (IMT) lags the actual failure — users do not rush to
the repair shop. The paper's rule with threshold θ (tuned to 7 days):

* let ``Pt_d`` be the drive's log day closest to the IMT and
  ``ti = IMT - Pt_d``;
* if ``ti <= θ`` the failure time is ``Pt_d``;
* otherwise it is ``IMT - θ``.

This module also builds the record-level training samples: records of a
faulty drive inside the positive window before its identified failure
time are positive; records of never-failed drives are negative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.dataset import TelemetryDataset


class FailureTimeIdentifier:
    """Applies the θ rule to every RaSRF ticket of a dataset.

    Parameters
    ----------
    theta:
        Maximum trusted ticket lag in days (paper: 7).
    """

    def __init__(self, theta: int = 7):
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.theta = theta

    def identify(self, dataset: TelemetryDataset) -> dict[int, int]:
        """Return serial -> identified failure day for every ticket."""
        failure_times: dict[int, int] = {}
        for ticket in dataset.tickets:
            try:
                days = dataset.drive_rows(ticket.serial)["day"]
            except KeyError:
                # The drive's telemetry did not survive preprocessing.
                continue
            imt = ticket.initial_maintenance_time
            # Closest tracking point: logs stop at failure <= IMT, so it
            # is the last day at or before the IMT (guard anyway).
            eligible = days[days <= imt]
            if eligible.size == 0:
                continue
            closest = int(eligible[-1])
            interval = imt - closest
            if interval <= self.theta:
                failure_times[ticket.serial] = closest
            else:
                failure_times[ticket.serial] = imt - self.theta
        return failure_times


@dataclass
class SampleSet:
    """Aligned per-record sample arrays (rows reference a dataset)."""

    row_indices: np.ndarray
    labels: np.ndarray
    serials: np.ndarray
    days: np.ndarray

    def __post_init__(self) -> None:
        n = self.row_indices.shape[0]
        if not (self.labels.shape[0] == self.serials.shape[0] == self.days.shape[0] == n):
            raise ValueError("sample arrays must align")

    @property
    def n_samples(self) -> int:
        return int(self.row_indices.shape[0])

    @property
    def n_positive(self) -> int:
        return int(np.sum(self.labels == 1))

    @property
    def n_negative(self) -> int:
        return int(np.sum(self.labels == 0))

    def sorted_by_day(self) -> "SampleSet":
        """Chronological order — required by the time-series splitters."""
        order = np.argsort(self.days, kind="stable")
        return SampleSet(
            row_indices=self.row_indices[order],
            labels=self.labels[order],
            serials=self.serials[order],
            days=self.days[order],
        )

    def subset(self, indices: np.ndarray) -> "SampleSet":
        return SampleSet(
            row_indices=self.row_indices[indices],
            labels=self.labels[indices],
            serials=self.serials[indices],
            days=self.days[indices],
        )


def build_samples(
    dataset: TelemetryDataset,
    failure_times: dict[int, int],
    positive_window: int = 14,
    lookahead: int = 0,
    include_negative_from_faulty: bool = False,
) -> SampleSet:
    """Label dataset records for training/evaluation.

    Parameters
    ----------
    failure_times:
        serial -> identified failure day (from
        :class:`FailureTimeIdentifier`).
    positive_window:
        Days before the (lookahead-shifted) failure time whose records
        are positive (paper: 7, 14 or 21).
    lookahead:
        Predict-ahead distance N: the positive window ends N days before
        the failure (Fig 19 sweeps N up to 21).
    include_negative_from_faulty:
        When True, a faulty drive's *early* records (before the positive
        window) are used as negatives; the paper keeps negatives to
        healthy drives, which is the default.
    """
    if positive_window < 1:
        raise ValueError("positive_window must be at least 1")
    if lookahead < 0:
        raise ValueError("lookahead must be non-negative")

    serial = dataset.columns["serial"]
    day = dataset.columns["day"]
    n = serial.shape[0]

    failure_serials = np.array(sorted(failure_times), dtype=np.int64)
    failure_days = np.array(
        [failure_times[s] for s in failure_serials], dtype=np.int64
    )
    position = np.searchsorted(failure_serials, serial)
    position_valid = position < failure_serials.size
    is_faulty_row = np.zeros(n, dtype=bool)
    row_failure_day = np.zeros(n, dtype=np.int64)
    matched = position_valid.copy()
    matched[position_valid] = (
        failure_serials[position[position_valid]] == serial[position_valid]
    )
    is_faulty_row[matched] = True
    row_failure_day[matched] = failure_days[position[matched]]

    window_end = row_failure_day - lookahead
    window_start = window_end - positive_window
    positive = is_faulty_row & (day > window_start) & (day <= window_end)
    if include_negative_from_faulty:
        negative = (~is_faulty_row) | (is_faulty_row & (day <= window_start))
    else:
        negative = ~is_faulty_row

    keep = positive | negative
    indices = np.flatnonzero(keep)
    labels = positive[indices].astype(int)
    return SampleSet(
        row_indices=indices,
        labels=labels,
        serials=serial[indices],
        days=day[indices],
    )
