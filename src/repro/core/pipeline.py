"""End-to-end MFPA pipeline: preprocess -> label -> sample -> train -> evaluate.

The deployment story matches the paper's: train on a historical learning
window, then score the fleet forward in time. Evaluation is *per drive*
(the unit the after-sales department cares about): a faulty drive counts
as a true positive if any of its records inside the pre-failure window
raises an alarm; a healthy drive counts as a false positive if any of
its records in the evaluation period does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import FeatureAssembler, feature_group
from repro.core.labeling import FailureTimeIdentifier, SampleSet, build_samples
from repro.core.preprocess import preprocess
from repro.core.selection import SequentialForwardSelector, youden_score
from repro.core.splitting import TimeSeriesCrossValidator
from repro.ml.base import BaseClassifier, clone
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import ClassificationReport, classification_report
from repro.ml.model_selection import GridSearchCV
from repro.ml.resampling import RandomUnderSampler
from repro.ml.tree import _check_split_algorithm
from repro.obs import trace_span
from repro.telemetry.dataset import TelemetryDataset


def _default_algorithm() -> BaseClassifier:
    return RandomForestClassifier(n_estimators=40, max_depth=12, seed=0)


def _with_n_jobs(estimator: BaseClassifier, n_jobs: int) -> BaseClassifier:
    """Propagate ``n_jobs`` onto estimators that accept it.

    Only overrides the estimator's own setting when the config actually
    requests parallelism, so an explicitly configured algorithm keeps
    whatever the caller chose.
    """
    if n_jobs != 1 and "n_jobs" in estimator.get_params():
        estimator.set_params(n_jobs=n_jobs)
    return estimator


def _with_split_algorithm(
    estimator: BaseClassifier, split_algorithm: str
) -> BaseClassifier:
    """Propagate ``split_algorithm`` onto estimators that accept it.

    Same contract as :func:`_with_n_jobs`: the default ("exact") never
    overrides an explicitly configured estimator, and estimators without
    the knob (Bayes, SVM, ...) are left untouched.
    """
    if (
        split_algorithm != "exact"
        and "split_algorithm" in estimator.get_params()
    ):
        estimator.set_params(split_algorithm=split_algorithm)
    return estimator


@dataclass
class MFPAConfig:
    """All MFPA knobs, defaulting to the paper's choices.

    Parameters
    ----------
    feature_group_name:
        One of Table V's groups ("SFWB" … "B").
    algorithm:
        Prototype estimator (cloned before fitting). RF by default —
        the paper's best performer.
    theta:
        Failure-time identification threshold (paper: 7).
    positive_window:
        Days before failure whose records are positive (paper: 7/14/21).
    lookahead:
        Predict-ahead distance N in days (Fig 19).
    negative_ratio:
        Under-sampling ratio negatives:positives (paper: 3:1 or 5:1).
    feature_columns:
        Optional explicit column subset (e.g. from forward selection);
        overrides the feature group's full column list.
    feature_selection:
        Run sequential forward selection (§III-C(5)) during fit to pick
        the optimal column subset. Crucial for estimators sensitive to
        the time-drifting cumulative usage counters (Bayes, SVM).
    selection_estimator:
        Cheap wrapper model for the selection search; defaults to the
        configured algorithm itself.
    selection_max_features / selection_max_rows:
        Caps keeping the greedy search tractable.
    history_length:
        Trailing records stacked per sample (CNN_LSTM uses > 1).
    param_grid:
        Optional hyperparameter grid; searched with the time-series CV.
    cv_k:
        k of the 2k-subset time-series cross-validation.
    max_gap / fill_gap / min_segment_records:
        Discontinuity-repair thresholds (paper: 10 / 3).
    decision_threshold:
        Alarm probability threshold.
    seed:
        Seed for under-sampling.
    n_jobs:
        Worker processes for the parallelizable stages (grid search,
        forward selection, and estimators that accept ``n_jobs`` such
        as the random forests). 1 is serial; -1 uses every core. The
        fitted model is bit-identical at every value.
    split_algorithm:
        Tree split-search backend for estimators that accept it
        ("exact" or "hist", see :mod:`repro.ml.binning`). "exact" is
        the bit-identical reference; "hist" trades per-node sorts for
        histogram accumulation over a shared pre-binned dataset cache.
    """

    feature_group_name: str = "SFWB"
    algorithm: BaseClassifier = field(default_factory=_default_algorithm)
    theta: int = 7
    positive_window: int = 14
    lookahead: int = 0
    negative_ratio: float = 3.0
    feature_columns: tuple[str, ...] | None = None
    derived_features: bool = False
    """Add day-over-day delta / rolling-mean columns for the cumulative
    counters (see :mod:`repro.core.derived`) to the input features —
    the FAST'20-style change features that also neutralize fleet-age
    drift."""
    derived_mode: str = "append"
    """``"append"`` keeps the raw counters alongside their derivatives;
    ``"replace"`` swaps the drifting raw counters out entirely — what
    distribution-sensitive models (Bayes, SVM) need, since for them the
    raw counters otherwise dominate the likelihood."""
    feature_selection: bool = False
    selection_estimator: BaseClassifier | None = None
    selection_max_features: int | None = 12
    selection_max_rows: int = 3000
    history_length: int = 1
    param_grid: dict | None = None
    cv_k: int = 3
    max_gap: int = 10
    fill_gap: int = 3
    min_segment_records: int = 5
    decision_threshold: float = 0.5
    seed: int = 0
    n_jobs: int = 1
    split_algorithm: str = "exact"
    memory_ceiling_mb: int | None = None
    """Peak-RSS budget (MiB) enforced by the out-of-core sharded paths
    (:mod:`repro.scale`); the in-RAM pipeline ignores it. ``None``
    disables the checks."""

    def __post_init__(self) -> None:
        feature_group(self.feature_group_name)  # validate the name
        _check_split_algorithm(self.split_algorithm)
        if not 0 < self.decision_threshold < 1:
            raise ValueError("decision_threshold must be in (0, 1)")
        if self.derived_mode not in ("append", "replace"):
            raise ValueError("derived_mode must be 'append' or 'replace'")
        if self.memory_ceiling_mb is not None and self.memory_ceiling_mb <= 0:
            raise ValueError("memory_ceiling_mb must be positive (or None)")


@dataclass(frozen=True)
class EvaluationResult:
    """Drive-level and record-level metrics for one evaluation period."""

    drive_report: ClassificationReport
    record_report: ClassificationReport
    n_faulty_drives: int
    n_healthy_drives: int
    period: tuple[int, int]

    def __str__(self) -> str:
        return (
            f"period {self.period}: drives[{self.drive_report}] "
            f"({self.n_faulty_drives} faulty / {self.n_healthy_drives} healthy)"
        )


class MFPA:
    """The multidimensional-based failure prediction approach.

    Typical usage::

        model = MFPA(MFPAConfig(feature_group_name="SFWB"))
        model.fit(dataset, train_end_day=360)
        result = model.evaluate(360, 540)
        print(result.drive_report)
    """

    def __init__(self, config: MFPAConfig | None = None):
        self.config = config or MFPAConfig()
        self.stage_stats_: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, dataset: TelemetryDataset, train_end_day: int) -> "MFPA":
        """Preprocess, label and train on records before ``train_end_day``.

        Each stage runs inside a ``trace_span`` (nested under
        ``pipeline.fit``) mirroring the ``stage_stats_`` keys, so traced
        runs show exactly where fit wall-clock goes.
        """
        with trace_span("pipeline.fit"):
            return self._fit(dataset, train_end_day)

    def _fit(self, dataset: TelemetryDataset, train_end_day: int) -> "MFPA":
        config = self.config

        started = time.perf_counter()
        with trace_span("feature_engineering"):
            prepared, report, encoder = preprocess(
                dataset,
                max_gap=config.max_gap,
                fill_gap=config.fill_gap,
                min_segment_records=config.min_segment_records,
            )
            if config.derived_features:
                from repro.core.derived import add_derived_features

                prepared, self.derived_columns_ = add_derived_features(prepared)
            else:
                self.derived_columns_ = ()
        self._record_stage("feature_engineering", started, prepared.n_records)
        self.dataset_ = prepared
        self.preprocess_report_ = report
        self.firmware_encoder_ = encoder

        started = time.perf_counter()
        with trace_span("labeling"):
            self.failure_times_ = FailureTimeIdentifier(config.theta).identify(
                prepared
            )
            samples = build_samples(
                prepared,
                self.failure_times_,
                positive_window=config.positive_window,
                lookahead=config.lookahead,
            )
        self._record_stage("labeling", started, samples.n_samples)

        train = self._select_train_samples(samples, train_end_day)

        started = time.perf_counter()
        with trace_span("sampling"):
            row_indices, labels, days = self._undersample(train)
            columns = self._training_columns()
            if config.feature_selection:
                columns = self._forward_select(
                    prepared, row_indices, labels, days, columns
                )
            self.assembler_ = FeatureAssembler(columns, config.history_length)
            X = self.assembler_.assemble(prepared.columns, row_indices)
        self._record_stage("sampling", started, labels.size)

        started = time.perf_counter()
        with trace_span("training"):
            self._fit_estimator(X, labels, days)
        self._record_stage("training", started, labels.size)
        self.train_end_day_ = train_end_day
        return self

    def bind_dataset(self, dataset: TelemetryDataset) -> "MFPA":
        """Attach a fleet dataset to an artifact-loaded pipeline.

        Runs only the *transform* half of :meth:`fit` — discontinuity
        repair, event accumulation, derived features, firmware encoding
        through the **saved** encoder, and failure-time labeling — so an
        ``repro model load``-ed pipeline can ``evaluate()`` or drive a
        fleet monitor without retraining. ``model_``, ``assembler_`` and
        ``firmware_encoder_`` are left exactly as loaded; a firmware
        version the encoder never saw raises ``ValueError`` rather than
        silently remapping codes.
        """
        self._check_fitted()
        from repro.core.features import FIRMWARE_CODE_COLUMN
        from repro.core.preprocess import (
            accumulate_events,
            repair_discontinuity,
        )

        config = self.config
        started = time.perf_counter()
        with trace_span("bind_dataset"):
            prepared, report = repair_discontinuity(
                dataset,
                max_gap=config.max_gap,
                fill_gap=config.fill_gap,
                min_segment_records=config.min_segment_records,
            )
            prepared = accumulate_events(prepared)
            columns = dict(prepared.columns)
            columns[FIRMWARE_CODE_COLUMN] = self.firmware_encoder_.transform(
                columns["firmware"]
            ).astype(float)
            prepared = TelemetryDataset(
                columns, prepared.drives, prepared.tickets
            )
            if self.derived_columns_:
                from repro.core.derived import add_derived_features

                prepared, _ = add_derived_features(prepared)
            self.dataset_ = prepared
            self.preprocess_report_ = report
            self.failure_times_ = FailureTimeIdentifier(config.theta).identify(
                prepared
            )
        self._record_stage("bind_dataset", started, prepared.n_records)
        return self

    def _select_train_samples(
        self, samples: SampleSet, train_end_day: int
    ) -> SampleSet:
        """Restrict to pre-horizon samples of drives that failed in time.

        Faulty drives whose failure happens after the training horizon
        are excluded entirely: their pre-failure window belongs to the
        future.
        """
        train_mask = samples.days < train_end_day
        late_failure = np.array(
            [
                self.failure_times_.get(int(s), -1) >= train_end_day
                for s in samples.serials
            ]
        )
        train = samples.subset(np.flatnonzero(train_mask & ~late_failure))
        if train.n_positive == 0:
            raise ValueError("no positive samples in the training window")
        return train

    def _undersample(
        self, train: SampleSet
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Seeded undersample + chronological (stable) reordering."""
        config = self.config
        sampler = RandomUnderSampler(
            ratio=config.negative_ratio, seed=config.seed
        )
        row_indices, labels, days = sampler.fit_resample(
            train.row_indices, train.labels, train.days
        )
        order = np.argsort(days, kind="stable")
        return row_indices[order], labels[order], days[order]

    def _training_columns(self) -> tuple[str, ...]:
        """Candidate feature columns before forward selection.

        Requires ``self.derived_columns_`` (set during feature
        engineering) so the derived-mode swap is applied consistently.
        """
        config = self.config
        columns = config.feature_columns or feature_group(
            config.feature_group_name
        ).columns
        if self.derived_columns_:
            if config.derived_mode == "replace":
                from repro.core.derived import DEFAULT_DERIVE_COLUMNS

                columns = tuple(
                    c for c in columns if c not in DEFAULT_DERIVE_COLUMNS
                )
            columns = (*columns, *self.derived_columns_)
        return columns

    def _fit_estimator(
        self, X: np.ndarray, labels: np.ndarray, days: np.ndarray
    ) -> None:
        """Train ``self.model_`` on an assembled matrix (grid search or
        plain fit). Shared verbatim by the sharded trainer — given the
        same ``(X, labels, days)`` the fitted model is bit-identical."""
        config = self.config
        if config.param_grid:
            search = GridSearchCV(
                _with_split_algorithm(
                    clone(config.algorithm), config.split_algorithm
                ),
                config.param_grid,
                splitter=TimeSeriesCrossValidator(k=config.cv_k, days=days),
                n_jobs=config.n_jobs,
            )
            search.fit(X, labels)
            self.model_ = search.best_estimator_
            self.search_ = search
        else:
            self.model_ = _with_split_algorithm(
                _with_n_jobs(clone(config.algorithm), config.n_jobs),
                config.split_algorithm,
            )
            self.model_.fit(X, labels)

    def _forward_select(
        self,
        prepared: TelemetryDataset,
        row_indices: np.ndarray,
        labels: np.ndarray,
        days: np.ndarray,
        columns: tuple[str, ...],
    ) -> tuple[str, ...]:
        """Sequential forward selection over the candidate columns.

        Runs on a (chronologically ordered) row cap with the time-series
        CV, scoring Youden's J. The score trajectory lands in
        ``self.selection_history_`` (the data behind Fig 17).
        """
        with trace_span("feature_selection"):
            assembler = FeatureAssembler(columns, history_length=1)
            subsample = self._selection_subsample(row_indices.size)
            X = assembler.assemble(prepared.columns, row_indices[subsample])
            return self._run_forward_selection(
                X, labels[subsample], days[subsample], columns
            )

    def _selection_subsample(self, n_rows: int) -> np.ndarray:
        """Deterministic chronological row cap for the greedy search."""
        cap = min(self.config.selection_max_rows, n_rows)
        step = max(1, n_rows // cap)
        return np.arange(0, n_rows, step)[:cap]

    def _run_forward_selection(
        self,
        X: np.ndarray,
        labels: np.ndarray,
        days: np.ndarray,
        columns: tuple[str, ...],
    ) -> tuple[str, ...]:
        """Greedy search over an already-assembled candidate matrix.

        Split out of :meth:`_forward_select` so the out-of-core trainer
        can hand in a shard-assembled matrix and still land on the same
        chosen columns and ``selection_history_``.
        """
        config = self.config
        selector = SequentialForwardSelector(
            _with_split_algorithm(
                clone(config.selection_estimator or config.algorithm),
                config.split_algorithm,
            ),
            TimeSeriesCrossValidator(k=config.cv_k, days=days),
            scoring=youden_score,
            max_features=config.selection_max_features,
            n_jobs=config.n_jobs,
        )
        chosen = selector.select(X, labels)
        self.selection_history_ = [
            (columns[index], score) for index, score in selector.history_
        ]
        return tuple(columns[index] for index in chosen)

    def _record_stage(self, stage: str, started: float, n_items: int) -> None:
        self.stage_stats_[stage] = {
            "seconds": time.perf_counter() - started,
            "n_items": float(n_items),
        }

    def _check_fitted(self) -> None:
        if not hasattr(self, "model_"):
            raise RuntimeError("MFPA is not fitted yet; call fit() first")

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_proba_rows(self, row_indices: np.ndarray) -> np.ndarray:
        """Positive-class probability for rows of the prepared dataset."""
        self._check_fitted()
        X = self.assembler_.assemble(self.dataset_.columns, np.asarray(row_indices))
        return self.model_.predict_proba(X)[:, 1]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _collect_drive_scores(
        self, start_day: int, end_day: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int]:
        """Score every evaluable drive over a period.

        Returns ``(drive_truth, drive_scores, record_truth,
        record_scores, n_faulty, n_healthy)``. Faulty drives (identified
        failure time inside the period) are scored on their pre-failure
        window; healthy drives on all their records in the period; a
        drive's score is its records' max positive probability.
        """
        self._check_fitted()
        if end_day <= start_day:
            raise ValueError("end_day must exceed start_day")
        config = self.config
        prepared = self.dataset_
        row_slices = prepared._row_slices()

        drive_truth: list[int] = []
        drive_row_indices: list[np.ndarray] = []
        n_faulty = 0
        n_healthy = 0

        faulty_serials = set(self.failure_times_)
        for target_serial in prepared.drives:
            rows = prepared.drive_rows(target_serial)
            drive_days = rows["day"]
            if target_serial in faulty_serials:
                failure_time = self.failure_times_[target_serial]
                if not start_day <= failure_time < end_day:
                    continue
                window_end = failure_time - config.lookahead
                window_start = window_end - config.positive_window
                in_window = (drive_days > window_start) & (drive_days <= window_end)
                if not np.any(in_window):
                    continue
                truth = 1
                n_faulty += 1
            else:
                in_window = (drive_days >= start_day) & (drive_days < end_day)
                if not np.any(in_window):
                    continue
                truth = 0
                n_healthy += 1

            base = row_slices[target_serial].start
            drive_truth.append(truth)
            drive_row_indices.append(base + np.flatnonzero(in_window))

        if n_faulty == 0 and n_healthy == 0:
            raise ValueError(f"no drives to evaluate in [{start_day}, {end_day})")

        # One batched prediction pass over every evaluated record.
        counts = np.array([indices.size for indices in drive_row_indices])
        record_scores = self.predict_proba_rows(np.concatenate(drive_row_indices))
        splits = np.split(record_scores, np.cumsum(counts)[:-1])

        drive_truth_arr = np.asarray(drive_truth)
        drive_scores = np.array([scores.max() for scores in splits])
        record_truth = np.repeat(drive_truth_arr, counts)
        return (
            drive_truth_arr,
            drive_scores,
            record_truth,
            record_scores,
            n_faulty,
            n_healthy,
        )

    def calibrate_threshold(
        self, start_day: int, end_day: int, max_fpr: float | None = 0.01
    ) -> float:
        """Tune the alarm threshold on drive-level validation scores.

        Scores the period (typically a slice held out *after* the
        training window) and picks the threshold maximizing TPR subject
        to ``max_fpr`` — falling back to Youden's J when the budget is
        infeasible or ``max_fpr`` is None. The chosen value replaces
        ``config.decision_threshold`` and is returned.

        Noisy scorers (SVM margins, neural nets) hover near 0.5 on
        healthy records, and drive-level "any record alarms" compounds
        that over long windows; calibration is what keeps their
        deployment FPR usable.
        """
        from repro.core.thresholding import (
            tune_threshold_fpr_budget,
            tune_threshold_youden,
        )

        truths, scores, _, _, n_faulty, n_healthy = self._collect_drive_scores(
            start_day, end_day
        )
        if n_faulty == 0 or n_healthy == 0:
            raise ValueError(
                "threshold calibration needs both faulty and healthy drives "
                f"in [{start_day}, {end_day})"
            )
        choice = None
        if max_fpr is not None:
            try:
                choice = tune_threshold_fpr_budget(truths, scores, max_fpr=max_fpr)
            except ValueError:
                choice = None
        if choice is None:
            choice = tune_threshold_youden(truths, scores)
        threshold = float(np.clip(choice.threshold, 1e-6, 1 - 1e-6))
        self.config.decision_threshold = threshold
        return threshold

    def evaluate(self, start_day: int, end_day: int) -> EvaluationResult:
        """Drive- and record-level metrics over ``[start_day, end_day)``.

        Faulty drives whose identified failure time falls in the period
        are scored on their pre-failure window; healthy drives on all
        their records in the period.
        """
        started = time.perf_counter()
        with trace_span("pipeline.evaluate"), trace_span("prediction"):
            (
                drive_truth_arr,
                drive_scores_arr,
                record_truth_arr,
                record_scores_arr,
                n_faulty,
                n_healthy,
            ) = self._collect_drive_scores(start_day, end_day)
            threshold = self.config.decision_threshold
            drive_predictions = (drive_scores_arr >= threshold).astype(int)
            record_predictions = (record_scores_arr >= threshold).astype(int)
        self._record_stage("prediction", started, record_truth_arr.size)

        return EvaluationResult(
            drive_report=classification_report(
                drive_truth_arr, drive_predictions, drive_scores_arr
            ),
            record_report=classification_report(
                record_truth_arr, record_predictions, record_scores_arr
            ),
            n_faulty_drives=n_faulty,
            n_healthy_drives=n_healthy,
            period=(start_day, end_day),
        )
