"""Stage 1 of MFPA: optimization of the discontinuous data (§III-C(1)).

Consumer machines boot irregularly, so a drive's log days look like
``(0, 3, 5-8, 11, 13-15)``. Following the paper:

* runs separated by a gap of ``>= max_gap`` days (paper: 10) are split;
  fragments with too few records are *removed* — they cannot support
  window-based training;
* short gaps of ``<= fill_gap`` missing days (paper: 3) are *filled*
  with the mean of the adjacent observed records;
* daily Windows-event and BSOD counts are converted to *cumulative*
  values, because per-day counts are too sparse to show a trend;
* the character-valued firmware version is label encoded.

All passes are vectorized over the full (serial, day)-sorted column
store — a fleet of thousands of drives repairs in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.encoding import LabelEncoder
from repro.telemetry.dataset import B_COLUMNS, TelemetryDataset, W_COLUMNS

IMPUTED_COLUMN = "imputed"
FIRMWARE_CODE_COLUMN = "firmware_code"

_EVENT_COLUMNS: tuple[str, ...] = (*W_COLUMNS, *B_COLUMNS)
_OBJECT_COLUMNS = ("firmware", "vendor", "model")


@dataclass(frozen=True)
class PreprocessReport:
    """What the repair pass did — reported by the overhead bench (Fig 20)."""

    n_input_rows: int
    n_output_rows: int
    n_rows_dropped: int
    n_rows_filled: int
    n_drives_dropped: int

    def __str__(self) -> str:
        return (
            f"rows {self.n_input_rows} -> {self.n_output_rows} "
            f"(dropped {self.n_rows_dropped}, filled {self.n_rows_filled}); "
            f"drives dropped {self.n_drives_dropped}"
        )


def _grouped_cumsum(values: np.ndarray, group_starts: np.ndarray) -> np.ndarray:
    """Cumulative sum that restarts at every True in ``group_starts``."""
    if np.any(values < 0):
        raise ValueError("event counts must be non-negative")
    totals = np.cumsum(values)
    start_indices = np.flatnonzero(group_starts)
    # Each group's offset is the running total just before its start;
    # forward-fill it with a running maximum (valid because counts are
    # non-negative, so carries are non-decreasing).
    carry = np.concatenate([[0.0], totals[start_indices[1:] - 1]])
    offsets = np.zeros_like(totals)
    offsets[start_indices] = carry
    offsets = np.maximum.accumulate(offsets)
    return totals - offsets


def accumulate_events(dataset: TelemetryDataset) -> TelemetryDataset:
    """Add ``cum_<column>`` per-drive cumulative counters for W and B."""
    serial = dataset.columns["serial"]
    group_starts = np.concatenate([[True], serial[1:] != serial[:-1]])
    columns = dict(dataset.columns)
    for column in _EVENT_COLUMNS:
        columns[f"cum_{column}"] = _grouped_cumsum(
            dataset.columns[column].astype(float), group_starts
        )
    return TelemetryDataset(columns, dataset.drives, dataset.tickets)


def encode_firmware(dataset: TelemetryDataset) -> tuple[TelemetryDataset, LabelEncoder]:
    """Label-encode the firmware-version strings into ``firmware_code``."""
    encoder = LabelEncoder()
    codes = encoder.fit_transform(dataset.columns["firmware"])
    columns = dict(dataset.columns)
    columns[FIRMWARE_CODE_COLUMN] = codes.astype(float)
    return TelemetryDataset(columns, dataset.drives, dataset.tickets), encoder


def _exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    result = np.zeros_like(values)
    np.cumsum(values[:-1], out=result[1:])
    return result


def repair_discontinuity(
    dataset: TelemetryDataset,
    max_gap: int = 10,
    fill_gap: int = 3,
    min_segment_records: int = 5,
) -> tuple[TelemetryDataset, PreprocessReport]:
    """Drop unusable fragments, mean-fill short gaps (paper defaults 10/3).

    A *gap* is the count of missing days between consecutive records of
    the same drive. Runs separated by gaps >= ``max_gap`` are
    independent fragments; fragments with fewer than
    ``min_segment_records`` records are removed. Within kept fragments,
    gaps of at most ``fill_gap`` missing days are filled with the mean
    of the two adjacent records.
    """
    if max_gap < 2:
        raise ValueError("max_gap must be at least 2")
    if fill_gap < 0:
        raise ValueError("fill_gap must be non-negative")
    if fill_gap >= max_gap:
        raise ValueError("fill_gap must be smaller than max_gap")

    serial = dataset.columns["serial"]
    day = dataset.columns["day"]
    n = serial.shape[0]

    # ---- fragment segmentation and drop pass -------------------------
    new_drive = np.concatenate([[True], serial[1:] != serial[:-1]])
    gap = np.concatenate([[0], np.diff(day) - 1])
    gap[new_drive] = 0
    fragment_start = new_drive | (gap >= max_gap)
    fragment_id = np.cumsum(fragment_start) - 1
    fragment_sizes = np.bincount(fragment_id)
    keep = fragment_sizes[fragment_id] >= min_segment_records
    n_dropped = int(n - np.count_nonzero(keep))

    base_columns: dict[str, np.ndarray] = {
        name: values[keep] for name, values in dataset.columns.items()
    }
    if IMPUTED_COLUMN not in base_columns:
        base_columns[IMPUTED_COLUMN] = np.zeros(int(keep.sum()))
    if base_columns["serial"].size == 0:
        raise ValueError("repair removed every record; thresholds too aggressive")

    # ---- mean-fill pass on the kept rows ------------------------------
    kept_serial = base_columns["serial"]
    kept_day = base_columns["day"]
    same_drive = kept_serial[1:] == kept_serial[:-1]
    kept_gap = np.diff(kept_day) - 1
    fill_boundary = same_drive & (kept_gap >= 1) & (kept_gap <= fill_gap)
    left_rows = np.flatnonzero(fill_boundary)
    counts = kept_gap[left_rows].astype(np.int64)
    total_new = int(counts.sum())

    if total_new:
        repeated_left = np.repeat(left_rows, counts)
        within = np.arange(total_new) - np.repeat(_exclusive_cumsum(counts), counts)
        new_columns: dict[str, np.ndarray] = {
            "serial": kept_serial[repeated_left],
            "day": kept_day[repeated_left] + 1 + within,
            IMPUTED_COLUMN: np.ones(total_new),
        }
        for name in _OBJECT_COLUMNS:
            new_columns[name] = base_columns[name][repeated_left]
        for name, values in base_columns.items():
            if name in new_columns:
                continue
            means = (values[repeated_left] + values[repeated_left + 1]) / 2.0
            new_columns[name] = means
        merged = {
            name: np.concatenate([base_columns[name], new_columns[name]])
            for name in base_columns
        }
        order = np.lexsort((merged["day"], merged["serial"]))
        columns = {name: values[order] for name, values in merged.items()}
    else:
        columns = base_columns

    surviving = set(np.unique(columns["serial"]).tolist())
    drives = {s: m for s, m in dataset.drives.items() if s in surviving}
    tickets = [t for t in dataset.tickets if t.serial in surviving]
    repaired = TelemetryDataset(columns, drives, tickets)
    report = PreprocessReport(
        n_input_rows=n,
        n_output_rows=repaired.n_records,
        n_rows_dropped=n_dropped,
        n_rows_filled=total_new,
        n_drives_dropped=dataset.n_drives - len(drives),
    )
    return repaired, report


def preprocess(
    dataset: TelemetryDataset,
    max_gap: int = 10,
    fill_gap: int = 3,
    min_segment_records: int = 5,
) -> tuple[TelemetryDataset, PreprocessReport, LabelEncoder]:
    """Full §III-C(1) stage: repair -> accumulate events -> encode firmware.

    Rejects non-finite telemetry up front: a NaN that slipped through a
    collector would otherwise poison means and model training far from
    its source.
    """
    for name, values in dataset.columns.items():
        if values.dtype != object and not np.all(np.isfinite(values)):
            raise ValueError(f"column {name!r} contains NaN or infinite values")
    repaired, report = repair_discontinuity(
        dataset, max_gap=max_gap, fill_gap=fill_gap, min_segment_records=min_segment_records
    )
    accumulated = accumulate_events(repaired)
    encoded, encoder = encode_firmware(accumulated)
    return encoded, report, encoder
