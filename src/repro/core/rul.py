"""Remaining-useful-life (RUL) estimation (extension).

MFPA answers "will this drive fail soon?"; an after-sales planner also
wants "*how* soon?" — it decides whether to ship a replacement
overnight or with the next batch. This extension regresses
days-until-failure from the same SFWB features:

* training targets: for faulty drives, days between each pre-failure
  record and the identified failure time, capped at ``horizon_days``;
  healthy-drive records all carry the cap (they are "at least horizon
  away" — a standard censored-target approximation);
* the regressor is a bagged CART forest; evaluation reports MAE over
  faulty test drives' true countdowns plus the rank correlation between
  predicted and true urgency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.features import FeatureAssembler, feature_group
from repro.core.labeling import FailureTimeIdentifier
from repro.core.preprocess import preprocess
from repro.ml.forest import RandomForestRegressor
from repro.telemetry.dataset import TelemetryDataset


@dataclass
class RULConfig:
    """Configuration for the RUL regressor."""

    feature_group_name: str = "SFWB"
    horizon_days: int = 45
    """Cap on the countdown target; records farther than this from a
    failure (and all healthy records) train with this value."""
    theta: int = 7
    observation_window: int = 45
    """Faulty drives contribute records within this window before
    failure (matching the horizon keeps targets balanced)."""
    healthy_sample_per_positive: float = 2.0
    n_estimators: int = 40
    max_depth: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon_days < 7:
            raise ValueError("horizon_days must be at least 7")
        feature_group(self.feature_group_name)


@dataclass(frozen=True)
class RULEvaluation:
    """Error metrics over faulty test drives."""

    mae_days: float
    within_7_days: float
    """Fraction of predictions within +-7 days of the true countdown."""
    spearman: float
    n_records: int


class RULRegressor:
    """Days-until-failure regressor over the prepared telemetry."""

    def __init__(self, config: RULConfig | None = None):
        self.config = config or RULConfig()

    # ------------------------------------------------------------------
    def _targets(
        self, prepared: TelemetryDataset, failure_times: dict[int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row indices and countdown targets for every usable record."""
        serial = prepared.columns["serial"]
        day = prepared.columns["day"]
        n = serial.shape[0]
        targets = np.full(n, float(self.config.horizon_days))
        usable = np.zeros(n, dtype=bool)

        faulty_serials = np.array(sorted(failure_times), dtype=np.int64)
        faulty_days = np.array([failure_times[s] for s in faulty_serials])
        position = np.searchsorted(faulty_serials, serial)
        position = np.minimum(position, faulty_serials.size - 1)
        is_faulty = (
            faulty_serials.size > 0
        ) & (faulty_serials[position] == serial)
        countdown = faulty_days[position] - day
        in_window = (
            is_faulty
            & (countdown >= 0)
            & (countdown <= self.config.observation_window)
        )
        targets[in_window] = np.minimum(
            countdown[in_window], self.config.horizon_days
        )
        usable |= in_window
        healthy_rows = np.flatnonzero(~is_faulty)
        rng = np.random.default_rng(self.config.seed)
        n_healthy = int(
            round(self.config.healthy_sample_per_positive * in_window.sum())
        )
        if healthy_rows.size > n_healthy:
            healthy_rows = rng.choice(healthy_rows, size=n_healthy, replace=False)
        usable[healthy_rows] = True
        rows = np.flatnonzero(usable)
        return rows, targets[rows]

    def fit(self, dataset: TelemetryDataset, train_end_day: int) -> "RULRegressor":
        config = self.config
        prepared, _, _ = preprocess(dataset)
        self.dataset_ = prepared
        self.failure_times_ = FailureTimeIdentifier(config.theta).identify(prepared)

        rows, targets = self._targets(prepared, self.failure_times_)
        in_training = prepared.columns["day"][rows] < train_end_day
        # Exclude post-cutoff failures' windows entirely.
        late = np.array(
            [
                self.failure_times_.get(int(s), -1) >= train_end_day
                for s in prepared.columns["serial"][rows]
            ]
        )
        keep = in_training & ~late
        rows, targets = rows[keep], targets[keep]
        if rows.size == 0 or np.all(targets == config.horizon_days):
            raise ValueError("no pre-failure records in the training window")

        self.assembler_ = FeatureAssembler(
            feature_group(config.feature_group_name).columns
        )
        X = self.assembler_.assemble(prepared.columns, rows)
        self.model_ = RandomForestRegressor(
            n_estimators=config.n_estimators,
            max_depth=config.max_depth,
            seed=config.seed,
        )
        self.model_.fit(X, targets)
        self.train_end_day_ = train_end_day
        return self

    def predict_rows(self, row_indices: np.ndarray) -> np.ndarray:
        """Predicted days-to-failure (capped) for prepared-dataset rows."""
        if not hasattr(self, "model_"):
            raise RuntimeError("RULRegressor is not fitted yet")
        X = self.assembler_.assemble(self.dataset_.columns, np.asarray(row_indices))
        return np.clip(self.model_.predict(X), 0.0, float(self.config.horizon_days))

    # ------------------------------------------------------------------
    def evaluate(self, start_day: int, end_day: int) -> RULEvaluation:
        """Countdown accuracy over faulty drives failing in the period."""
        prepared = self.dataset_
        row_slices = prepared._row_slices()
        rows_list, truths_list = [], []
        for serial, failure_time in self.failure_times_.items():
            if not start_day <= failure_time < end_day:
                continue
            days = prepared.drive_rows(serial)["day"]
            in_window = (days >= failure_time - self.config.observation_window) & (
                days <= failure_time
            )
            if not np.any(in_window):
                continue
            base = row_slices[serial].start
            rows_list.append(base + np.flatnonzero(in_window))
            truths_list.append(failure_time - days[in_window])
        if not rows_list:
            raise ValueError(f"no failures to evaluate in [{start_day}, {end_day})")

        rows = np.concatenate(rows_list)
        truths = np.concatenate(truths_list).astype(float)
        predictions = self.predict_rows(rows)
        errors = np.abs(predictions - truths)
        if np.unique(truths).size > 1 and np.unique(predictions).size > 1:
            spearman = float(stats.spearmanr(predictions, truths).statistic)
        else:
            spearman = float("nan")
        return RULEvaluation(
            mae_days=float(errors.mean()),
            within_7_days=float(np.mean(errors <= 7.0)),
            spearman=spearman,
            n_records=int(rows.size),
        )
