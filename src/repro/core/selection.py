"""Sequential forward feature selection (Whitney 1971), §III-C(5).

Not every column of a feature group correlates with failure (the paper
calls out *Available Spare Threshold* as dead weight). Starting from an
empty set, the selector greedily adds the feature whose inclusion most
improves the cross-validated score, stopping when no candidate improves
it by more than a tolerance.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ml.base import BaseClassifier, clone
from repro.ml.metrics import accuracy, false_positive_rate, true_positive_rate
from repro.ml.model_selection import cross_val_score


def youden_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TPR - FPR: the balanced objective MFPA's selection optimizes.

    Accuracy is useless under heavy class imbalance; Youden's J rewards
    catching failures and penalizes false alarms symmetrically. NaN
    components (a fold without positives) contribute 0.
    """
    tpr = true_positive_rate(y_true, y_pred)
    fpr = false_positive_rate(y_true, y_pred)
    if np.isnan(tpr):
        tpr = 0.0
    if np.isnan(fpr):
        fpr = 0.0
    return tpr - fpr


class SequentialForwardSelector:
    """Greedy forward selection over feature columns.

    Parameters
    ----------
    estimator:
        Prototype model, cloned for every candidate evaluation.
    splitter:
        CV splitter (typically the MFPA time-series CV).
    scoring:
        ``scoring(y_true, y_pred) -> float``, higher is better.
    max_features:
        Optional cap on the selected subset size.
    tolerance:
        Minimum score improvement to accept another feature.
    """

    def __init__(
        self,
        estimator: BaseClassifier,
        splitter,
        scoring: Callable[[np.ndarray, np.ndarray], float] = accuracy,
        max_features: int | None = None,
        tolerance: float = 1e-4,
    ):
        if max_features is not None and max_features < 1:
            raise ValueError("max_features must be at least 1")
        self.estimator = estimator
        self.splitter = splitter
        self.scoring = scoring
        self.max_features = max_features
        self.tolerance = tolerance

    def select(self, X: np.ndarray, y: np.ndarray) -> list[int]:
        """Return the selected column indices, in selection order.

        Also records the score trajectory in ``self.history_`` as
        ``[(added_column, score_after_adding), ...]`` — the data behind
        the paper's Fig 17 improvement curve.
        """
        X = np.asarray(X)
        y = np.asarray(y)
        n_features = X.shape[1]
        remaining = list(range(n_features))
        selected: list[int] = []
        best_score = -np.inf
        self.history_: list[tuple[int, float]] = []

        limit = self.max_features or n_features
        while remaining and len(selected) < limit:
            round_best_score = -np.inf
            round_best_feature = None
            for feature in remaining:
                candidate = selected + [feature]
                scores = cross_val_score(
                    clone(self.estimator),
                    X[:, candidate],
                    y,
                    self.splitter,
                    self.scoring,
                )
                mean_score = float(np.mean(scores))
                if mean_score > round_best_score:
                    round_best_score = mean_score
                    round_best_feature = feature
            if round_best_feature is None:
                break
            if round_best_score <= best_score + self.tolerance and selected:
                break
            selected.append(round_best_feature)
            remaining.remove(round_best_feature)
            best_score = round_best_score
            self.history_.append((round_best_feature, round_best_score))
        self.selected_ = selected
        self.best_score_ = best_score
        return selected
