"""Sequential forward feature selection (Whitney 1971), §III-C(5).

Not every column of a feature group correlates with failure (the paper
calls out *Available Spare Threshold* as dead weight). Starting from an
empty set, the selector greedily adds the feature whose inclusion most
improves the cross-validated score, stopping when no candidate improves
it by more than a tolerance.

Each selection round evaluates every remaining candidate column
independently — an embarrassingly parallel inner loop that fans out over
:class:`repro.parallel.ParallelExecutor` when ``n_jobs > 1``. The CV
folds are computed once up front and shared with the workers alongside
the feature matrix, so a round costs one fork instead of
O(candidates × folds) dataset pickles.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.ml.base import BaseClassifier, clone
from repro.ml.binning import get_binned
from repro.ml.metrics import accuracy, false_positive_rate, true_positive_rate
from repro.ml.model_selection import mean_defined_score
from repro.obs import inc_counter, observe_histogram, trace_span
from repro.parallel import ParallelExecutor, SharedPayload, share


def youden_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TPR - FPR: the balanced objective MFPA's selection optimizes.

    Accuracy is useless under heavy class imbalance; Youden's J rewards
    catching failures and penalizes false alarms symmetrically. On a
    single-class fold (no positives, or no negatives) the score is
    undefined and NaN is returned so aggregation can *skip* the fold —
    zeroing it instead would drag a good feature's mean toward 0 and
    stall forward selection on sparse-failure data.
    """
    tpr = true_positive_rate(y_true, y_pred)
    fpr = false_positive_rate(y_true, y_pred)
    if np.isnan(tpr) or np.isnan(fpr):
        return float("nan")
    return tpr - fpr


def _score_candidate(
    data: SharedPayload,
    estimator: BaseClassifier,
    columns: list[int],
    scoring: Callable[[np.ndarray, np.ndarray], float],
) -> float:
    """Cross-validated mean score of one candidate column subset."""
    started = time.perf_counter()
    with trace_span("selection.score_candidate"):
        X, y, folds, fold_binned = data.get()
        X_candidate = X[:, columns]
        scores = []
        for fold, (train_indices, validation_indices) in enumerate(folds):
            model = clone(estimator)
            if fold_binned is not None:
                # Column-subset view of the fold's shared binned dataset:
                # candidate evaluation never re-bins anything.
                model.fit(
                    X_candidate[train_indices],
                    y[train_indices],
                    binned=fold_binned[fold].column_view(columns),
                )
            else:
                model.fit(X_candidate[train_indices], y[train_indices])
            predictions = model.predict(X_candidate[validation_indices])
            scores.append(float(scoring(y[validation_indices], predictions)))
    observe_histogram("selection_candidate_seconds", time.perf_counter() - started)
    return mean_defined_score(scores)


class SequentialForwardSelector:
    """Greedy forward selection over feature columns.

    Parameters
    ----------
    estimator:
        Prototype model, cloned for every candidate evaluation.
    splitter:
        CV splitter (typically the MFPA time-series CV).
    scoring:
        ``scoring(y_true, y_pred) -> float``, higher is better. Folds
        scoring NaN (undefined, e.g. :func:`youden_score` without
        positives) are skipped in the per-candidate mean.
    max_features:
        Optional cap on the selected subset size.
    tolerance:
        Minimum score improvement to accept another feature.
    n_jobs:
        Worker processes for the per-round candidate evaluations; any
        value selects the same features in the same order.
    """

    def __init__(
        self,
        estimator: BaseClassifier,
        splitter,
        scoring: Callable[[np.ndarray, np.ndarray], float] = accuracy,
        max_features: int | None = None,
        tolerance: float = 1e-4,
        n_jobs: int = 1,
    ):
        if max_features is not None and max_features < 1:
            raise ValueError("max_features must be at least 1")
        self.estimator = estimator
        self.splitter = splitter
        self.scoring = scoring
        self.max_features = max_features
        self.tolerance = tolerance
        self.n_jobs = n_jobs

    def select(self, X: np.ndarray, y: np.ndarray) -> list[int]:
        """Return the selected column indices, in selection order.

        Also records the score trajectory in ``self.history_`` as
        ``[(added_column, score_after_adding), ...]`` — the data behind
        the paper's Fig 17 improvement curve.
        """
        X = np.asarray(X)
        y = np.asarray(y)
        n_features = X.shape[1]
        remaining = list(range(n_features))
        selected: list[int] = []
        best_score = -np.inf
        self.history_: list[tuple[int, float]] = []

        # The fold geometry depends only on the row count (and days), not
        # on which columns a candidate uses — compute it once.
        folds = list(self.splitter.split(X, y))
        executor = ParallelExecutor(self.n_jobs)

        # With a hist estimator, bin each train fold once up front; every
        # candidate subset in every round is a column view of these.
        if getattr(self.estimator, "split_algorithm", "exact") == "hist":
            fold_binned = tuple(get_binned(X, train) for train, _ in folds)
        else:
            fold_binned = None

        limit = self.max_features or n_features
        with share((X, y, folds, fold_binned)) as data:
            while remaining and len(selected) < limit:
                inc_counter("mfpa_selection_rounds_total")
                inc_counter("mfpa_selection_candidate_fits_total", len(remaining))
                with trace_span("selection.round"):
                    candidate_scores = executor.starmap(
                        _score_candidate,
                        [
                            (data, self.estimator, selected + [feature], self.scoring)
                            for feature in remaining
                        ],
                    )
                round_best_score = -np.inf
                round_best_feature = None
                for feature, mean_score in zip(remaining, candidate_scores):
                    if mean_score > round_best_score:
                        round_best_score = mean_score
                        round_best_feature = feature
                if round_best_feature is None:
                    break
                if round_best_score <= best_score + self.tolerance and selected:
                    break
                selected.append(round_best_feature)
                remaining.remove(round_best_feature)
                best_score = round_best_score
                self.history_.append((round_best_feature, round_best_score))
        self.selected_ = selected
        self.best_score_ = best_score
        return selected
