"""Stage 3 of MFPA: time-series-aware segmentation and CV (§III-C(3), Fig 8).

Random train/test splits let a model peek at the future: training rows
can postdate test rows, inflating offline scores that collapse in
deployment. MFPA replaces both the train/test split and the k-fold CV
with chronological versions:

* **Timepoint-based segmentation** (Fig 8a): inside the study time
  window TW, everything before the learning-window boundary LW is
  training data, everything after is test data.
* **Time-series cross-validation** (Fig 8b): the training rows are cut
  into ``2k`` chronological subsets; iteration ``i`` trains on subsets
  ``i .. i+k-1`` and validates on subset ``i+k``, so validation data is
  always strictly newer than training data.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.labeling import SampleSet


class TimepointSplit:
    """Chronological train/test segmentation (Fig 8a-(2)).

    Parameters
    ----------
    split_day:
        Records with ``day < split_day`` form the training set (the
        learning window LW); the rest form the test set.
    """

    def __init__(self, split_day: int):
        self.split_day = split_day

    def split(self, samples: SampleSet) -> tuple[SampleSet, SampleSet]:
        """Return ``(train, test)`` sample sets."""
        train_mask = samples.days < self.split_day
        train = samples.subset(np.flatnonzero(train_mask))
        test = samples.subset(np.flatnonzero(~train_mask))
        return train, test

    @staticmethod
    def random_split(
        samples: SampleSet, train_fraction: float = 0.9, seed: int = 0
    ) -> tuple[SampleSet, SampleSet]:
        """The naive shuffled split of Fig 8a-(1) — kept as the ablation
        strawman; it leaks future records into training."""
        if not 0 < train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(samples.n_samples)
        cut = int(round(train_fraction * samples.n_samples))
        return samples.subset(order[:cut]), samples.subset(order[cut:])


class TimeSeriesCrossValidator:
    """Forward-chaining CV over chronologically sorted rows (Fig 8b-(2)).

    The rows are divided into ``2k`` chronological subsets; fold ``i``
    trains on the ``k`` consecutive subsets starting at ``i`` and
    validates on subset ``i + k``. Rows must already be in chronological
    order — :meth:`SampleSet.sorted_by_day` provides it.

    The whole point of this class is that validation data is strictly
    newer than training data, and that guarantee is silently void if a
    caller passes unsorted rows. Supplying the per-row ``days`` array
    turns the assumption into a checked invariant: :meth:`split` raises
    ``ValueError`` on non-monotonic input instead of leaking the future
    into the training folds.
    """

    def __init__(self, k: int = 3, days: np.ndarray | None = None):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.days = None if days is None else np.asarray(days)
        if self.days is not None and self.days.ndim != 1:
            raise ValueError("days must be a 1-D per-row array")

    @property
    def n_splits(self) -> int:
        return self.k

    def split(
        self, X: np.ndarray, y: np.ndarray | None = None
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, validation_indices)`` per fold."""
        n_samples = np.asarray(X).shape[0]
        if self.days is not None:
            if self.days.shape[0] != n_samples:
                raise ValueError(
                    f"days has {self.days.shape[0]} entries for {n_samples} rows"
                )
            if np.any(np.diff(self.days) < 0):
                raise ValueError(
                    "rows are not in chronological order; sort by day before "
                    "time-series cross-validation (future data would leak "
                    "into the training folds)"
                )
        n_subsets = 2 * self.k
        if n_samples < n_subsets:
            raise ValueError(
                f"need at least {n_subsets} rows for k={self.k}, got {n_samples}"
            )
        subsets = np.array_split(np.arange(n_samples), n_subsets)
        for i in range(self.k):
            train = np.concatenate(subsets[i : i + self.k])
            validation = subsets[i + self.k]
            yield train, validation
