"""Decision-threshold tuning: cost-sensitive and budget-constrained.

The paper motivates low FPR operationally: every false alarm triggers
"additional data migration, unnecessary service interruption, and
latent economic losses", while every miss risks consumer data loss with
recovery costing "even several times the price of the SSD" (§I-II).
This module turns that trade-off into threshold selection — an
extension in the spirit of the authors' cost-sensitive follow-up work
(CSLE, DATE 2022 [24]):

* :func:`tune_threshold_youden` — maximize TPR - FPR;
* :func:`tune_threshold_fpr_budget` — maximize TPR subject to an FPR
  ceiling (e.g. the paper's 0.56%);
* :func:`tune_threshold_cost` — minimize expected fleet cost under a
  :class:`CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import roc_curve


@dataclass(frozen=True)
class CostModel:
    """Dollar(-equivalent) costs of each outcome.

    Parameters
    ----------
    miss_cost:
        Cost of an undetected failure (data loss, recovery service —
        the paper cites recovery at several times the SSD price).
    false_alarm_cost:
        Cost of flagging a healthy drive (backup/migration time,
        warranty handling, user interruption).
    true_alarm_benefit:
        Optional credit for a caught failure (avoided downtime); kept
        separate from ``miss_cost`` so both accountings are expressible.
    """

    miss_cost: float = 600.0
    false_alarm_cost: float = 40.0
    true_alarm_benefit: float = 0.0

    def __post_init__(self) -> None:
        if self.miss_cost < 0 or self.false_alarm_cost < 0:
            raise ValueError("costs must be non-negative")

    def expected_cost(self, tp: int, fp: int, fn: int, tn: int) -> float:
        """Total cost of a confusion-matrix outcome."""
        return (
            fn * self.miss_cost
            + fp * self.false_alarm_cost
            - tp * self.true_alarm_benefit
        )


@dataclass(frozen=True)
class ThresholdChoice:
    """A tuned threshold and the operating point it achieves."""

    threshold: float
    tpr: float
    fpr: float
    objective_value: float


def _operating_points(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC sweep -> (fpr, tpr, thresholds), dropping the +inf anchor."""
    fpr, tpr, thresholds = roc_curve(np.asarray(y_true), np.asarray(scores))
    return fpr[1:], tpr[1:], thresholds[1:]


def tune_threshold_youden(y_true: np.ndarray, scores: np.ndarray) -> ThresholdChoice:
    """Maximize Youden's J = TPR - FPR over all score thresholds."""
    fpr, tpr, thresholds = _operating_points(y_true, scores)
    j = tpr - fpr
    best = int(np.argmax(j))
    return ThresholdChoice(
        threshold=float(thresholds[best]),
        tpr=float(tpr[best]),
        fpr=float(fpr[best]),
        objective_value=float(j[best]),
    )


def tune_threshold_fpr_budget(
    y_true: np.ndarray, scores: np.ndarray, max_fpr: float = 0.0056
) -> ThresholdChoice:
    """Maximize TPR subject to FPR <= ``max_fpr``.

    Defaults to the paper's headline 0.56% FPR. Raises if even the
    strictest threshold exceeds the budget.
    """
    if not 0 <= max_fpr <= 1:
        raise ValueError("max_fpr must be in [0, 1]")
    fpr, tpr, thresholds = _operating_points(y_true, scores)
    feasible = np.flatnonzero(fpr <= max_fpr)
    if feasible.size == 0:
        raise ValueError(f"no threshold satisfies FPR <= {max_fpr}")
    # Among TPR ties take the *lowest* feasible threshold: it spends the
    # remaining FPR budget on robustness, so mild test-time score drift
    # does not silently drop true positives below the cut.
    best_tpr = tpr[feasible].max()
    best = feasible[tpr[feasible] >= best_tpr][-1]
    return ThresholdChoice(
        threshold=float(thresholds[best]),
        tpr=float(tpr[best]),
        fpr=float(fpr[best]),
        objective_value=float(tpr[best]),
    )


def tune_threshold_cost(
    y_true: np.ndarray, scores: np.ndarray, cost_model: CostModel | None = None
) -> ThresholdChoice:
    """Minimize expected cost under a :class:`CostModel`."""
    cost_model = cost_model or CostModel()
    y_true = np.asarray(y_true)
    n_positive = int(np.sum(y_true == 1))
    n_negative = y_true.size - n_positive
    fpr, tpr, thresholds = _operating_points(y_true, scores)
    tp = tpr * n_positive
    fp = fpr * n_negative
    fn = n_positive - tp
    costs = (
        fn * cost_model.miss_cost
        + fp * cost_model.false_alarm_cost
        - tp * cost_model.true_alarm_benefit
    )
    best = int(np.argmin(costs))
    return ThresholdChoice(
        threshold=float(thresholds[best]),
        tpr=float(tpr[best]),
        fpr=float(fpr[best]),
        objective_value=float(costs[best]),
    )
