"""Cross-vendor transfer for data-starved vendors (extension).

The paper finds vendor IV's model weak because it has the fewest faulty
drives (§IV-(4)), and cites transfer learning for minority-disk
prediction [20] as the established remedy. This module implements a
pragmatic instance-transfer scheme:

1. train a *source* MFPA on a data-rich vendor,
2. train a *target* MFPA on the minority vendor's own (scarce) data,
3. blend their scores, choosing the mixing weight α on the target's
   own validation window (time-ordered, no future leakage).

The result is an :class:`MFPA`-compatible scorer, so all evaluation
utilities work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import MFPA, EvaluationResult, MFPAConfig
from repro.ml.metrics import auc_score
from repro.telemetry.dataset import TelemetryDataset


@dataclass
class TransferResult:
    """Outcome of a transfer fit: the blend and its ingredients."""

    alpha: float
    source_auc: float
    target_auc: float
    blended_auc: float


class TransferredMFPA:
    """Score blend of a source-vendor and a target-vendor MFPA.

    ``predict_proba_rows`` and ``evaluate`` mirror :class:`MFPA` so the
    blended model drops into existing evaluation code. The blend is
    ``alpha * target + (1 - alpha) * source`` where both models score
    the *target* fleet's prepared rows.
    """

    def __init__(self, config: MFPAConfig | None = None):
        self.config = config or MFPAConfig()

    def fit(
        self,
        source_dataset: TelemetryDataset,
        target_dataset: TelemetryDataset,
        train_end_day: int,
        validation_days: int = 60,
        alphas: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    ) -> "TransferredMFPA":
        """Fit source/target models and tune the blend weight.

        Both models train on data before ``train_end_day -
        validation_days``; α is chosen by record-level AUC on the
        held-out validation slice of the *target* fleet, keeping the
        tuning strictly earlier than any later evaluation window.
        """
        if validation_days < 7:
            raise ValueError("validation_days must be at least 7")
        fit_end = train_end_day - validation_days
        self.source_model = MFPA(self.config)
        self.source_model.fit(source_dataset, train_end_day=fit_end)
        self.target_model = MFPA(self.config)
        self.target_model.fit(target_dataset, train_end_day=fit_end)

        # Validation rows: target-fleet records in the held-out slice.
        validation = self._validation_rows(fit_end, train_end_day)
        if validation is None:
            # No failures in the validation slice -> fall back to an
            # even blend; scarce-data vendors hit this regularly.
            self.alpha = 0.5
            self.result_ = TransferResult(0.5, float("nan"), float("nan"), float("nan"))
            return self

        rows, labels = validation
        source_scores = self._source_scores(rows)
        target_scores = self.target_model.predict_proba_rows(rows)
        source_auc = auc_score(labels, source_scores)
        target_auc = auc_score(labels, target_scores)
        best_alpha, best_auc = 0.5, -np.inf
        for alpha in alphas:
            blended = alpha * target_scores + (1 - alpha) * source_scores
            area = auc_score(labels, blended)
            if area > best_auc:
                best_auc = area
                best_alpha = alpha
        self.alpha = best_alpha
        self.result_ = TransferResult(
            alpha=best_alpha,
            source_auc=float(source_auc),
            target_auc=float(target_auc),
            blended_auc=float(best_auc),
        )
        return self

    def _validation_rows(
        self, start_day: int, end_day: int
    ) -> tuple[np.ndarray, np.ndarray] | None:
        from repro.core.labeling import build_samples

        target = self.target_model
        samples = build_samples(
            target.dataset_,
            target.failure_times_,
            positive_window=self.config.positive_window,
        )
        in_slice = (samples.days >= start_day) & (samples.days < end_day)
        rows = samples.row_indices[in_slice]
        labels = samples.labels[in_slice]
        if np.sum(labels == 1) == 0 or np.sum(labels == 0) == 0:
            return None
        return rows, labels

    def _source_scores(self, row_indices: np.ndarray) -> np.ndarray:
        """Score target-fleet rows with the source model's estimator."""
        X = self.source_model.assembler_.assemble(
            self.target_model.dataset_.columns, np.asarray(row_indices)
        )
        return self.source_model.model_.predict_proba(X)[:, 1]

    # ------------------------------------------------------------------
    def predict_proba_rows(self, row_indices: np.ndarray) -> np.ndarray:
        if not hasattr(self, "alpha"):
            raise RuntimeError("TransferredMFPA is not fitted yet")
        target_scores = self.target_model.predict_proba_rows(row_indices)
        source_scores = self._source_scores(row_indices)
        return self.alpha * target_scores + (1 - self.alpha) * source_scores

    def evaluate(self, start_day: int, end_day: int) -> EvaluationResult:
        """Drive-level evaluation on the target fleet (MFPA semantics).

        Reuses MFPA's evaluation by temporarily installing the blend as
        the target pipeline's scorer. The blend closes over the
        *class-level* scorer so the target model's own probabilities —
        not the patched attribute — feed the mix.
        """
        if not hasattr(self, "alpha"):
            raise RuntimeError("TransferredMFPA is not fitted yet")
        target = self.target_model
        original = MFPA.predict_proba_rows.__get__(target)

        def blended(row_indices: np.ndarray) -> np.ndarray:
            target_scores = original(row_indices)
            source_scores = self._source_scores(row_indices)
            return self.alpha * target_scores + (1 - self.alpha) * source_scores

        target.predict_proba_rows = blended  # type: ignore[method-assign]
        try:
            return target.evaluate(start_day, end_day)
        finally:
            del target.predict_proba_rows
