"""From-scratch machine-learning substrate used by the MFPA pipeline.

The offline reproduction environment has no scikit-learn, so this package
implements the estimators the paper evaluates (Bayes, SVM, RF, GBDT,
CNN_LSTM), plus the preprocessing and model-selection utilities MFPA
depends on. The public API deliberately mirrors the familiar
``fit`` / ``predict`` / ``predict_proba`` conventions so the pipeline code
reads like any other ML codebase.
"""

from repro.ml.base import BaseClassifier, clone
from repro.ml.calibration import PlattCalibrator, reliability_curve
from repro.ml.encoding import LabelEncoder, MinMaxScaler, StandardScaler
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.ensemble import VotingClassifier
from repro.ml.isolation_forest import IsolationForest
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    ClassificationReport,
    accuracy,
    auc_score,
    classification_report,
    confusion_matrix,
    false_positive_rate,
    positive_detection_rate,
    roc_curve,
    true_positive_rate,
)
from repro.ml.model_selection import GridSearchCV, ParameterGrid
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.nn.cnn_lstm import CNNLSTMClassifier
from repro.ml.nn.lstm_classifier import LSTMClassifier
from repro.ml.resampling import RandomUnderSampler
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "BaseClassifier",
    "CNNLSTMClassifier",
    "ClassificationReport",
    "DecisionTreeClassifier",
    "GaussianNaiveBayes",
    "GradientBoostingClassifier",
    "GridSearchCV",
    "IsolationForest",
    "LSTMClassifier",
    "LabelEncoder",
    "LinearSVM",
    "LogisticRegression",
    "MinMaxScaler",
    "ParameterGrid",
    "PlattCalibrator",
    "RandomForestClassifier",
    "RandomUnderSampler",
    "StandardScaler",
    "VotingClassifier",
    "accuracy",
    "auc_score",
    "classification_report",
    "clone",
    "confusion_matrix",
    "false_positive_rate",
    "positive_detection_rate",
    "reliability_curve",
    "roc_curve",
    "true_positive_rate",
]
