"""Packed multi-tree prediction arena — the inference fast path.

A fitted forest/GBDT predicts by descending each tree independently:
``T`` Python-level loops, each re-gathering rows and re-validating the
batch.  :class:`ForestArena` packs *all* trees of an ensemble into one
contiguous node-array set (``feature``/``threshold``/``child``/
``values`` plus per-tree root offsets) so a whole batch descends every
tree at once: the working state is a single flat array of
``rows × trees`` lanes updated by vectorized gathers, and leaves
self-loop (``child[2n] == child[2n+1] == n``) so finished lanes idle
harmlessly while deep lanes keep walking.

Two engines share the packed layout:

* **binned** (default) — each feature gets a sorted *code table*: the
  PR-5 training bin edges (when the model was hist-trained or an
  artifact supplies a bin-edge snapshot) refined with every node
  threshold the ensemble actually splits on.  Rows are encoded once
  (``searchsorted(table, v, side="left")``) and each node compares
  codes against its pre-quantized code threshold.
  Because every threshold is *in* its table,
  ``code(v) <= code(t)  ⟺  v <= t`` exactly — integer compares decide
  every split bit-identically to the float engine, with no per-node
  fallback path.
* **float** — compares raw feature values against the stored float
  thresholds, exactly the comparisons the per-tree loops make, just
  batched.  Used when a code table cannot be built (pathological
  threshold cardinality) or when forced via
  :func:`set_inference_mode`.

Inference-time NaN policy (see ``_Tree.predict_value``): ``NaN <= t``
is False, so missing values route RIGHT in the float engine; the
reserved NaN code (``table.size + 1``) sorts above every code
threshold, so the binned engine routes the same rows right — and the
comparison is a deterministic integer compare, not a NaN-poisoned
float one.

Aggregation preserves the seed's float accumulation order (a
sequential per-tree loop, never a pairwise ``np.sum`` over the tree
axis) so ensemble probabilities — not just alarms — stay bit-identical
at any engine and any row chunking.
"""

from __future__ import annotations

import time

import numpy as np

from repro.ml.tree import _NO_SPLIT, _Tree
from repro.obs import inc_counter, observe_histogram

__all__ = [
    "ForestArena",
    "cached_arena",
    "exact_mode",
    "get_inference_mode",
    "set_inference_mode",
]

_MODES = ("auto", "exact", "float", "binned")
_inference_mode = "auto"

#: Lane budget per descent chunk: each step materializes a handful of
#: per-lane temporaries (~8 bytes/lane each), so chunking rows keeps
#: peak memory flat for million-row batches.
_MAX_LANES = 1 << 22

#: Per-feature code-table ceiling. The leaf sentinel cut (0xFFFF) must
#: exceed every real code (and the NaN code ``table.size + 1``); a
#: feature split on more distinct thresholds than this (pathological)
#: sends the arena to the float engine instead.
_MAX_TABLE = 65000


def set_inference_mode(mode: str) -> str:
    """Select the prediction engine; returns the previous mode.

    ``auto`` (default) uses the binned engine whenever the ensemble's
    code tables exist and the float arena otherwise; ``exact`` restores
    the seed's per-tree descent loops (the escape hatch the parity
    gates diff against); ``float``/``binned`` force one arena engine.
    """
    global _inference_mode
    if mode not in _MODES:
        raise ValueError(f"unknown inference mode {mode!r}; choose from {_MODES}")
    previous = _inference_mode
    _inference_mode = mode
    return previous


def get_inference_mode() -> str:
    return _inference_mode


def exact_mode() -> bool:
    """Whether callers should bypass the arena entirely."""
    return _inference_mode == "exact"


def cached_arena(model, build) -> "ForestArena":
    """Return the model's arena, building (and caching) it on first use.

    ``fit`` resets ``model._arena_`` to None, so refits rebuild; models
    unpickled from pre-arena checkpoints lack the attribute and build
    lazily.  Bin edges stashed by hist training (``model.bin_edges_``)
    seed the code tables when present.
    """
    arena = model.__dict__.get("_arena_")
    if arena is None:
        arena = build()
        arena.build_code_tables(getattr(model, "bin_edges_", None))
        model._arena_ = arena
    return arena


class ForestArena:
    """All trees of one ensemble packed into contiguous node arrays."""

    def __init__(self, feature, threshold, child, values, roots,
                 n_features: int, max_depth: int = 0):
        self.feature = feature
        self.threshold = threshold
        #: Interleaved children: ``child[2n]`` = left, ``child[2n+1]`` =
        #: right; leaves point both slots at themselves, so a lane that
        #: reached its leaf stays put whichever way its (discarded)
        #: comparison went — including the NaN-compares-False case.
        self.child = child
        self.values = values
        self.roots = roots
        self.n_features = int(n_features)
        self.max_depth = int(max_depth)
        self.is_split = feature != _NO_SPLIT
        # Leaves gather feature 0 (any valid column) — their comparison
        # result is discarded because they self-loop.
        self.gather_feature = np.where(self.is_split, feature, 0)
        self.code_tables = None
        self.code_cut = None
        self.base = None

    # ---------------------------------------------------------- build

    @staticmethod
    def _sibling_order(feature_arr, left_arr, right_arr):
        """BFS permutation placing every split's children adjacently.

        Returns ``(order, new_pos, depth)`` — new-id → old-id, its
        inverse, and the tree's leaf depth (BFS level count).  After
        permutation ``right == left + 1`` for every split node, which
        lets the binned walk address both children off one base index
        (``next = base + went_right``).
        """
        n = feature_arr.size
        order = np.zeros(n, dtype=np.int64)
        new_pos = np.zeros(n, dtype=np.int64)
        next_id = 1
        depth = 0
        frontier = np.zeros(1, dtype=np.int64)  # root is old id 0
        while frontier.size:
            parents = frontier[feature_arr[frontier] != _NO_SPLIT]
            if parents.size == 0:
                break
            depth += 1
            children = np.empty(2 * parents.size, dtype=np.int64)
            children[0::2] = left_arr[parents]
            children[1::2] = right_arr[parents]
            ids = next_id + np.arange(children.size, dtype=np.int64)
            order[ids] = children
            new_pos[children] = ids
            next_id += children.size
            frontier = children
        return order, new_pos, depth

    @classmethod
    def from_trees(cls, trees: list[_Tree], n_features: int,
                   n_outputs: int | None = None,
                   tree_columns=None) -> "ForestArena":
        """Pack finalized ``_Tree`` objects into one arena.

        Nodes are re-ordered breadth-first per tree (see
        :meth:`_sibling_order`) — prediction only cares about the graph,
        not the growth order, and the sibling-adjacent layout is what
        the packed binned walk relies on.

        ``tree_columns`` maps each tree's local output columns onto the
        ensemble's (forests bootstrap, so member trees can know fewer
        classes); leaf values land zero-padded on the ensemble columns,
        which leaves the per-tree accumulation floats untouched
        (``x + 0.0 == x``).
        """
        for tree in trees:
            if getattr(tree, "feature_arr", None) is None:
                tree.finalize()
        counts = np.array([tree.feature_arr.size for tree in trees],
                          dtype=np.int64)
        offsets = np.zeros(len(trees), dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        total = int(counts.sum())
        if n_outputs is None:
            n_outputs = trees[0].value_arr.shape[1]
        feature = np.empty(total, dtype=np.int64)
        threshold = np.empty(total, dtype=float)
        child = np.empty(2 * total, dtype=np.int64)
        values = np.zeros((total, n_outputs))
        max_depth = 0
        for i, tree in enumerate(trees):
            offset = offsets[i]
            span = slice(offset, offset + counts[i])
            order, new_pos, depth = cls._sibling_order(
                tree.feature_arr, tree.left_arr, tree.right_arr
            )
            max_depth = max(max_depth, depth)
            tree_feature = tree.feature_arr[order]
            feature[span] = tree_feature
            threshold[span] = tree.threshold_arr[order]
            is_leaf = tree_feature == _NO_SPLIT
            node_ids = np.arange(counts[i], dtype=np.int64)
            # Leaf child slots hold _NO_SPLIT (-1) in the tree arrays;
            # the wraparound lookup result is discarded by np.where.
            child[2 * offset:2 * (offset + counts[i]):2] = (
                np.where(is_leaf, node_ids, new_pos[tree.left_arr[order]])
                + offset
            )
            child[2 * offset + 1:2 * (offset + counts[i]) + 1:2] = (
                np.where(is_leaf, node_ids, new_pos[tree.right_arr[order]])
                + offset
            )
            columns = (np.arange(tree.value_arr.shape[1])
                       if tree_columns is None
                       else np.asarray(tree_columns[i]))
            values[span.start:span.stop, columns] = tree.value_arr[order]
        return cls(feature, threshold, child, values, roots=offsets,
                   n_features=n_features, max_depth=max_depth)

    @property
    def n_trees(self) -> int:
        return self.roots.size

    @property
    def n_nodes(self) -> int:
        return self.feature.size

    @property
    def has_codes(self) -> bool:
        return self.code_tables is not None

    def build_code_tables(self, bin_edges=None) -> None:
        """Build per-feature code tables and quantize node thresholds.

        Each table is the sorted union of the feature's training bin
        edges (when supplied — the PR-5 snapshot) and every threshold
        the packed trees split that feature on.  A node's code
        threshold is its threshold's exact position in the table, so
        ``code(v) <= code_threshold ⟺ v <= threshold`` — integer
        descent reproduces float descent bit-for-bit.

        Alongside the tables, the binned walk gets base-addressed
        children: after :meth:`_sibling_order` every split's children
        are adjacent, so ``base + went_right`` reaches either one off a
        single gather.  Leaves store ``base`` = themselves and
        ``cut = 0xFFFF`` — ≥ every code including the reserved NaN
        code — so a lane at its leaf always "goes left" and stays put.
        """
        tables: list[np.ndarray] = []
        split_features = self.feature[self.is_split]
        split_thresholds = self.threshold[self.is_split]
        for f in range(self.n_features):
            used = split_thresholds[split_features == f]
            if bin_edges is not None and f < len(bin_edges):
                seeded = np.concatenate(
                    [np.asarray(bin_edges[f], dtype=float), used]
                )
            else:
                seeded = used
            table = np.unique(seeded)  # sorted + deduplicated
            if table.size > _MAX_TABLE:
                # Pathological cardinality: leave the arena on the
                # float engine rather than overflow the code space.
                self.code_tables = None
                self.code_cut = None
                self.base = None
                return
            tables.append(table)
        code_threshold = np.zeros(self.n_nodes, dtype=np.int64)
        split_nodes = np.flatnonzero(self.is_split)
        for f in np.unique(split_features):
            mask = split_features == f
            code_threshold[split_nodes[mask]] = np.searchsorted(
                tables[f], split_thresholds[mask], side="left"
            )
        self.code_tables = tables
        node_ids = np.arange(self.n_nodes, dtype=np.int64)
        self.base = np.where(self.is_split, self.child[0::2], node_ids)
        self.code_cut = np.where(self.is_split, code_threshold, 0xFFFF)

    # -------------------------------------------------------- descent

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Encode a float batch to codes against the code tables.

        Same semantics as :mod:`repro.ml.binning`:
        ``searchsorted(table, v, side="left")`` with NaN mapped to the
        reserved top code ``table.size + 1``.  Codes are int64 so every
        arithmetic step of the walk stays in one dtype (mixed-width
        integer ops cost an extra cast pass per element).
        """
        started = time.perf_counter()
        # searchsorted walks each column; the transposed copy makes
        # every column contiguous for the price of one memcpy.
        columns = np.ascontiguousarray(X.T)
        codes = np.empty((self.n_features, X.shape[0]), dtype=np.int64)
        for j, table in enumerate(self.code_tables):
            column = columns[j]
            column_codes = np.searchsorted(table, column, side="left")
            nan_rows = np.isnan(column)
            if nan_rows.any():
                column_codes = np.where(nan_rows, table.size + 1, column_codes)
            codes[j] = column_codes
        out = np.ascontiguousarray(codes.T)
        observe_histogram(
            "predict_encode_seconds", time.perf_counter() - started
        )
        return out

    def _descend(self, X: np.ndarray, codes) -> np.ndarray:
        """One vectorized multi-tree walk over flattened lanes.

        Lanes are the flattened ``(rows, trees)`` matrix; the returned
        flat array holds each lane's absolute leaf index.  Feature
        lookups go through one flat 1-D gather
        (``row * n_features + feature``) instead of 2-D advanced
        indexing, and children through the interleaved
        ``child[(node << 1) + went_right]`` gather.

        Two phases: while at least half the lanes still sit on split
        nodes, whole-array steps are cheapest; once the population
        thins (skewed trees route most rows to shallow leaves) the walk
        compacts to the live lanes only, like the per-tree descent.
        """
        n_rows = X.shape[0]
        lanes = n_rows * self.n_trees
        nodes = np.empty(lanes, dtype=np.int64)
        nodes.reshape(n_rows, self.n_trees)[:] = self.roots
        row_offset = np.repeat(
            np.arange(n_rows, dtype=np.int64) * self.n_features, self.n_trees
        )
        if codes is not None:
            flat_codes = codes.reshape(-1)
            gather_feature = self.gather_feature
            cuts = self.code_cut
            base = self.base

            def step(cur: np.ndarray, offsets: np.ndarray) -> np.ndarray:
                code = flat_codes[offsets + gather_feature[cur]]
                # Leaves carry cut = 0xFFFF ≥ every code (NaN included),
                # so they add 0 and stay on base = themselves.
                return base[cur] + (code > cuts[cur])
        else:
            flat_values = X.reshape(-1)
            threshold = self.threshold
            gather_feature = self.gather_feature
            child = self.child

            def step(cur: np.ndarray, offsets: np.ndarray) -> np.ndarray:
                value = flat_values[offsets + gather_feature[cur]]
                # ``~(v <= t)`` rather than ``v > t``: both NaN-compares
                # are False, and left must win only when ``v <= t``.
                went_right = ~(value <= threshold[cur])
                return child[(cur << 1) + went_right]

        # The walk needs exactly max_depth steps — lanes that reach
        # their leaf sooner self-loop harmlessly.  A lane that stops
        # moving is at its leaf (children are always distinct nodes;
        # only leaves self-loop), so "did it move" doubles as the
        # liveness test — no node-kind gather per step, and the final
        # depth-bounded step skips the bookkeeping entirely.
        remaining = self.max_depth
        if remaining == 0:  # every tree is a lone root leaf
            return nodes
        while remaining > 0:
            stepped = step(nodes, row_offset)
            remaining -= 1
            if remaining == 0:
                return stepped
            moved = stepped != nodes
            nodes = stepped
            n_active = int(np.count_nonzero(moved))
            if n_active == 0:
                return nodes
            if 2 * n_active < lanes:
                break
        live = np.flatnonzero(moved)
        while live.size and remaining > 0:
            stepped = step(nodes[live], row_offset[live])
            remaining -= 1
            moved = stepped != nodes[live]
            nodes[live] = stepped
            live = live[moved]
        return nodes

    def _choose_engine(self) -> str:
        mode = get_inference_mode()
        if mode == "binned":
            if not self.has_codes:
                raise RuntimeError(
                    "binned inference forced but no code tables could be "
                    "built for this ensemble"
                )
            return "binned"
        if mode == "float":
            return "float"
        return "binned" if self.has_codes else "float"

    def _chunk_rows(self) -> int:
        return max(1, _MAX_LANES // max(1, self.n_trees))

    def _observe(self, engine: str, n_rows: int, started: float) -> None:
        inc_counter("predict_requests_total", engine=engine)
        inc_counter("predict_rows_total", float(n_rows), engine=engine)
        observe_histogram(
            "predict_batch_seconds", time.perf_counter() - started
        )

    # ---------------------------------------------- ensemble predicts

    def predict_mean(self, X: np.ndarray) -> np.ndarray:
        """Forest-classifier aggregation: mean of aligned leaf values.

        Accumulates tree-by-tree per row chunk — the same float
        addition sequence as the seed's per-tree loop, so probabilities
        are bit-identical.
        """
        started = time.perf_counter()
        engine = self._choose_engine()
        codes = self.encode(X) if engine == "binned" else None
        out = np.zeros((X.shape[0], self.values.shape[1]))
        chunk = self._chunk_rows()
        for start in range(0, X.shape[0], chunk):
            span = slice(start, start + chunk)
            nodes = self._descend(
                X[span], None if codes is None else codes[span]
            ).reshape(-1, self.n_trees)
            aggregate = out[span]
            for t in range(self.n_trees):
                aggregate += self.values[nodes[:, t]]
            aggregate /= self.n_trees
        self._observe(engine, X.shape[0], started)
        return out

    def predict_raw(self, X: np.ndarray, initial_score: float,
                    learning_rate: float) -> np.ndarray:
        """GBDT aggregation: additive raw score in boosting order."""
        started = time.perf_counter()
        engine = self._choose_engine()
        codes = self.encode(X) if engine == "binned" else None
        raw = np.full(X.shape[0], initial_score)
        chunk = self._chunk_rows()
        for start in range(0, X.shape[0], chunk):
            span = slice(start, start + chunk)
            nodes = self._descend(
                X[span], None if codes is None else codes[span]
            ).reshape(-1, self.n_trees)
            segment = raw[span]
            for t in range(self.n_trees):
                segment += learning_rate * self.values[nodes[:, t], 0]
        self._observe(engine, X.shape[0], started)
        return raw

    def predict_stack(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions as a ``(trees, rows)`` stack.

        The regressor forest reduces this with ``np.mean(stack,
        axis=0)`` — the identical reduction (and pairwise-summation
        pattern) the seed applies to its list of per-tree predictions.
        """
        started = time.perf_counter()
        engine = self._choose_engine()
        codes = self.encode(X) if engine == "binned" else None
        stack = np.empty((self.n_trees, X.shape[0]))
        chunk = self._chunk_rows()
        for start in range(0, X.shape[0], chunk):
            span = slice(start, start + chunk)
            nodes = self._descend(
                X[span], None if codes is None else codes[span]
            ).reshape(-1, self.n_trees)
            for t in range(self.n_trees):
                stack[t, span] = self.values[nodes[:, t], 0]
        self._observe(engine, X.shape[0], started)
        return stack
