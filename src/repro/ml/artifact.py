"""Versioned model artifacts: train once, serve anywhere.

An artifact is a directory holding one fitted model in a re-loadable,
integrity-checked form::

    artifact/
      model.npz        # tree-family ensembles, native array layout
      model.pkl        # any other estimator (pickle fallback)
      pipeline.pkl     # MFPA bundles: the fitted pipeline state
      model/…          # MFPA bundles: nested artifact for .model_
      reference_profile.json   # optional drift baseline (PR-9)
      manifest.json    # schema version, kind, params, provenance,
                       # per-file sha256+size — written LAST

``manifest.json`` is the commit record, exactly like the monitor
checkpoint (:mod:`repro.robustness.checkpoint`) and the PR-7 shard
manifest: every payload file is written first via
:func:`~repro.robustness.checkpoint.atomic_write`, then the manifest
stamps their hashes.  A crash mid-save leaves files the manifest does
not vouch for; :func:`load_model` reports that as a typed
:class:`ArtifactCorruptError` instead of unpickling garbage.

Tree-family models (``DecisionTree*``, ``RandomForest*``,
``GradientBoostingClassifier``) are stored natively: per-tree node
arrays flat-concatenated with node counts (the same packed idiom as
:class:`repro.ml.arena.ForestArena`), leaf-value blocks padded to the
widest class count, and the PR-5 bin-edge snapshot so a loaded model
rebuilds its binned prediction engine bit-identically — probabilities
AND alarms match the model that was saved, at any ``n_jobs``.

Provenance mirrors the run manifest (:mod:`repro.obs.manifest`): the
config hash digests the estimator's constructor knobs and an optional
dataset fingerprint records what the model was fitted on.
:func:`artifact_hash` digests the canonical manifest — serve
checkpoints record it so ``--resume`` can refuse a checkpoint written
by a different model.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import time
from pathlib import Path

import numpy as np

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, _Tree
from repro.obs import inc_counter
from repro.obs.manifest import config_hash, dataset_fingerprint
from repro.robustness.checkpoint import _sha256_file, atomic_write

__all__ = [
    "ArtifactCorruptError",
    "ArtifactMismatchError",
    "SCHEMA_VERSION",
    "artifact_hash",
    "inspect_artifact",
    "load_model",
    "save_model",
]

SCHEMA_VERSION = 1
MANIFEST_FILE = "manifest.json"
_NPZ_FILE = "model.npz"
_PKL_FILE = "model.pkl"
_PIPELINE_FILE = "pipeline.pkl"
_PROFILE_FILE = "reference_profile.json"
_MODEL_SUBDIR = "model"

#: kind → (class, fitted scalar/array attribute names stored beside the
#: packed trees). ``trees_``/``tree_`` and ``bin_edges_`` are handled
#: structurally.
_TREE_KINDS = {
    "decision_tree_classifier": DecisionTreeClassifier,
    "decision_tree_regressor": DecisionTreeRegressor,
    "random_forest_classifier": RandomForestClassifier,
    "random_forest_regressor": RandomForestRegressor,
    "gradient_boosting_classifier": GradientBoostingClassifier,
}
_KIND_OF = {cls: kind for kind, cls in _TREE_KINDS.items()}


class ArtifactCorruptError(RuntimeError):
    """An artifact file is missing, truncated, altered, or from an
    unsupported schema version."""


class ArtifactMismatchError(RuntimeError):
    """An artifact is valid but is not the one the caller requires
    (e.g. resuming serve state written by a different model)."""


# ----------------------------------------------------------------------
# Tree packing
# ----------------------------------------------------------------------
def _pack_trees(trees: list[_Tree]) -> dict[str, np.ndarray]:
    """Flat-concatenate per-tree node arrays (arena idiom).

    Leaf-value blocks are padded to the widest per-tree output count;
    ``value_widths`` records each tree's true width so unpacking slices
    the padding back off.
    """
    counts = np.array([t.feature_arr.size for t in trees], dtype=np.int64)
    widths = np.array([t.value_arr.shape[1] for t in trees], dtype=np.int64)
    values = np.zeros((int(counts.sum()), int(widths.max())))
    offset = 0
    for tree, count in zip(trees, counts):
        values[offset:offset + count, : tree.value_arr.shape[1]] = tree.value_arr
        offset += int(count)
    return {
        "node_counts": counts,
        "value_widths": widths,
        "feature": np.concatenate([t.feature_arr for t in trees]),
        "threshold": np.concatenate([t.threshold_arr for t in trees]),
        "left": np.concatenate([t.left_arr for t in trees]),
        "right": np.concatenate([t.right_arr for t in trees]),
        "values": values,
    }


def _unpack_trees(data) -> list[_Tree]:
    counts = data["node_counts"]
    widths = data["value_widths"]
    trees: list[_Tree] = []
    offset = 0
    for count, width in zip(counts, widths):
        span = slice(offset, offset + int(count))
        tree = _Tree(n_outputs=int(width))
        tree.feature_arr = np.ascontiguousarray(data["feature"][span])
        tree.threshold_arr = np.ascontiguousarray(data["threshold"][span])
        tree.left_arr = np.ascontiguousarray(data["left"][span])
        tree.right_arr = np.ascontiguousarray(data["right"][span])
        tree.value_arr = np.ascontiguousarray(data["values"][span, : int(width)])
        # List storage mirrors the arrays so n_nodes/len keep working;
        # a loaded tree is never grown further.
        tree.feature = tree.feature_arr
        tree.threshold = tree.threshold_arr
        tree.left = tree.left_arr
        tree.right = tree.right_arr
        tree.value = tree.value_arr
        trees.append(tree)
        offset += int(count)
    return trees


def _init_params(model) -> dict:
    """The model's constructor parameters (stored under their names)."""
    import inspect

    names = [
        name
        for name in inspect.signature(type(model).__init__).parameters
        if name != "self"
    ]
    return {name: getattr(model, name) for name in names}


def _jsonable_params(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, dict):
            out[key] = {str(k): v for k, v in value.items()}
        else:
            out[key] = value
    return out


def _bin_edges_arrays(bin_edges) -> dict[str, np.ndarray]:
    if not bin_edges:
        return {}
    edges = list(bin_edges)
    return {
        "bin_edge_sizes": np.array([e.size for e in edges], dtype=np.int64),
        "bin_edges": (
            np.concatenate(edges) if edges else np.empty(0)
        ),
    }


def _restore_bin_edges(data):
    if "bin_edge_sizes" not in data:
        return None
    sizes = data["bin_edge_sizes"]
    flat = data["bin_edges"]
    edges, offset = [], 0
    for size in sizes:
        edges.append(np.ascontiguousarray(flat[offset:offset + int(size)]))
        offset += int(size)
    return edges


# ----------------------------------------------------------------------
# Per-kind state
# ----------------------------------------------------------------------
def _collect_state(model, kind: str) -> dict[str, np.ndarray]:
    """Arrays beyond the packed trees a kind needs to predict again."""
    state: dict[str, np.ndarray] = {}
    if kind == "decision_tree_classifier":
        state["classes"] = model.classes_
        state["feature_importances"] = model.feature_importances_
        state["n_features"] = np.int64(model.n_features_)
    elif kind == "decision_tree_regressor":
        state["n_features"] = np.int64(model.n_features_)
    elif kind == "random_forest_classifier":
        state["classes"] = model.classes_
        state["feature_importances"] = model.feature_importances_
        state["n_features"] = np.int64(model.n_features_)
        member_classes = [tree.classes_ for tree in model.trees_]
        state["member_class_counts"] = np.array(
            [c.size for c in member_classes], dtype=np.int64
        )
        state["member_classes"] = np.concatenate(member_classes)
    elif kind == "random_forest_regressor":
        state["n_features"] = np.int64(model.n_features_)
    elif kind == "gradient_boosting_classifier":
        state["classes"] = model.classes_
        state["n_features"] = np.int64(model.n_features_)
        state["initial_score"] = np.float64(model.initial_score_)
        state["train_deviance"] = np.asarray(model.train_deviance_)
    return state


def _member_seeds(model) -> np.ndarray:
    return np.array([tree.seed for tree in model.trees_], dtype=np.int64)


def _save_tree_family(model, kind: str, path: Path) -> dict:
    """Write model.npz; returns manifest metadata."""
    if kind.startswith("decision_tree"):
        packed = _pack_trees([model.tree_])
    else:
        packed = _pack_trees([tree.tree_ for tree in model.trees_])
        packed["member_seeds"] = _member_seeds(model)
    packed.update(_collect_state(model, kind))
    packed.update(_bin_edges_arrays(getattr(model, "bin_edges_", None)))
    buffer = io.BytesIO()
    np.savez(buffer, **packed)
    atomic_write(path / _NPZ_FILE, buffer.getvalue())
    return {"format": "npz", "files": [_NPZ_FILE]}


def _member_params(params: dict) -> dict:
    """Constructor params a forest/GBDT passes down to member trees."""
    shared = dict(params)
    for key in ("n_estimators", "bootstrap", "seed", "n_jobs", "subsample",
                "learning_rate"):
        shared.pop(key, None)
    return shared


def _load_tree_family(kind: str, params: dict, path: Path):
    cls = _TREE_KINDS[kind]
    try:
        with open(path / _NPZ_FILE, "rb") as handle:
            data = dict(np.load(handle, allow_pickle=False))
    except (OSError, ValueError, KeyError) as error:
        raise ArtifactCorruptError(
            f"artifact payload {path / _NPZ_FILE} is unreadable: {error}"
        ) from error
    model = cls(**params)
    bin_edges = _restore_bin_edges(data)
    trees = _unpack_trees(data)
    if kind == "decision_tree_classifier":
        model.classes_ = data["classes"]
        model.feature_importances_ = data["feature_importances"]
        model.n_features_ = int(data["n_features"])
        model.tree_ = trees[0]
        model.bin_edges_ = bin_edges
    elif kind == "decision_tree_regressor":
        model.n_features_ = int(data["n_features"])
        model.tree_ = trees[0]
        model.bin_edges_ = bin_edges
    elif kind in ("random_forest_classifier", "random_forest_regressor"):
        member_cls = (
            DecisionTreeClassifier
            if kind == "random_forest_classifier"
            else DecisionTreeRegressor
        )
        shared = _member_params(params)
        members = []
        class_offset = 0
        for i, tree in enumerate(trees):
            member = member_cls(seed=int(data["member_seeds"][i]), **shared)
            member.tree_ = tree
            member.n_features_ = int(data["n_features"])
            member.bin_edges_ = bin_edges
            if kind == "random_forest_classifier":
                count = int(data["member_class_counts"][i])
                member.classes_ = data["member_classes"][
                    class_offset:class_offset + count
                ]
                class_offset += count
                member.feature_importances_ = np.zeros(int(data["n_features"]))
            members.append(member)
        model.trees_ = members
        model.n_features_ = int(data["n_features"])
        model.bin_edges_ = bin_edges
        model._arena_ = None
        if kind == "random_forest_classifier":
            model.classes_ = data["classes"]
            model.feature_importances_ = data["feature_importances"]
            model._tree_columns_ = model._align_tree_columns()
    elif kind == "gradient_boosting_classifier":
        shared = _member_params(params)
        members = []
        for i, tree in enumerate(trees):
            member = DecisionTreeRegressor(
                seed=int(data["member_seeds"][i]),
                max_depth=params["max_depth"],
                min_samples_leaf=params["min_samples_leaf"],
                split_algorithm=params["split_algorithm"],
            )
            member.tree_ = tree
            member.n_features_ = int(data["n_features"])
            member.bin_edges_ = bin_edges
            members.append(member)
        model.trees_ = members
        model.classes_ = data["classes"]
        model.n_features_ = int(data["n_features"])
        model.initial_score_ = float(data["initial_score"])
        model.train_deviance_ = [float(v) for v in data["train_deviance"]]
        model.bin_edges_ = bin_edges
        model._arena_ = None
    return model


# ----------------------------------------------------------------------
# Save / load / inspect
# ----------------------------------------------------------------------
def _is_mfpa(model) -> bool:
    return type(model).__name__ == "MFPA" and hasattr(model, "config")


def save_model(model, directory: str | Path, *, dataset=None,
               reference_profile=None) -> Path:
    """Persist a fitted model as a versioned artifact directory.

    Tree-family ensembles are stored natively (arrays, no pickle);
    anything else falls back to a hashed pickle payload.  A fitted
    :class:`~repro.core.pipeline.MFPA` becomes a bundle: pipeline state
    plus a nested artifact for its estimator.  ``dataset`` (when given)
    is fingerprinted for provenance; ``reference_profile`` (a PR-9
    :class:`~repro.serve.drift.ReferenceProfile`) rides along for
    serve-side drift monitoring.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    if _is_mfpa(model):
        meta = _save_mfpa(model, path)
        params: dict = {}
        hashed = config_hash(model.config)
        class_name = type(model).__name__
        if dataset is None:
            dataset = getattr(model, "dataset_", None)
    elif type(model) in _KIND_OF:
        kind = _KIND_OF[type(model)]
        params = _init_params(model)
        meta = _save_tree_family(model, kind, path)
        meta["kind"] = kind
        hashed = config_hash(model)
        class_name = type(model).__name__
    else:
        atomic_write(path / _PKL_FILE, pickle.dumps(model))
        meta = {"format": "pickle", "files": [_PKL_FILE], "kind": "pickle"}
        params = {}
        hashed = config_hash(model) if hasattr(model, "get_params") else None
        class_name = type(model).__name__
    if reference_profile is not None:
        atomic_write(
            path / _PROFILE_FILE,
            json.dumps(reference_profile.to_json(), sort_keys=True).encode(),
        )
        meta["files"] = [*meta["files"], _PROFILE_FILE]
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "kind": meta["kind"],
        "format": meta["format"],
        "class": class_name,
        "params": _jsonable_params(params),
        "config_hash": hashed,
        "dataset_fingerprint": (
            dataset_fingerprint(dataset) if dataset is not None else None
        ),
        "bin_edges": _bin_edge_summary(model),
        "created_unix": round(time.time(), 3),
        "files": {
            name: {
                "sha256": _sha256_file(path / name),
                "size": (path / name).stat().st_size,
            }
            for name in meta["files"]
        },
    }
    if "model_artifact_hash" in meta:
        manifest["model_artifact_hash"] = meta["model_artifact_hash"]
    # Manifest last — the commit record vouching for every payload file.
    atomic_write(
        path / MANIFEST_FILE,
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
    )
    inc_counter("model_artifacts_saved_total")
    return path


def _bin_edge_summary(model):
    edges = getattr(model, "bin_edges_", None)
    if not edges:
        model_ = getattr(model, "model_", None)
        edges = getattr(model_, "bin_edges_", None) if model_ is not None else None
    if not edges:
        return None
    return {
        "n_features": len(edges),
        "sizes": [int(e.size) for e in edges],
    }


def _save_mfpa(pipeline, path: Path) -> dict:
    """MFPA bundle: pipeline state pickle + nested estimator artifact."""
    state = dict(pipeline.__dict__)
    # The prepared dataset is rebound at load time (bind_dataset); the
    # estimator goes into its own nested artifact.
    state.pop("dataset_", None)
    state.pop("model_", None)
    state.pop("search_", None)
    atomic_write(path / _PIPELINE_FILE, pickle.dumps(state))
    nested = save_model(pipeline.model_, path / _MODEL_SUBDIR)
    return {
        "format": "mfpa",
        "kind": "mfpa",
        "files": [_PIPELINE_FILE],
        "model_artifact_hash": artifact_hash(nested),
    }


def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{path} is not a model artifact (no {MANIFEST_FILE})"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError as error:
        raise ArtifactCorruptError(
            f"artifact manifest {manifest_path} is not valid JSON: {error}"
        ) from error
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactCorruptError(
            f"artifact {path} has schema version {version!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    return manifest


def _verify_files(path: Path, manifest: dict) -> None:
    for name, entry in manifest.get("files", {}).items():
        target = path / name
        if not target.exists():
            raise ArtifactCorruptError(f"artifact file {target} is missing")
        size = target.stat().st_size
        if size != entry["size"]:
            raise ArtifactCorruptError(
                f"artifact file {target} is truncated or overgrown: "
                f"{size} bytes on disk, {entry['size']} in manifest"
            )
        if _sha256_file(target) != entry["sha256"]:
            raise ArtifactCorruptError(
                f"artifact file {target} fails its sha256 content check"
            )


def load_model(directory: str | Path):
    """Load a model artifact, verifying integrity first.

    Raises :class:`ArtifactCorruptError` on truncation, content-hash
    mismatch, schema-version mismatch, or an undecodable payload;
    ``FileNotFoundError`` when ``directory`` holds no artifact.  The
    returned model predicts bit-identically to the one saved
    (including through the binned arena, rebuilt from the stored
    bin-edge snapshot) and is independent of the directory it was
    saved in.
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    _verify_files(path, manifest)
    kind = manifest.get("kind")
    if kind in _TREE_KINDS:
        params = dict(manifest.get("params", {}))
        model = _load_tree_family(kind, params, path)
    elif kind == "pickle":
        try:
            with open(path / _PKL_FILE, "rb") as handle:
                model = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                IndexError, ValueError) as error:
            raise ArtifactCorruptError(
                f"artifact payload {path / _PKL_FILE} is undecodable: {error}"
            ) from error
    elif kind == "mfpa":
        model = _load_mfpa(path)
    else:
        raise ArtifactCorruptError(
            f"artifact {path} has unknown kind {kind!r}"
        )
    inc_counter("model_artifacts_loaded_total")
    return model


def _load_mfpa(path: Path):
    from repro.core.pipeline import MFPA

    try:
        with open(path / _PIPELINE_FILE, "rb") as handle:
            state = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            IndexError, ValueError) as error:
        raise ArtifactCorruptError(
            f"artifact payload {path / _PIPELINE_FILE} is undecodable: "
            f"{error}"
        ) from error
    pipeline = MFPA.__new__(MFPA)
    pipeline.__dict__.update(state)
    pipeline.model_ = load_model(path / _MODEL_SUBDIR)
    return pipeline


def load_reference_profile(directory: str | Path):
    """The artifact's bundled drift baseline, or None if absent."""
    from repro.serve.drift import ReferenceProfile

    path = Path(directory) / _PROFILE_FILE
    if not path.exists():
        return None
    return ReferenceProfile.from_json(json.loads(path.read_text()))


def inspect_artifact(directory: str | Path) -> dict:
    """The artifact's manifest plus an integrity verdict (no model
    construction)."""
    path = Path(directory)
    manifest = _read_manifest(path)
    try:
        _verify_files(path, manifest)
        manifest["verified"] = True
    except ArtifactCorruptError as error:
        manifest["verified"] = False
        manifest["corruption"] = str(error)
    manifest["artifact_hash"] = artifact_hash(path)
    return manifest


def artifact_hash(directory: str | Path) -> str:
    """16-hex digest of the canonical manifest — the artifact identity.

    Two artifacts hash equal iff their manifests are byte-equal
    (same payload hashes, params, provenance).  Serve checkpoints
    record this so resuming against a different model's state fails
    loudly (:class:`ArtifactMismatchError`) instead of silently mixing
    score histories.
    """
    manifest_path = Path(directory) / MANIFEST_FILE
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{directory} is not a model artifact (no {MANIFEST_FILE})"
        )
    payload = json.dumps(
        json.loads(manifest_path.read_text()), sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]
