"""Estimator base class and cloning support.

Estimators follow two conventions that the rest of the library relies on:

* every constructor argument is stored verbatim on ``self`` under the same
  name, which lets :func:`clone` rebuild an unfitted copy, and
* fitted state uses a trailing-underscore name (``classes_``, ``trees_``)
  so it is easy to tell configuration from learned parameters.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np


class BaseClassifier:
    """Common behaviour for all binary/multiclass classifiers.

    Subclasses implement :meth:`fit` and :meth:`predict_proba`;
    :meth:`predict` and parameter management are shared.
    """

    def get_params(self) -> dict[str, Any]:
        """Return constructor parameters as a dict (for cloning/grid search)."""
        signature = inspect.signature(type(self).__init__)
        names = [
            name
            for name, parameter in signature.parameters.items()
            if name != "self"
            and parameter.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        ]
        return {name: getattr(self, name) for name in names}

    def set_params(self, **params: Any) -> "BaseClassifier":
        """Set constructor parameters in place and return self."""
        valid = set(self.get_params())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Return an ``(n_samples, n_classes)`` array of class probabilities."""
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Return the most probable class for each sample."""
        probabilities = self.predict_proba(X)
        indices = np.argmax(probabilities, axis=1)
        return self.classes_[indices]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Return mean accuracy on the given data."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError(f"{type(self).__name__} is not fitted yet; call fit() first")


def clone(estimator: BaseClassifier) -> BaseClassifier:
    """Return an unfitted copy of ``estimator`` with identical parameters."""
    return type(estimator)(**estimator.get_params())


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate and convert a feature matrix / label vector pair.

    Sequence inputs of shape ``(n, t, f)`` are accepted for the neural
    models; everything else must be 2-D.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim not in (2, 3):
        raise ValueError(f"X must be 2-D or 3-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
    if X.shape[0] == 0:
        raise ValueError("cannot fit with zero samples")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values")
    return X, y


def check_X(X: Any, n_features: int | None = None) -> np.ndarray:
    """Validate a prediction-time feature matrix."""
    X = np.asarray(X, dtype=float)
    if X.ndim not in (2, 3):
        raise ValueError(f"X must be 2-D or 3-D, got shape {X.shape}")
    if n_features is not None and X.shape[-1] != n_features:
        raise ValueError(
            f"X has {X.shape[-1]} features but the model was fitted with {n_features}"
        )
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values")
    return X
