"""Quantile pre-binning for histogram-based tree training.

``split_algorithm="hist"`` trades the exact sort-based split search in
:mod:`repro.ml.tree` for LightGBM-style histogram accumulation: each
feature is quantile-binned **once** into ``uint8`` codes, and every
node's split search becomes a pair of ``np.bincount`` calls plus an
O(n_bins) cut scan instead of an O(n log n) sort per feature.

The binning itself is the only O(n log n) step left, so it must never be
repeated. :class:`BinnedDataset` is therefore built through a
process-global, fingerprint-keyed LRU cache (:func:`get_binned`):

* a forest bins once and every tree takes a ``uint8`` row gather;
* GBDT bins once and reuses the codes across all boosting rounds
  (residuals change, the feature matrix does not);
* a grid search pre-warms the cache with one entry per CV fold — edges
  are fitted on the **train fold only**, mirroring the future-leak guard
  of ``TimeSeriesCrossValidator`` — and every candidate's fit is a cache
  hit;
* forward selection reuses the per-fold entries through
  :meth:`BinnedDataset.column_view` — a column subset never re-bins.

Fork workers inherit the parent's cache through copy-on-write memory
(see :mod:`repro.parallel`), so pre-warmed entries are hits inside the
pool too and the codes never cross a pipe.

Binning semantics
-----------------
Each feature gets at most ``max_bins`` (default 64, cap 255) value bins. When a
feature has fewer distinct values than ``max_bins`` the edges are the
midpoints between consecutive distinct values, which makes the binning
**lossless**: the hist backend then grows exactly the trees the exact
backend grows. Otherwise edges are the interior quantiles of the
training column. Code ``len(edges) + 1`` is the reserved NaN bin; it
sorts above every value bin so missing values always route right, which
matches ``NaN <= threshold == False`` at predict time. (Current inputs
are validated finite upstream; the bin exists so degraded-mode inputs
have defined semantics.)
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict

import numpy as np

from repro.obs import inc_counter, observe_histogram

__all__ = [
    "BinnedDataset",
    "DEFAULT_BINS",
    "MAX_BINS",
    "binned_fingerprint",
    "build_binned",
    "build_binned_from_edges",
    "clear_binned_cache",
    "get_binned",
    "set_binned_cache_limit",
]

#: Hard cap on value bins per feature (uint8 code space, one extra
#: code above them is the NaN bin).
MAX_BINS = 255

#: Default value-bin budget. MFPA telemetry is dominated by small-
#: cardinality counters that bin losslessly far below this, and for the
#: remaining continuous columns 64 quantile bins split statistically as
#: well as 255 while costing a quarter of the per-node cut scan.
DEFAULT_BINS = 64

#: Default number of cached BinnedDatasets kept alive at once (LRU
#: eviction). Sharded pipelines mint one fingerprint per shard, so the
#: bound — not the caller — is what keeps a thousand-shard sweep from
#: pinning a thousand code matrices in RAM; every eviction is counted in
#: ``tree_bin_cache_evictions_total``.
_DEFAULT_CACHE_ENTRIES = 32


class BinnedDataset:
    """Pre-binned view of a feature matrix for histogram split search.

    Attributes
    ----------
    codes:
        ``(n_rows, n_features)`` uint8 bin codes.
    bin_edges:
        Per-feature ascending edge values; ``code(v) = searchsorted(
        edges, v, side="left")`` so ``code <= b  <=>  v <= edges[b]``.
    n_bins:
        Uniform per-feature bin count (max value bins + the NaN bin
        across features) — uniform so node histograms are one dense
        ``(n_features, n_bins, ...)`` block and the cut scan vectorizes
        across features.
    cut_thresholds:
        ``(n_features, n_bins - 1)`` real-unit threshold for every cut
        ``code <= b``; padded with ``+inf`` past a feature's last edge
        (the all-values-left / NaN-right cut).
    fingerprint:
        Cache key this dataset was built under (None when built
        directly).
    """

    __slots__ = ("codes", "bin_edges", "n_bins", "cut_thresholds", "fingerprint")

    def __init__(
        self,
        codes: np.ndarray,
        bin_edges: tuple[np.ndarray, ...],
        n_bins: int,
        cut_thresholds: np.ndarray,
        fingerprint: str | None = None,
    ):
        self.codes = codes
        self.bin_edges = bin_edges
        self.n_bins = n_bins
        self.cut_thresholds = cut_thresholds
        self.fingerprint = fingerprint

    @property
    def n_rows(self) -> int:
        return self.codes.shape[0]

    @property
    def n_features(self) -> int:
        return self.codes.shape[1]

    def take(self, rows: np.ndarray) -> "BinnedDataset":
        """Row-subset view (uint8 gather); edges are shared, not refit.

        This is what keeps a forest's bootstrap samples and GBDT's
        subsampled rounds O(n) per tree instead of O(n log n).
        """
        return BinnedDataset(
            self.codes[rows], self.bin_edges, self.n_bins, self.cut_thresholds
        )

    def column_view(self, columns) -> "BinnedDataset":
        """Feature-subset view for forward selection — no re-binning."""
        columns = np.asarray(columns, dtype=np.intp)
        return BinnedDataset(
            self.codes[:, columns],
            tuple(self.bin_edges[c] for c in columns),
            self.n_bins,
            self.cut_thresholds[columns],
        )


def _feature_edges(values: np.ndarray, max_bins: int) -> np.ndarray:
    """Ascending bin edges for one feature column.

    Midpoints between distinct values when they fit in ``max_bins``
    (lossless), interior quantiles otherwise.
    """
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return np.empty(0)
    distinct = np.unique(finite)
    if distinct.size <= max_bins:
        return (distinct[:-1] + distinct[1:]) / 2.0
    quantiles = np.quantile(finite, np.linspace(0.0, 1.0, max_bins + 1)[1:-1])
    return np.unique(quantiles)


def build_binned(
    X: np.ndarray, max_bins: int = DEFAULT_BINS, fingerprint: str | None = None
) -> BinnedDataset:
    """Bin every column of ``X`` into uint8 codes (the expensive step)."""
    if not 2 <= max_bins <= MAX_BINS:
        raise ValueError(f"max_bins must be in [2, {MAX_BINS}], got {max_bins}")
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("binning expects a 2-D feature matrix")
    edges = [_feature_edges(X[:, j], max_bins) for j in range(X.shape[1])]
    return build_binned_from_edges(X, edges, fingerprint=fingerprint)


def build_binned_from_edges(
    X: np.ndarray,
    edges: list[np.ndarray] | tuple[np.ndarray, ...],
    fingerprint: str | None = None,
) -> BinnedDataset:
    """Encode ``X`` against pre-fitted per-feature edges.

    The out-of-core path (:mod:`repro.scale.stats`) fits edges
    shard-by-shard with a merged reservoir and then encodes each shard
    through this entry point, so no step ever needs the full matrix;
    :func:`build_binned` is the same encoder with edges fitted on ``X``
    itself.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("binning expects a 2-D feature matrix")
    n_rows, n_features = X.shape
    if len(edges) != n_features:
        raise ValueError(
            f"got {len(edges)} edge arrays for {n_features} features"
        )
    if any(e.size > MAX_BINS - 1 for e in edges):
        raise ValueError(f"a feature has more than {MAX_BINS} value bins")
    started = time.perf_counter()
    per_feature_codes: list[np.ndarray] = []
    for j in range(n_features):
        column = X[:, j]
        feature_edges = edges[j]
        codes = np.searchsorted(feature_edges, column, side="left")
        nan_rows = np.isnan(column)
        if nan_rows.any():
            codes = np.where(nan_rows, feature_edges.size + 1, codes)
        per_feature_codes.append(codes)
    # Uniform bin count across features (value bins + the NaN bin) keeps
    # node histograms a single dense block.
    n_bins = max((e.size + 2) for e in edges) if edges else 2
    cut_thresholds = np.full((n_features, n_bins - 1), np.inf)
    for j, feature_edges in enumerate(edges):
        cut_thresholds[j, : feature_edges.size] = feature_edges
    codes = np.empty((n_rows, n_features), dtype=np.uint8)
    for j, column_codes in enumerate(per_feature_codes):
        codes[:, j] = column_codes
    observe_histogram("tree_bin_build_seconds", time.perf_counter() - started)
    return BinnedDataset(
        codes, tuple(np.asarray(e) for e in edges), n_bins, cut_thresholds,
        fingerprint,
    )


def binned_fingerprint(
    X: np.ndarray, rows: np.ndarray | None = None, max_bins: int = DEFAULT_BINS
) -> str:
    """Content fingerprint of ``(X[rows], max_bins)`` — the cache key.

    Like the run-manifest dataset fingerprint, this hashes the shape
    plus a strided row sample rather than every byte, so a lookup is
    O(n_features) with a small constant. ``rows`` is hashed in full
    (it is what distinguishes one CV fold from another).
    """
    X = np.asarray(X)
    digest = hashlib.sha256()
    digest.update(f"{X.shape}:{X.dtype.str}:{max_bins}".encode())
    stride = max(1, X.shape[0] // 64)
    digest.update(np.ascontiguousarray(X[::stride]).tobytes())
    if rows is None:
        digest.update(b"rows:all")
    else:
        rows = np.asarray(rows)
        digest.update(f"rows:{rows.shape}:{rows.dtype.str}".encode())
        digest.update(np.ascontiguousarray(rows).tobytes())
    return digest.hexdigest()[:16]


#: Process-global fingerprint -> BinnedDataset LRU. Fork workers see a
#: copy-on-write snapshot: parent pre-warmed entries are hits, worker
#: inserts stay worker-local.
_CACHE: OrderedDict[str, BinnedDataset] = OrderedDict()
_CACHE_LIMIT = _DEFAULT_CACHE_ENTRIES


def set_binned_cache_limit(limit: int | None) -> int:
    """Set the LRU entry bound; returns the previous bound.

    ``None`` restores the default. Shrinking the bound evicts (and
    counts) the overflow immediately, so a sharded run that tightens
    the budget under a memory ceiling sees the release right away.
    """
    global _CACHE_LIMIT
    previous = _CACHE_LIMIT
    if limit is None:
        limit = _DEFAULT_CACHE_ENTRIES
    if int(limit) < 1:
        raise ValueError("binned cache limit must be at least 1")
    _CACHE_LIMIT = int(limit)
    _evict_over_limit()
    return previous


def _evict_over_limit() -> None:
    while len(_CACHE) > _CACHE_LIMIT:
        _CACHE.popitem(last=False)
        inc_counter("tree_bin_cache_evictions_total")


def get_binned(
    X: np.ndarray, rows: np.ndarray | None = None, max_bins: int = DEFAULT_BINS
) -> BinnedDataset:
    """Cached binning of ``X`` (or of the ``rows`` subset).

    ``rows`` selects the rows to *fit edges on and encode* — a CV train
    fold bins through ``get_binned(X, train_indices)`` so its edges see
    no future data, and every later request for the same fold is a
    cache hit (`tree_bin_cache_hits_total`). The cache is bounded (see
    :func:`set_binned_cache_limit`): per-shard fingerprints from the
    scale pipeline recycle the oldest entries instead of growing the
    process without limit, with every eviction counted in
    ``tree_bin_cache_evictions_total``.
    """
    key = binned_fingerprint(X, rows, max_bins)
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        inc_counter("tree_bin_cache_hits_total")
        return cached
    inc_counter("tree_bin_cache_misses_total")
    data = X if rows is None else np.asarray(X)[rows]
    binned = build_binned(data, max_bins, fingerprint=key)
    _CACHE[key] = binned
    _evict_over_limit()
    return binned


def clear_binned_cache() -> None:
    """Drop every cached BinnedDataset (tests and memory pressure)."""
    _CACHE.clear()
