"""Probability calibration (Platt scaling) and reliability measurement.

SVM margins and small neural networks output poorly calibrated
probabilities; drive-level alarm thresholds are only meaningful when
``p = 0.9`` actually means ~90%. :class:`PlattCalibrator` fits the
classic sigmoid ``p = 1 / (1 + exp(a * s + b))`` to held-out scores,
and :func:`reliability_curve` measures calibration quality before and
after.
"""

from __future__ import annotations

import numpy as np


class PlattCalibrator:
    """Sigmoid recalibration of classifier scores (Platt 1999).

    Fits ``a, b`` by Newton-descended logistic regression on one score
    feature, with Platt's label smoothing to avoid saturated targets.
    """

    def __init__(self, max_iter: int = 100, tolerance: float = 1e-10):
        if max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        self.max_iter = max_iter
        self.tolerance = tolerance

    def fit(self, scores: np.ndarray, y_true: np.ndarray) -> "PlattCalibrator":
        scores = np.asarray(scores, dtype=float)
        y_true = np.asarray(y_true)
        if scores.shape != y_true.shape:
            raise ValueError("scores and labels must align")
        positives = y_true == 1
        n_positive = int(positives.sum())
        n_negative = y_true.size - n_positive
        if n_positive == 0 or n_negative == 0:
            raise ValueError("calibration needs both classes")

        # Platt's smoothed targets.
        target_positive = (n_positive + 1.0) / (n_positive + 2.0)
        target_negative = 1.0 / (n_negative + 2.0)
        targets = np.where(positives, target_positive, target_negative)

        a, b = 0.0, float(np.log((n_negative + 1.0) / (n_positive + 1.0)))
        for _ in range(self.max_iter):
            logits = a * scores + b
            # Model predicts P(y=1) = 1 / (1 + exp(logit)).
            probabilities = 1.0 / (1.0 + np.exp(np.clip(logits, -500, 500)))
            gradient_weight = probabilities - targets
            grad_a = float(np.sum(gradient_weight * -scores))
            grad_b = float(np.sum(-gradient_weight))
            hessian_weight = probabilities * (1 - probabilities)
            h_aa = float(np.sum(hessian_weight * scores**2)) + 1e-12
            h_ab = float(np.sum(hessian_weight * scores))
            h_bb = float(np.sum(hessian_weight)) + 1e-12
            determinant = h_aa * h_bb - h_ab**2
            if abs(determinant) < 1e-20:
                break
            delta_a = (h_bb * grad_a - h_ab * grad_b) / determinant
            delta_b = (h_aa * grad_b - h_ab * grad_a) / determinant
            a -= delta_a
            b -= delta_b
            if abs(delta_a) < self.tolerance and abs(delta_b) < self.tolerance:
                break
        self.a_ = a
        self.b_ = b
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Map raw scores to calibrated probabilities."""
        if not hasattr(self, "a_"):
            raise RuntimeError("PlattCalibrator is not fitted yet")
        logits = self.a_ * np.asarray(scores, dtype=float) + self.b_
        return 1.0 / (1.0 + np.exp(np.clip(logits, -500, 500)))

    def fit_transform(self, scores: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        return self.fit(scores, y_true).transform(scores)


def reliability_curve(
    y_true: np.ndarray, probabilities: np.ndarray, n_bins: int = 10
) -> dict[str, np.ndarray]:
    """Binned predicted-vs-observed frequencies plus Brier score/ECE.

    Returns ``bin_centers``, ``mean_predicted``, ``fraction_positive``,
    ``bin_counts`` (NaN-padded for empty bins), ``brier`` and ``ece``
    (expected calibration error, bin-count weighted).
    """
    y_true = np.asarray(y_true)
    probabilities = np.asarray(probabilities, dtype=float)
    if y_true.shape != probabilities.shape:
        raise ValueError("inputs must align")
    if n_bins < 2:
        raise ValueError("n_bins must be at least 2")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    indices = np.clip(np.digitize(probabilities, edges) - 1, 0, n_bins - 1)

    mean_predicted = np.full(n_bins, np.nan)
    fraction_positive = np.full(n_bins, np.nan)
    bin_counts = np.zeros(n_bins, dtype=int)
    for bin_index in range(n_bins):
        members = indices == bin_index
        bin_counts[bin_index] = int(members.sum())
        if bin_counts[bin_index]:
            mean_predicted[bin_index] = probabilities[members].mean()
            fraction_positive[bin_index] = (y_true[members] == 1).mean()

    brier = float(np.mean((probabilities - (y_true == 1)) ** 2))
    occupied = bin_counts > 0
    ece = float(
        np.sum(
            bin_counts[occupied]
            * np.abs(mean_predicted[occupied] - fraction_positive[occupied])
        )
        / max(1, bin_counts.sum())
    )
    return {
        "bin_centers": (edges[:-1] + edges[1:]) / 2,
        "mean_predicted": mean_predicted,
        "fraction_positive": fraction_positive,
        "bin_counts": bin_counts,
        "brier": brier,
        "ece": ece,
    }
