"""Feature encoding and scaling.

The paper label-encodes the (string-valued) firmware version and feeds
numeric SMART/event features to the models; SVM and the neural network
additionally need standardized inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class LabelEncoder:
    """Map arbitrary hashable labels to consecutive integers.

    Used for firmware-version strings (paper §III-C(1)). Encoding order
    is the sorted order of the classes seen in ``fit``, which makes the
    encoding deterministic across runs.
    """

    def fit(self, values: Iterable) -> "LabelEncoder":
        self.classes_ = sorted(set(values), key=str)
        self._index = {value: i for i, value in enumerate(self.classes_)}
        return self

    def transform(self, values: Iterable) -> np.ndarray:
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder is not fitted yet")
        try:
            return np.array([self._index[value] for value in values], dtype=int)
        except KeyError as error:
            raise ValueError(f"unseen label {error.args[0]!r}") from error

    def fit_transform(self, values: Sequence) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, codes: Iterable[int]) -> list:
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder is not fitted yet")
        return [self.classes_[int(code)] for code in codes]


class StandardScaler:
    """Zero-mean / unit-variance scaling, NaN-safe for constant columns."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        # A (near-)constant column has ~zero variance; dividing by 1
        # leaves it at ~0 after centering instead of amplifying float
        # rounding noise into O(1) values. The threshold is relative to
        # the column magnitude so large constants are caught too.
        threshold = 1e-10 * np.maximum(np.abs(self.mean_), 1.0)
        self.scale_ = np.where(scale <= threshold, 1.0, scale)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted yet")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted yet")
        return np.asarray(X, dtype=float) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each feature to ``[0, 1]``, NaN-safe for constant columns."""

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=float)
        self.min_ = X.min(axis=0)
        data_range = X.max(axis=0) - self.min_
        self.range_ = np.where(data_range == 0, 1.0, data_range)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "min_"):
            raise RuntimeError("MinMaxScaler is not fitted yet")
        X = np.asarray(X, dtype=float)
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
