"""Soft-voting ensembles of heterogeneous classifiers.

The paper evaluates five algorithm families separately (Figs 10/14);
production systems routinely blend them. :class:`VotingClassifier`
averages member probabilities (optionally weighted), giving variance
reduction across model families rather than across bootstraps.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X_y, clone


class VotingClassifier(BaseClassifier):
    """Weighted soft-voting over independently fitted members.

    Parameters
    ----------
    estimators:
        ``(name, estimator)`` pairs; each is cloned and fitted.
    weights:
        Optional per-member weights (normalized internally).
    """

    def __init__(
        self,
        estimators: list[tuple[str, BaseClassifier]],
        weights: list[float] | None = None,
    ):
        if not estimators:
            raise ValueError("estimators must not be empty")
        names = [name for name, _ in estimators]
        if len(set(names)) != len(names):
            raise ValueError("estimator names must be unique")
        if weights is not None:
            if len(weights) != len(estimators):
                raise ValueError("weights must match estimators")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError("weights must be non-negative with positive sum")
        self.estimators = estimators
        self.weights = weights

    def fit(self, X: np.ndarray, y: np.ndarray) -> "VotingClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        self.fitted_: dict[str, BaseClassifier] = {}
        for name, prototype in self.estimators:
            member = clone(prototype)
            member.fit(X, y)
            if not np.array_equal(member.classes_, self.classes_):
                raise ValueError(f"member {name!r} saw different classes")
            self.fitted_[name] = member
        if self.weights is None:
            self._normalized_weights = np.full(
                len(self.estimators), 1.0 / len(self.estimators)
            )
        else:
            weights = np.asarray(self.weights, dtype=float)
            self._normalized_weights = weights / weights.sum()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        aggregate = None
        for (name, _), weight in zip(self.estimators, self._normalized_weights):
            probabilities = self.fitted_[name].predict_proba(np.asarray(X, dtype=float))
            contribution = weight * probabilities
            aggregate = contribution if aggregate is None else aggregate + contribution
        return aggregate

    def member_probabilities(self, X: np.ndarray) -> dict[str, np.ndarray]:
        """Positive-class probability per member (for disagreement
        analysis — members that disagree flag uncertain drives)."""
        self._check_fitted()
        return {
            name: member.predict_proba(np.asarray(X, dtype=float))[:, 1]
            for name, member in self.fitted_.items()
        }
