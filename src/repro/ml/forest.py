"""Random forest classifier — the paper's best-performing algorithm.

Bootstrap-sampled CART trees with per-node feature subsampling, averaged
class probabilities. The paper finds tree ensembles degrade most
gracefully on the discontinuous CSS telemetry (§IV-(3)).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class RandomForestClassifier(BaseClassifier):
    """Bagged ensemble of decorrelated CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Passed to every member tree. ``max_features="sqrt"`` is the
        standard forest default.
    bootstrap:
        Draw each tree's training set with replacement when True.
    class_weight:
        ``None``, ``"balanced"``, or a label -> weight dict; passed to
        every member tree (cost-sensitive forests, cf. CSLE [24]).
    seed:
        Master seed; each tree derives its own stream.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        class_weight=None,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.class_weight = class_weight
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        if X.ndim != 2:
            raise ValueError("RandomForestClassifier expects 2-D input")
        self.classes_ = np.unique(y)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        n_samples = X.shape[0]

        self.trees_ = []
        for index in range(self.n_estimators):
            if self.bootstrap:
                sample = rng.integers(0, n_samples, size=n_samples)
            else:
                sample = np.arange(n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                class_weight=self.class_weight,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.trees_.append(tree)

        self.feature_importances_ = np.mean(
            [tree.feature_importances_ for tree in self.trees_], axis=0
        )
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X, self.n_features_)
        # Trees may have seen different class subsets in their bootstrap;
        # align every tree's output onto the forest's class list.
        aggregate = np.zeros((X.shape[0], self.classes_.size))
        class_position = {label: i for i, label in enumerate(self.classes_)}
        for tree in self.trees_:
            probabilities = tree.predict_proba(X)
            columns = [class_position[label] for label in tree.classes_]
            aggregate[:, columns] += probabilities
        aggregate /= len(self.trees_)
        return aggregate


class RandomForestRegressor:
    """Bagged ensemble of CART regression trees.

    Used by the remaining-useful-life extension
    (:mod:`repro.core.rul`); mirrors the classifier's configuration.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("invalid shapes for RandomForestRegressor")
        if not (np.all(np.isfinite(X)) and np.all(np.isfinite(y))):
            raise ValueError("inputs contain NaN or infinite values")
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        n_samples = X.shape[0]
        self.trees_ = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample = rng.integers(0, n_samples, size=n_samples)
            else:
                sample = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "trees_"):
            raise RuntimeError("RandomForestRegressor is not fitted yet")
        X = check_X(X, self.n_features_)
        return np.mean([tree.predict(X) for tree in self.trees_], axis=0)
