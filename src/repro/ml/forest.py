"""Random forest classifier — the paper's best-performing algorithm.

Bootstrap-sampled CART trees with per-node feature subsampling, averaged
class probabilities. The paper finds tree ensembles degrade most
gracefully on the discontinuous CSS telemetry (§IV-(3)).

Tree growing is embarrassingly parallel: every tree's bootstrap sample
and seed are pre-derived from the master RNG in a fixed order, then the
fits fan out over :class:`repro.parallel.ParallelExecutor`. Because the
randomness is hoisted out of the (possibly out-of-order) workers, the
fitted forest is bit-identical at every ``n_jobs``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.arena import ForestArena, cached_arena, exact_mode
from repro.ml.base import BaseClassifier, check_X, check_X_y
from repro.ml.binning import BinnedDataset, get_binned
from repro.ml.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    _check_split_algorithm,
)
from repro.obs import inc_counter, trace_span
from repro.parallel import ParallelExecutor, SharedPayload, share


def _derive_tree_plans(
    rng: np.random.Generator, n_estimators: int, n_samples: int, bootstrap: bool
) -> list[tuple[np.ndarray, int]]:
    """Pre-draw every tree's (bootstrap sample, seed) in serial RNG order."""
    plans = []
    for _ in range(n_estimators):
        if bootstrap:
            sample = rng.integers(0, n_samples, size=n_samples)
        else:
            sample = np.arange(n_samples)
        plans.append((sample, int(rng.integers(0, 2**31 - 1))))
    return plans


def _tree_binned(binned: BinnedDataset | None, sample: np.ndarray):
    """Bootstrap view of the forest's shared binned dataset (hist only).

    A uint8 row gather — the expensive quantile binning happened once in
    the parent and reached this worker copy-on-write.
    """
    if binned is None:
        return None
    return binned.take(sample)


def _fit_classifier_tree(
    data: SharedPayload, sample: np.ndarray, seed: int, params: dict
) -> DecisionTreeClassifier:
    with trace_span("forest.fit_tree"):
        X, y, binned = data.get()
        tree = DecisionTreeClassifier(seed=seed, **params)
        tree.fit(X[sample], y[sample], binned=_tree_binned(binned, sample))
    inc_counter("forest_trees_fitted_total")
    return tree


def _fit_regressor_tree(
    data: SharedPayload, sample: np.ndarray, seed: int, params: dict
) -> DecisionTreeRegressor:
    with trace_span("forest.fit_tree"):
        X, y, binned = data.get()
        tree = DecisionTreeRegressor(seed=seed, **params)
        tree.fit(X[sample], y[sample], binned=_tree_binned(binned, sample))
    inc_counter("forest_trees_fitted_total")
    return tree


class RandomForestClassifier(BaseClassifier):
    """Bagged ensemble of decorrelated CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Passed to every member tree. ``max_features="sqrt"`` is the
        standard forest default.
    bootstrap:
        Draw each tree's training set with replacement when True.
    class_weight:
        ``None``, ``"balanced"``, or a label -> weight dict; passed to
        every member tree (cost-sensitive forests, cf. CSLE [24]).
    split_algorithm:
        ``"exact"`` (default) or ``"hist"`` — histogram split search
        over a quantile-binned dataset computed once per fit and shared
        by every tree (see :mod:`repro.ml.binning`).
    seed:
        Master seed; each tree derives its own stream.
    n_jobs:
        Worker processes for tree fitting; 1 is serial, -1 uses every
        core. Any value yields the same fitted forest.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        class_weight=None,
        split_algorithm: str = "exact",
        seed: int = 0,
        n_jobs: int = 1,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.class_weight = class_weight
        self.split_algorithm = _check_split_algorithm(split_algorithm)
        self.seed = seed
        self.n_jobs = n_jobs

    def fit(
        self, X: np.ndarray, y: np.ndarray, binned: BinnedDataset | None = None
    ) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        if X.ndim != 2:
            raise ValueError("RandomForestClassifier expects 2-D input")
        self.classes_ = np.unique(y)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        plans = _derive_tree_plans(rng, self.n_estimators, X.shape[0], self.bootstrap)
        params = {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "class_weight": self.class_weight,
            "split_algorithm": self.split_algorithm,
        }
        # Quantile-bin once in the parent; every tree (and every fork
        # worker, via copy-on-write) reuses the same codes.
        if self.split_algorithm == "hist" and binned is None:
            binned = get_binned(X)
        elif self.split_algorithm != "hist":
            binned = None
        with trace_span("forest.fit"), share((X, y, binned)) as data:
            self.trees_ = ParallelExecutor(self.n_jobs).starmap(
                _fit_classifier_tree,
                [(data, sample, seed, params) for sample, seed in plans],
            )

        self.feature_importances_ = np.mean(
            [tree.feature_importances_ for tree in self.trees_], axis=0
        )
        # Trees may have seen different class subsets in their bootstrap;
        # precompute each tree's column alignment onto the forest's class
        # list once instead of rebuilding it on every predict_proba call.
        self._tree_columns_ = self._align_tree_columns()
        self.bin_edges_ = binned.bin_edges if binned is not None else None
        self._arena_ = None
        return self

    def _align_tree_columns(self) -> list[np.ndarray]:
        class_position = {label: i for i, label in enumerate(self.classes_)}
        return [
            np.array([class_position[label] for label in tree.classes_], dtype=np.intp)
            for tree in self.trees_
        ]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X, self.n_features_)
        tree_columns = getattr(self, "_tree_columns_", None)
        if tree_columns is None:  # forests unpickled from older checkpoints
            tree_columns = self._tree_columns_ = self._align_tree_columns()
        if exact_mode():
            aggregate = np.zeros((X.shape[0], self.classes_.size))
            for tree, columns in zip(self.trees_, tree_columns):
                aggregate[:, columns] += tree.predict_proba(X)
            aggregate /= len(self.trees_)
            return aggregate
        arena = cached_arena(
            self,
            lambda: ForestArena.from_trees(
                [tree.tree_ for tree in self.trees_],
                self.n_features_,
                n_outputs=self.classes_.size,
                tree_columns=tree_columns,
            ),
        )
        return arena.predict_mean(X)


class RandomForestRegressor:
    """Bagged ensemble of CART regression trees.

    Used by the remaining-useful-life extension
    (:mod:`repro.core.rul`); mirrors the classifier's configuration,
    including bit-identical parallel fitting via ``n_jobs``.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        split_algorithm: str = "exact",
        seed: int = 0,
        n_jobs: int = 1,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.split_algorithm = _check_split_algorithm(split_algorithm)
        self.seed = seed
        self.n_jobs = n_jobs

    def fit(
        self, X: np.ndarray, y: np.ndarray, binned: BinnedDataset | None = None
    ) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("invalid shapes for RandomForestRegressor")
        if not (np.all(np.isfinite(X)) and np.all(np.isfinite(y))):
            raise ValueError("inputs contain NaN or infinite values")
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        plans = _derive_tree_plans(rng, self.n_estimators, X.shape[0], self.bootstrap)
        params = {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "split_algorithm": self.split_algorithm,
        }
        if self.split_algorithm == "hist" and binned is None:
            binned = get_binned(X)
        elif self.split_algorithm != "hist":
            binned = None
        with trace_span("forest.fit"), share((X, y, binned)) as data:
            self.trees_ = ParallelExecutor(self.n_jobs).starmap(
                _fit_regressor_tree,
                [(data, sample, seed, params) for sample, seed in plans],
            )
        self.bin_edges_ = binned.bin_edges if binned is not None else None
        self._arena_ = None
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "trees_"):
            raise RuntimeError("RandomForestRegressor is not fitted yet")
        X = check_X(X, self.n_features_)
        if exact_mode():
            return np.mean([tree.predict(X) for tree in self.trees_], axis=0)
        arena = cached_arena(
            self,
            lambda: ForestArena.from_trees(
                [tree.tree_ for tree in self.trees_], self.n_features_
            ),
        )
        return np.mean(arena.predict_stack(X), axis=0)
