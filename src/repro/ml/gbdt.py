"""Gradient-boosted decision trees with binomial deviance loss.

The paper evaluates GBDT as one of its five MFPA algorithms. This
implementation boosts shallow regression trees on the logistic-loss
gradient, with shrinkage and optional stochastic row subsampling.
"""

from __future__ import annotations

import numpy as np

from repro.ml.arena import ForestArena, cached_arena, exact_mode
from repro.ml.base import BaseClassifier, check_X, check_X_y
from repro.ml.binning import BinnedDataset, get_binned
from repro.ml.tree import DecisionTreeRegressor, _check_split_algorithm
from repro.obs import inc_counter, trace_span


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


class GradientBoostingClassifier(BaseClassifier):
    """Binary gradient boosting on shallow CART regression trees.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth:
        Depth of each weak learner (paper-typical: 3).
    subsample:
        Fraction of rows sampled (without replacement) per round;
        ``1.0`` disables stochastic boosting.
    min_samples_leaf:
        Leaf-size floor for the weak learners.
    split_algorithm:
        ``"exact"`` (default) or ``"hist"``. With ``"hist"`` the feature
        matrix is quantile-binned once and every boosting round reuses
        the codes — residuals change each round, the bins do not.
    seed:
        RNG seed for subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        min_samples_leaf: int = 1,
        split_algorithm: str = "exact",
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.split_algorithm = _check_split_algorithm(split_algorithm)
        self.seed = seed

    def fit(
        self, X: np.ndarray, y: np.ndarray, binned: BinnedDataset | None = None
    ) -> "GradientBoostingClassifier":
        with trace_span("gbdt.fit"):
            self._fit(X, y, binned)
        inc_counter("gbdt_boosting_rounds_total", len(self.trees_))
        return self

    def _fit(
        self, X: np.ndarray, y: np.ndarray, binned: BinnedDataset | None = None
    ) -> None:
        X, y = check_X_y(X, y)
        if X.ndim != 2:
            raise ValueError("GradientBoostingClassifier expects 2-D input")
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError("GradientBoostingClassifier is binary")
        self.n_features_ = X.shape[1]
        targets = (y == self.classes_[1]).astype(float)

        # Initial raw score: log-odds of the positive class.
        positive_rate = np.clip(targets.mean(), 1e-9, 1 - 1e-9)
        self.initial_score_ = float(np.log(positive_rate / (1 - positive_rate)))
        raw = np.full(X.shape[0], self.initial_score_)

        rng = np.random.default_rng(self.seed)
        n_samples = X.shape[0]
        subsample_size = max(1, int(round(self.subsample * n_samples)))
        # Bin once; all boosting rounds reuse the codes (the residual
        # targets change, the feature matrix never does).
        if self.split_algorithm == "hist" and binned is None:
            binned = get_binned(X)
        elif self.split_algorithm != "hist":
            binned = None
        self.trees_: list[DecisionTreeRegressor] = []
        self.train_deviance_: list[float] = []
        # One sigmoid per boosting round: the probabilities used for this
        # round's deviance are exactly next round's residual base, so
        # carry them across iterations instead of recomputing _sigmoid(raw)
        # at the top of every loop.
        probabilities = _sigmoid(raw)
        for _ in range(self.n_estimators):
            residuals = targets - probabilities
            if self.subsample < 1.0:
                rows = rng.choice(n_samples, size=subsample_size, replace=False)
            else:
                rows = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                split_algorithm=self.split_algorithm,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            if binned is None:
                tree.fit(X[rows], residuals[rows])
            elif self.subsample < 1.0:
                tree.fit(X[rows], residuals[rows], binned=binned.take(rows))
            else:
                # rows is the identity permutation; skip the row gather.
                tree.fit(X, residuals, binned=binned)
            raw += self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
            probabilities = _sigmoid(raw)
            clipped = np.clip(probabilities, 1e-12, 1 - 1e-12)
            deviance = -np.mean(
                targets * np.log(clipped) + (1 - targets) * np.log(1 - clipped)
            )
            self.train_deviance_.append(float(deviance))
        self.bin_edges_ = binned.bin_edges if binned is not None else None
        self._arena_ = None

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw additive score (log-odds scale)."""
        self._check_fitted()
        X = check_X(X, self.n_features_)
        if exact_mode():
            raw = np.full(X.shape[0], self.initial_score_)
            for tree in self.trees_:
                raw += self.learning_rate * tree.predict(X)
            return raw
        arena = cached_arena(
            self,
            lambda: ForestArena.from_trees(
                [tree.tree_ for tree in self.trees_], self.n_features_
            ),
        )
        return arena.predict_raw(X, self.initial_score_, self.learning_rate)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])
