"""Isolation forest — unsupervised anomaly baseline.

Some prior storage-failure work detects anomalies without labels; this
from-scratch isolation forest (Liu et al. 2008) serves as the
unsupervised comparator: it never sees failure labels yet should score
degraded drives as anomalous. Exposed with the same ``predict_proba``
surface as the supervised models so it drops into the evaluation
harness (scores are anomaly degrees, not calibrated probabilities).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y


def _average_path_length(n: int | np.ndarray) -> np.ndarray:
    """Expected unsuccessful-search path length in a BST of n points."""
    n = np.asarray(n, dtype=float)
    result = np.zeros_like(n)
    valid = n > 1
    harmonic = np.log(n[valid] - 1) + np.euler_gamma
    result[valid] = 2.0 * harmonic - 2.0 * (n[valid] - 1) / n[valid]
    return result


class _IsolationTree:
    """One random isolation tree stored as parallel arrays."""

    def __init__(self, X: np.ndarray, height_limit: int, rng: np.random.Generator):
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.size: list[int] = []
        self.depth: list[int] = []
        self._grow(X, np.arange(X.shape[0]), 0, height_limit, rng)
        self.feature_arr = np.asarray(self.feature)
        self.threshold_arr = np.asarray(self.threshold)
        self.left_arr = np.asarray(self.left)
        self.right_arr = np.asarray(self.right)
        self.size_arr = np.asarray(self.size)
        self.depth_arr = np.asarray(self.depth)

    def _grow(self, X, indices, depth, height_limit, rng) -> int:
        node = len(self.feature)
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.size.append(int(indices.size))
        self.depth.append(depth)
        if depth >= height_limit or indices.size <= 1:
            return node
        candidates = np.flatnonzero(
            X[indices].min(axis=0) < X[indices].max(axis=0)
        )
        if candidates.size == 0:
            return node
        feature = int(rng.choice(candidates))
        low = X[indices, feature].min()
        high = X[indices, feature].max()
        threshold = float(rng.uniform(low, high))
        go_left = X[indices, feature] <= threshold
        left = self._grow(X, indices[go_left], depth + 1, height_limit, rng)
        right = self._grow(X, indices[~go_left], depth + 1, height_limit, rng)
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.left[node] = left
        self.right[node] = right
        return node

    def path_length(self, X: np.ndarray) -> np.ndarray:
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_arr[nodes] != -1
        while np.any(active):
            rows = np.flatnonzero(active)
            current = nodes[rows]
            go_left = X[rows, self.feature_arr[current]] <= self.threshold_arr[current]
            nodes[rows] = np.where(
                go_left, self.left_arr[current], self.right_arr[current]
            )
            active[rows] = self.feature_arr[nodes[rows]] != -1
        return self.depth_arr[nodes] + _average_path_length(self.size_arr[nodes])


class IsolationForest(BaseClassifier):
    """Unsupervised anomaly scorer with a classifier-compatible surface.

    ``fit(X, y)`` ignores ``y`` beyond remembering the class labels so
    ``predict_proba`` can emit an (anomaly, normal)-shaped matrix;
    ``anomaly_score`` is the standard ``2^(-E[h(x)]/c(n))`` in (0, 1].

    Parameters
    ----------
    n_estimators / max_samples:
        Ensemble size and per-tree subsample.
    contamination:
        Expected anomaly fraction; sets the ``predict`` cutoff at the
        corresponding training-score quantile.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 256,
        contamination: float = 0.05,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        if not 0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.contamination = contamination
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "IsolationForest":
        if y is None:
            y = np.zeros(np.asarray(X).shape[0], dtype=int)
        X, y = check_X_y(X, y)
        if X.ndim != 2:
            raise ValueError("IsolationForest expects 2-D input")
        labels = np.unique(y)
        self.classes_ = labels if labels.size == 2 else np.array([0, 1])
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        sample_size = min(self.max_samples, X.shape[0])
        height_limit = int(np.ceil(np.log2(max(sample_size, 2))))
        self.trees_ = []
        for _ in range(self.n_estimators):
            rows = rng.choice(X.shape[0], size=sample_size, replace=False)
            self.trees_.append(_IsolationTree(X[rows], height_limit, rng))
        self._normalizer = float(_average_path_length(np.array([sample_size]))[0])
        self.offset_ = float(
            np.quantile(self.anomaly_score(X), 1.0 - self.contamination)
        )
        return self

    def anomaly_score(self, X: np.ndarray) -> np.ndarray:
        """Scores in (0, 1]; higher = more anomalous."""
        self._check_fitted()
        X = check_X(X, self.n_features_)
        mean_path = np.mean([tree.path_length(X) for tree in self.trees_], axis=0)
        return 2.0 ** (-mean_path / self._normalizer)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = self.anomaly_score(X)
        return np.column_stack([1.0 - scores, scores])

    def predict(self, X: np.ndarray) -> np.ndarray:
        flagged = self.anomaly_score(X) >= self.offset_
        return self.classes_[flagged.astype(int)]
