"""L2-regularized logistic regression (gradient descent + momentum).

A standard baseline in the disk-failure literature (several of the
paper's §II citations evaluate it alongside trees and SVMs). Trained
full-batch with Nesterov-style momentum on the regularized
cross-entropy; inputs are standardized internally like the SVM's.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


class LogisticRegression(BaseClassifier):
    """Binary logistic regression.

    Parameters
    ----------
    C:
        Inverse L2 regularization strength.
    learning_rate / n_iterations:
        Full-batch gradient descent configuration.
    momentum:
        Nesterov momentum coefficient.
    class_weight:
        ``None``, ``"balanced"`` or a label -> weight dict; reweights
        the per-sample loss (cost-sensitive fitting).
    tolerance:
        Early-stop threshold on the gradient norm.
    """

    def __init__(
        self,
        C: float = 1.0,
        learning_rate: float = 0.1,
        n_iterations: int = 500,
        momentum: float = 0.9,
        class_weight=None,
        tolerance: float = 1e-6,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if n_iterations < 1:
            raise ValueError("n_iterations must be at least 1")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.C = C
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.momentum = momentum
        self.class_weight = class_weight
        self.tolerance = tolerance

    def _weights(self, y: np.ndarray, targets: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones(y.size)
        if self.class_weight == "balanced":
            positive_share = targets.mean()
            weight_positive = 0.5 / max(positive_share, 1e-12)
            weight_negative = 0.5 / max(1 - positive_share, 1e-12)
            return np.where(targets == 1, weight_positive, weight_negative)
        if isinstance(self.class_weight, dict):
            try:
                per_class = {label: float(w) for label, w in self.class_weight.items()}
                return np.array([per_class[label] for label in y])
            except KeyError as error:
                raise ValueError(
                    f"class_weight is missing label {error.args[0]!r}"
                ) from error
        raise ValueError(f"invalid class_weight: {self.class_weight!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        if X.ndim != 2:
            raise ValueError("LogisticRegression expects 2-D input")
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError("LogisticRegression is binary")
        targets = (y == self.classes_[1]).astype(float)
        sample_weight = self._weights(y, targets)
        sample_weight = sample_weight / sample_weight.mean()

        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        self._scale = np.where(scale == 0, 1.0, scale)
        Xs = (X - self._mean) / self._scale

        n_samples, n_features = Xs.shape
        lam = 1.0 / (self.C * n_samples)
        weights = np.zeros(n_features)
        bias = 0.0
        velocity_w = np.zeros(n_features)
        velocity_b = 0.0
        self.loss_history_ = []
        for _ in range(self.n_iterations):
            probabilities = _sigmoid(Xs @ weights + bias)
            error = sample_weight * (probabilities - targets)
            gradient_w = Xs.T @ error / n_samples + lam * weights
            gradient_b = float(error.mean())
            velocity_w = self.momentum * velocity_w - self.learning_rate * gradient_w
            velocity_b = self.momentum * velocity_b - self.learning_rate * gradient_b
            weights += velocity_w
            bias += velocity_b
            clipped = np.clip(probabilities, 1e-12, 1 - 1e-12)
            loss = -np.mean(
                sample_weight
                * (targets * np.log(clipped) + (1 - targets) * np.log(1 - clipped))
            ) + 0.5 * lam * float(weights @ weights)
            self.loss_history_.append(float(loss))
            if np.linalg.norm(gradient_w) < self.tolerance:
                break
        self.coef_ = weights
        self.intercept_ = bias
        self.n_features_ = n_features
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X, self.n_features_)
        Xs = (X - self._mean) / self._scale
        return Xs @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])
