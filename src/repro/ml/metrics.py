"""Classification metrics used throughout the paper's evaluation.

The paper reports ACC, TPR, FPR, AUC and introduces PDR (positive
detection rate, the fraction of all samples flagged positive). All
functions treat label ``1`` as the positive (faulty) class unless told
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, positive_label: int = 1
) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, fn, tn)`` counts for a binary problem."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred have different shapes: {y_true.shape} vs {y_pred.shape}"
        )
    actual_positive = y_true == positive_label
    predicted_positive = y_pred == positive_label
    tp = int(np.sum(actual_positive & predicted_positive))
    fp = int(np.sum(~actual_positive & predicted_positive))
    fn = int(np.sum(actual_positive & ~predicted_positive))
    tn = int(np.sum(~actual_positive & ~predicted_positive))
    return tp, fp, fn, tn


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """ACC = (TP + TN) / all."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return float(np.mean(y_true == y_pred))


def true_positive_rate(
    y_true: np.ndarray, y_pred: np.ndarray, positive_label: int = 1
) -> float:
    """TPR (recall) = TP / (TP + FN). Returns NaN if there are no positives."""
    tp, _, fn, _ = confusion_matrix(y_true, y_pred, positive_label)
    if tp + fn == 0:
        return float("nan")
    return tp / (tp + fn)


def false_positive_rate(
    y_true: np.ndarray, y_pred: np.ndarray, positive_label: int = 1
) -> float:
    """FPR = FP / (FP + TN). Returns NaN if there are no negatives."""
    _, fp, _, tn = confusion_matrix(y_true, y_pred, positive_label)
    if fp + tn == 0:
        return float("nan")
    return fp / (fp + tn)


def positive_detection_rate(
    y_true: np.ndarray, y_pred: np.ndarray, positive_label: int = 1
) -> float:
    """PDR = (TP + FP) / all — the fraction of the fleet flagged positive.

    Introduced by the paper to quantify how much data migration a
    deployment would trigger.
    """
    tp, fp, fn, tn = confusion_matrix(y_true, y_pred, positive_label)
    total = tp + fp + fn + tn
    if total == 0:
        raise ValueError("cannot compute PDR of zero samples")
    return (tp + fp) / total


def precision(y_true: np.ndarray, y_pred: np.ndarray, positive_label: int = 1) -> float:
    """Precision = TP / (TP + FP). Returns NaN if nothing was flagged."""
    tp, fp, _, _ = confusion_matrix(y_true, y_pred, positive_label)
    if tp + fp == 0:
        return float("nan")
    return tp / (tp + fp)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, positive_label: int = 1) -> float:
    """Harmonic mean of precision and TPR."""
    p = precision(y_true, y_pred, positive_label)
    r = true_positive_rate(y_true, y_pred, positive_label)
    if np.isnan(p) or np.isnan(r) or p + r == 0:
        return float("nan")
    return 2 * p * r / (p + r)


def roc_curve(
    y_true: np.ndarray, y_score: np.ndarray, positive_label: int = 1
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(fpr, tpr, thresholds)`` sweeping the decision threshold.

    Thresholds are the distinct scores in decreasing order; the curve is
    anchored at (0, 0) with an initial ``+inf`` threshold.
    """
    y_true = np.asarray(y_true)
    y_score = np.asarray(y_score, dtype=float)
    if y_true.shape != y_score.shape:
        raise ValueError("y_true and y_score must have the same shape")
    positives = y_true == positive_label
    n_positive = int(np.sum(positives))
    n_negative = positives.size - n_positive
    if n_positive == 0 or n_negative == 0:
        raise ValueError("ROC requires at least one positive and one negative sample")

    order = np.argsort(-y_score, kind="stable")
    sorted_scores = y_score[order]
    sorted_positives = positives[order]

    # Cut only where the score changes, so tied scores share a point.
    distinct = np.where(np.diff(sorted_scores))[0]
    cut_indices = np.concatenate([distinct, [sorted_scores.size - 1]])

    cumulative_tp = np.cumsum(sorted_positives)
    cumulative_fp = np.cumsum(~sorted_positives)
    tpr = np.concatenate([[0.0], cumulative_tp[cut_indices] / n_positive])
    fpr = np.concatenate([[0.0], cumulative_fp[cut_indices] / n_negative])
    thresholds = np.concatenate([[np.inf], sorted_scores[cut_indices]])
    return fpr, tpr, thresholds


def auc_score(y_true: np.ndarray, y_score: np.ndarray, positive_label: int = 1) -> float:
    """Area under the ROC curve via the trapezoid rule."""
    fpr, tpr, _ = roc_curve(y_true, y_score, positive_label)
    return float(np.trapezoid(tpr, fpr))


@dataclass(frozen=True)
class ClassificationReport:
    """The metric bundle the paper reports for every experiment."""

    tp: int
    fp: int
    fn: int
    tn: int
    accuracy: float
    tpr: float
    fpr: float
    pdr: float
    auc: float

    @property
    def n_samples(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    def as_dict(self) -> dict[str, float]:
        return {
            "ACC": self.accuracy,
            "TPR": self.tpr,
            "FPR": self.fpr,
            "PDR": self.pdr,
            "AUC": self.auc,
        }

    def __str__(self) -> str:
        return (
            f"ACC={self.accuracy:.4f} TPR={self.tpr:.4f} "
            f"FPR={self.fpr:.4f} PDR={self.pdr:.4f} AUC={self.auc:.4f}"
        )


def classification_report(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    y_score: np.ndarray | None = None,
    positive_label: int = 1,
) -> ClassificationReport:
    """Compute the full paper-style metric bundle.

    ``y_score`` (probability of the positive class) is needed for AUC;
    without it the hard predictions are used as a degenerate score.
    """
    tp, fp, fn, tn = confusion_matrix(y_true, y_pred, positive_label)
    if y_score is None:
        y_score = (np.asarray(y_pred) == positive_label).astype(float)
    try:
        auc = auc_score(y_true, y_score, positive_label)
    except ValueError:
        auc = float("nan")
    return ClassificationReport(
        tp=tp,
        fp=fp,
        fn=fn,
        tn=tn,
        accuracy=accuracy(y_true, y_pred),
        tpr=true_positive_rate(y_true, y_pred, positive_label),
        fpr=false_positive_rate(y_true, y_pred, positive_label),
        pdr=positive_detection_rate(y_true, y_pred, positive_label),
        auc=auc,
    )
