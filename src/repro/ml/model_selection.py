"""Hyperparameter search and generic cross-validation splitters.

The paper tunes each algorithm with grid search combined with its
time-series cross-validation (§III-C(4)). The splitter is pluggable so
the same grid search runs with either the naive k-fold here or
:class:`repro.core.splitting.TimeSeriesCrossValidator`.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.ml.base import BaseClassifier, clone
from repro.ml.binning import get_binned
from repro.ml.metrics import accuracy
from repro.obs import inc_counter, observe_histogram, trace_span
from repro.parallel import ParallelExecutor, SharedPayload, share

Splitter = Callable[[np.ndarray, np.ndarray], Iterable[tuple[np.ndarray, np.ndarray]]]


def mean_defined_score(scores) -> float:
    """Mean over the *defined* (non-NaN) fold scores.

    A fold whose score is undefined — e.g. :func:`repro.core.selection.
    youden_score` on a fold with no positives — is skipped rather than
    dragged in as 0, so one degenerate fold cannot mask a good
    candidate. All-NaN folds yield NaN (the candidate is unrankable).
    """
    scores = np.asarray(scores, dtype=float)
    defined = scores[~np.isnan(scores)]
    if defined.size == 0:
        return float("nan")
    return float(defined.mean())


def _uses_hist(estimator: BaseClassifier) -> bool:
    return getattr(estimator, "split_algorithm", "exact") == "hist"


def _prewarm_fold_bins(X: np.ndarray, folds) -> None:
    """Bin every CV train fold once, parent-side, before any fan-out.

    Edges are fitted on the train fold only (no future leak — the same
    guard ``TimeSeriesCrossValidator`` enforces on the fold geometry).
    Every later (candidate, fold) fit looks the entry up by fingerprint:
    a hit in-process at ``n_jobs=1``, and a hit through the fork-
    inherited copy-on-write cache inside pool workers.
    """
    for train_indices, _ in folds:
        get_binned(X, train_indices)


def _fit_and_score_fold(
    data: SharedPayload,
    estimator: BaseClassifier,
    train_indices: np.ndarray,
    validation_indices: np.ndarray,
    scoring: Callable[[np.ndarray, np.ndarray], float],
) -> float:
    """One (estimator, fold) evaluation; the unit of CV parallelism."""
    started = time.perf_counter()
    with trace_span("cv.fit_fold"):
        X, y = data.get()
        model = clone(estimator)
        if _uses_hist(model):
            model.fit(
                X[train_indices],
                y[train_indices],
                binned=get_binned(X, train_indices),
            )
        else:
            model.fit(X[train_indices], y[train_indices])
        predictions = model.predict(X[validation_indices])
        score = float(scoring(y[validation_indices], predictions))
    observe_histogram("cv_fold_fit_seconds", time.perf_counter() - started)
    return score


class ParameterGrid:
    """Iterate over the cartesian product of a parameter grid dict."""

    def __init__(self, grid: Mapping[str, Sequence]):
        if not grid:
            raise ValueError("parameter grid must not be empty")
        for name, values in grid.items():
            if len(values) == 0:
                raise ValueError(f"parameter {name!r} has no candidate values")
        self.grid = dict(grid)

    def __iter__(self) -> Iterator[dict]:
        names = sorted(self.grid)
        for combination in itertools.product(*(self.grid[name] for name in names)):
            yield dict(zip(names, combination))

    def __len__(self) -> int:
        product = 1
        for values in self.grid.values():
            product *= len(values)
        return product


class KFold:
    """Plain (non-temporal) k-fold splitter — the paper's strawman.

    Shuffling mixes future and past records, which is exactly the leakage
    the time-series CV of Fig. 8(b) avoids; the ablation benches compare
    the two.
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(
        self, X: np.ndarray, y: np.ndarray | None = None
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n_samples = np.asarray(X).shape[0]
        if n_samples < self.n_splits:
            raise ValueError(f"cannot split {n_samples} samples into {self.n_splits} folds")
        indices = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for held_out in range(self.n_splits):
            validation = folds[held_out]
            training = np.concatenate(
                [folds[i] for i in range(self.n_splits) if i != held_out]
            )
            yield training, validation


def cross_val_score(
    estimator: BaseClassifier,
    X: np.ndarray,
    y: np.ndarray,
    splitter,
    scoring: Callable[[np.ndarray, np.ndarray], float] = accuracy,
    n_jobs: int = 1,
) -> np.ndarray:
    """Score a fresh clone of ``estimator`` on every CV fold.

    With ``n_jobs > 1`` the folds are fitted on a worker pool; ``X``/``y``
    are handed to the workers fork-inherited (never pickled per fold) and
    the scores come back in fold order, identical to the serial run.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    folds = list(splitter.split(X, y))
    if _uses_hist(estimator):
        _prewarm_fold_bins(X, folds)
    with share((X, y)) as data:
        scores = ParallelExecutor(n_jobs).starmap(
            _fit_and_score_fold,
            [(data, estimator, train, validation, scoring) for train, validation in folds],
        )
    return np.asarray(scores)


class GridSearchCV:
    """Exhaustive hyperparameter search over a CV splitter.

    Parameters
    ----------
    estimator:
        Prototype estimator; cloned for every (candidate, fold) pair.
    param_grid:
        Mapping of parameter name to candidate values.
    splitter:
        Object with ``split(X, y)`` yielding (train, validation) index
        pairs — e.g. :class:`KFold` or the MFPA time-series CV.
    scoring:
        ``scoring(y_true, y_pred) -> float``; higher is better.
    refit:
        When True, refit the best candidate on all data after the search.
    n_jobs:
        Worker processes; the search fans out over every
        (candidate, fold) pair at once, so even a two-candidate grid
        saturates the pool when the splitter has several folds. Results
        (``results_``, ``best_params_``) are identical at every value.
    """

    def __init__(
        self,
        estimator: BaseClassifier,
        param_grid: Mapping[str, Sequence],
        splitter,
        scoring: Callable[[np.ndarray, np.ndarray], float] = accuracy,
        refit: bool = True,
        n_jobs: int = 1,
    ):
        self.estimator = estimator
        self.param_grid = ParameterGrid(param_grid)
        self.splitter = splitter
        self.scoring = scoring
        self.refit = refit
        self.n_jobs = n_jobs

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearchCV":
        with trace_span("grid_search.fit"):
            return self._fit(np.asarray(X), np.asarray(y))

    def _fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearchCV":
        candidates = list(self.param_grid)
        folds = list(self.splitter.split(X, y))
        # Counted parent-side so the totals are exact at every n_jobs,
        # even when metric capture (worker shipping) is off.
        inc_counter("mfpa_grid_search_candidates_total", len(candidates))
        inc_counter("mfpa_grid_search_fits_total", len(candidates) * len(folds))
        if _uses_hist(self.estimator) or any(
            params.get("split_algorithm") == "hist" for params in candidates
        ):
            _prewarm_fold_bins(X, folds)
        with share((X, y)) as data:
            flat_scores = ParallelExecutor(self.n_jobs).starmap(
                _fit_and_score_fold,
                [
                    (
                        data,
                        clone(self.estimator).set_params(**params),
                        train,
                        validation,
                        self.scoring,
                    )
                    for params in candidates
                    for train, validation in folds
                ],
            )

        self.results_: list[dict] = []
        best_score = -np.inf
        best_params: dict = {}
        for index, params in enumerate(candidates):
            fold_scores = flat_scores[index * len(folds) : (index + 1) * len(folds)]
            mean_score = mean_defined_score(fold_scores)
            self.results_.append(
                {
                    "params": params,
                    "mean_score": mean_score,
                    "fold_scores": list(fold_scores),
                }
            )
            if mean_score > best_score:
                best_score = mean_score
                best_params = params
        self.best_score_ = best_score
        self.best_params_ = best_params
        if self.refit:
            self.best_estimator_ = clone(self.estimator).set_params(**best_params)
            self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "best_estimator_"):
            raise RuntimeError("GridSearchCV is not fitted (or refit=False)")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "best_estimator_"):
            raise RuntimeError("GridSearchCV is not fitted (or refit=False)")
        return self.best_estimator_.predict_proba(X)
