"""Gaussian naive Bayes classifier (the paper's "Bayes" algorithm)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y


class GaussianNaiveBayes(BaseClassifier):
    """Naive Bayes with per-class Gaussian feature likelihoods.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every variance
        to keep likelihoods finite for near-constant features (SMART
        attributes like *Available Spare Threshold* barely move on
        healthy drives).
    """

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X, y = check_X_y(X, y)
        if X.ndim != 2:
            raise ValueError("GaussianNaiveBayes expects 2-D input")
        self.classes_ = np.unique(y)
        n_classes = self.classes_.size
        n_features = X.shape[1]

        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_log_prior_ = np.zeros(n_classes)
        epsilon = self.var_smoothing * max(float(X.var(axis=0).max()), 1e-12)
        for index, label in enumerate(self.classes_):
            members = X[y == label]
            self.theta_[index] = members.mean(axis=0)
            self.var_[index] = members.var(axis=0) + epsilon
            self.class_log_prior_[index] = np.log(members.shape[0] / X.shape[0])
        self.n_features_ = n_features
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X, self.n_features_)
        # log N(x | mu, var) summed over features, per class.
        log_likelihood = -0.5 * (
            np.log(2.0 * np.pi * self.var_)[None, :, :]
            + (X[:, None, :] - self.theta_[None, :, :]) ** 2 / self.var_[None, :, :]
        ).sum(axis=2)
        return log_likelihood + self.class_log_prior_[None, :]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        joint = self._joint_log_likelihood(X)
        joint -= joint.max(axis=1, keepdims=True)
        probabilities = np.exp(joint)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        return probabilities
