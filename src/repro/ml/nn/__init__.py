"""Minimal neural-network toolkit for the CNN_LSTM failure predictor.

Implements exactly the pieces the paper's deep model needs — 1-D
convolution, LSTM, dense layers, Adam — with explicit forward/backward
passes in numpy.
"""

from repro.ml.nn.cnn_lstm import CNNLSTMClassifier
from repro.ml.nn.layers import LSTM, Conv1D, Dense
from repro.ml.nn.lstm_classifier import LSTMClassifier
from repro.ml.nn.optimizers import SGD, Adam

__all__ = ["Adam", "CNNLSTMClassifier", "Conv1D", "Dense", "LSTM", "LSTMClassifier", "SGD"]
