"""The paper's CNN_LSTM failure predictor.

Architecture: Conv1D (temporal feature extraction) -> ReLU -> LSTM ->
last hidden state -> Dense -> sigmoid, trained with binary cross-entropy
and Adam. Accepts either 3-D sequence input ``(n, time, features)`` or
2-D input that is reshaped using ``time_steps`` — the latter keeps it
plug-compatible with the tabular estimators inside the MFPA pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y
from repro.ml.nn.layers import LSTM, Conv1D, Dense, LastTimestep, ReLU
from repro.ml.nn.optimizers import Adam


class CNNLSTMClassifier(BaseClassifier):
    """Binary CNN+LSTM classifier over feature sequences.

    Parameters
    ----------
    time_steps:
        When input is 2-D with ``t*f`` columns, it is reshaped to
        ``(n, time_steps, f)``; the column count must divide evenly.
    conv_channels / kernel_size:
        Conv1D configuration.
    hidden_size:
        LSTM hidden width.
    learning_rate / batch_size / n_epochs:
        Adam + mini-batch training configuration (the paper's tunable
        hyperparameters for the neural model).
    seed:
        Seed for weight init and batch shuffling.
    """

    def __init__(
        self,
        time_steps: int = 7,
        conv_channels: int = 16,
        kernel_size: int = 3,
        hidden_size: int = 32,
        learning_rate: float = 0.005,
        batch_size: int = 32,
        n_epochs: int = 30,
        seed: int = 0,
    ):
        if time_steps < 1:
            raise ValueError("time_steps must be at least 1")
        self.time_steps = time_steps
        self.conv_channels = conv_channels
        self.kernel_size = kernel_size
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.n_epochs = n_epochs
        self.seed = seed

    def _to_sequences(self, X: np.ndarray) -> np.ndarray:
        if X.ndim == 3:
            return X
        n_samples, n_columns = X.shape
        if n_columns % self.time_steps != 0:
            raise ValueError(
                f"{n_columns} columns not divisible by time_steps={self.time_steps}"
            )
        return X.reshape(n_samples, self.time_steps, n_columns // self.time_steps)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CNNLSTMClassifier":
        X, y = check_X_y(X, y)
        sequences = self._to_sequences(X)
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError("CNNLSTMClassifier is binary")
        targets = (y == self.classes_[1]).astype(float)

        # Standardize per feature channel across samples and time.
        flat = sequences.reshape(-1, sequences.shape[2])
        self._mean = flat.mean(axis=0)
        scale = flat.std(axis=0)
        self._scale = np.where(scale == 0, 1.0, scale)
        sequences = (sequences - self._mean) / self._scale

        rng = np.random.default_rng(self.seed)
        n_features = sequences.shape[2]
        self.n_features_ = X.shape[-1] if X.ndim == 2 else n_features
        self._layers = [
            Conv1D(n_features, self.conv_channels, self.kernel_size, rng),
            ReLU(),
            LSTM(self.conv_channels, self.hidden_size, rng),
            LastTimestep(),
            Dense(self.hidden_size, 1, rng),
        ]
        optimizer = Adam(learning_rate=self.learning_rate)
        params = [p for layer in self._layers for p in layer.params]
        grads = [g for layer in self._layers for g in layer.grads]

        n_samples = sequences.shape[0]
        self.loss_history_ = []
        for _ in range(self.n_epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            for start in range(0, n_samples, self.batch_size):
                batch = order[start : start + self.batch_size]
                activations = sequences[batch]
                for layer in self._layers:
                    activations = layer.forward(activations)
                logits = activations[:, 0]
                probabilities = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
                batch_targets = targets[batch]
                clipped = np.clip(probabilities, 1e-12, 1 - 1e-12)
                loss = -np.mean(
                    batch_targets * np.log(clipped)
                    + (1 - batch_targets) * np.log(1 - clipped)
                )
                epoch_loss += loss * batch.size
                # d(BCE)/d(logit) = p - y, averaged over the batch.
                grad = ((probabilities - batch_targets) / batch.size)[:, None]
                for layer in reversed(self._layers):
                    grad = layer.backward(grad)
                optimizer.step(params, grads)
            self.loss_history_.append(epoch_loss / n_samples)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        sequences = self._to_sequences(X)
        sequences = (sequences - self._mean) / self._scale
        activations = sequences
        for layer in self._layers:
            activations = layer.forward(activations)
        logits = activations[:, 0]
        positive = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
        return np.column_stack([1.0 - positive, positive])
