"""Layers with explicit forward/backward passes.

Every layer exposes ``params`` / ``grads`` (parallel lists of arrays) so
an optimizer can update them in place, plus ``forward(x)`` and
``backward(grad_output)`` where the backward pass consumes the cached
activations of the most recent forward pass.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))


class Layer:
    """Base layer; parameter-free layers inherit the empty lists."""

    params: list[np.ndarray]
    grads: list[np.ndarray]

    def __init__(self):
        self.params = []
        self.grads = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator):
        super().__init__()
        limit = np.sqrt(6.0 / (n_in + n_out))
        self.W = rng.uniform(-limit, limit, size=(n_in, n_out))
        self.b = np.zeros(n_out)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self.grads[0][...] = self._x.T @ grad_output
        self.grads[1][...] = grad_output.sum(axis=0)
        return grad_output @ self.W.T


class ReLU(Layer):
    """Elementwise rectifier."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class Conv1D(Layer):
    """1-D convolution along the time axis with 'same' zero padding.

    Input/output shape: ``(batch, time, channels)``. Implemented by
    unfolding time windows and contracting with einsum, which keeps both
    passes fully vectorized.
    """

    def __init__(
        self, n_in: int, n_out: int, kernel_size: int, rng: np.random.Generator
    ):
        super().__init__()
        if kernel_size < 1 or kernel_size % 2 == 0:
            raise ValueError("kernel_size must be a positive odd number")
        self.kernel_size = kernel_size
        limit = np.sqrt(6.0 / (n_in * kernel_size + n_out))
        self.W = rng.uniform(-limit, limit, size=(kernel_size, n_in, n_out))
        self.b = np.zeros(n_out)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]

    def _unfold(self, x: np.ndarray) -> np.ndarray:
        """Return windows of shape (batch, time, kernel, channels)."""
        pad = self.kernel_size // 2
        padded = np.pad(x, ((0, 0), (pad, pad), (0, 0)))
        batch, padded_time, channels = padded.shape
        time = x.shape[1]
        strides = padded.strides
        return np.lib.stride_tricks.as_strided(
            padded,
            shape=(batch, time, self.kernel_size, channels),
            strides=(strides[0], strides[1], strides[1], strides[2]),
            writeable=False,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        windows = self._unfold(x)
        self._windows = windows
        return np.einsum("btkc,kco->bto", windows, self.W) + self.b

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self.grads[0][...] = np.einsum("btkc,bto->kco", self._windows, grad_output)
        self.grads[1][...] = grad_output.sum(axis=(0, 1))
        # Gradient w.r.t. input: scatter each window contribution back.
        pad = self.kernel_size // 2
        grad_windows = np.einsum("bto,kco->btkc", grad_output, self.W)
        batch, time, channels = self._x.shape
        grad_padded = np.zeros((batch, time + 2 * pad, channels))
        for k in range(self.kernel_size):
            grad_padded[:, k : k + time] += grad_windows[:, :, k]
        return grad_padded[:, pad : pad + time]


class LSTM(Layer):
    """Single-layer LSTM returning the full hidden sequence.

    Input ``(batch, time, n_in)`` -> output ``(batch, time, n_hidden)``.
    Backward is full BPTT over the cached gate activations.
    """

    def __init__(self, n_in: int, n_hidden: int, rng: np.random.Generator):
        super().__init__()
        self.n_hidden = n_hidden
        limit = np.sqrt(6.0 / (n_in + n_hidden))
        self.Wx = rng.uniform(-limit, limit, size=(n_in, 4 * n_hidden))
        self.Wh = rng.uniform(-limit, limit, size=(n_hidden, 4 * n_hidden))
        self.b = np.zeros(4 * n_hidden)
        # Positive forget-gate bias: standard trick for stable training.
        self.b[n_hidden : 2 * n_hidden] = 1.0
        self.params = [self.Wx, self.Wh, self.b]
        self.grads = [np.zeros_like(p) for p in self.params]

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, time, _ = x.shape
        H = self.n_hidden
        h = np.zeros((batch, H))
        c = np.zeros((batch, H))
        self._cache = []
        self._x = x
        outputs = np.zeros((batch, time, H))
        for t in range(time):
            z = x[:, t] @ self.Wx + h @ self.Wh + self.b
            i = _sigmoid(z[:, :H])
            f = _sigmoid(z[:, H : 2 * H])
            g = np.tanh(z[:, 2 * H : 3 * H])
            o = _sigmoid(z[:, 3 * H :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            self._cache.append((h, c, i, f, g, o, tanh_c))
            h, c = h_new, c_new
            outputs[:, t] = h
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, time, _ = self._x.shape
        H = self.n_hidden
        for grad in self.grads:
            grad[...] = 0.0
        grad_x = np.zeros_like(self._x)
        grad_h_next = np.zeros((batch, H))
        grad_c_next = np.zeros((batch, H))
        for t in reversed(range(time)):
            h_prev, c_prev, i, f, g, o, tanh_c = self._cache[t]
            grad_h = grad_output[:, t] + grad_h_next
            grad_o = grad_h * tanh_c
            grad_c = grad_h * o * (1 - tanh_c**2) + grad_c_next
            grad_i = grad_c * g
            grad_f = grad_c * c_prev
            grad_g = grad_c * i
            grad_c_next = grad_c * f
            grad_z = np.concatenate(
                [
                    grad_i * i * (1 - i),
                    grad_f * f * (1 - f),
                    grad_g * (1 - g**2),
                    grad_o * o * (1 - o),
                ],
                axis=1,
            )
            self.grads[0] += self._x[:, t].T @ grad_z
            self.grads[1] += h_prev.T @ grad_z
            self.grads[2] += grad_z.sum(axis=0)
            grad_x[:, t] = grad_z @ self.Wx.T
            grad_h_next = grad_z @ self.Wh.T
        return grad_x


class LastTimestep(Layer):
    """Select the final timestep: ``(batch, time, f) -> (batch, f)``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x[:, -1]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.zeros(self._shape)
        grad[:, -1] = grad_output
        return grad
