"""Plain LSTM classifier (no convolutional front-end).

The failure-prediction literature the paper surveys (§II) uses both
LSTM and CNN_LSTM models; this variant drops the Conv1D feature
extractor so the two can be compared directly on the same sequences.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y
from repro.ml.nn.layers import LSTM, Dense, LastTimestep
from repro.ml.nn.optimizers import Adam


class LSTMClassifier(BaseClassifier):
    """Binary LSTM-over-sequences classifier.

    Accepts the same inputs as :class:`CNNLSTMClassifier`: 3-D
    ``(n, time, features)`` sequences or 2-D rows reshaped with
    ``time_steps``.
    """

    def __init__(
        self,
        time_steps: int = 7,
        hidden_size: int = 32,
        learning_rate: float = 0.005,
        batch_size: int = 32,
        n_epochs: int = 30,
        seed: int = 0,
    ):
        if time_steps < 1:
            raise ValueError("time_steps must be at least 1")
        self.time_steps = time_steps
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.n_epochs = n_epochs
        self.seed = seed

    def _to_sequences(self, X: np.ndarray) -> np.ndarray:
        if X.ndim == 3:
            return X
        n_samples, n_columns = X.shape
        if n_columns % self.time_steps != 0:
            raise ValueError(
                f"{n_columns} columns not divisible by time_steps={self.time_steps}"
            )
        return X.reshape(n_samples, self.time_steps, n_columns // self.time_steps)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LSTMClassifier":
        X, y = check_X_y(X, y)
        sequences = self._to_sequences(X)
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError("LSTMClassifier is binary")
        targets = (y == self.classes_[1]).astype(float)

        flat = sequences.reshape(-1, sequences.shape[2])
        self._mean = flat.mean(axis=0)
        scale = flat.std(axis=0)
        self._scale = np.where(scale == 0, 1.0, scale)
        sequences = (sequences - self._mean) / self._scale

        rng = np.random.default_rng(self.seed)
        n_features = sequences.shape[2]
        self.n_features_ = X.shape[-1] if X.ndim == 2 else n_features
        self._layers = [
            LSTM(n_features, self.hidden_size, rng),
            LastTimestep(),
            Dense(self.hidden_size, 1, rng),
        ]
        optimizer = Adam(learning_rate=self.learning_rate)
        params = [p for layer in self._layers for p in layer.params]
        grads = [g for layer in self._layers for g in layer.grads]

        n_samples = sequences.shape[0]
        self.loss_history_ = []
        for _ in range(self.n_epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            for start in range(0, n_samples, self.batch_size):
                batch = order[start : start + self.batch_size]
                activations = sequences[batch]
                for layer in self._layers:
                    activations = layer.forward(activations)
                logits = activations[:, 0]
                probabilities = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
                batch_targets = targets[batch]
                clipped = np.clip(probabilities, 1e-12, 1 - 1e-12)
                loss = -np.mean(
                    batch_targets * np.log(clipped)
                    + (1 - batch_targets) * np.log(1 - clipped)
                )
                epoch_loss += loss * batch.size
                grad = ((probabilities - batch_targets) / batch.size)[:, None]
                for layer in reversed(self._layers):
                    grad = layer.backward(grad)
                optimizer.step(params, grads)
            self.loss_history_.append(epoch_loss / n_samples)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        sequences = (self._to_sequences(X) - self._mean) / self._scale
        activations = sequences
        for layer in self._layers:
            activations = layer.forward(activations)
        logits = activations[:, 0]
        positive = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
        return np.column_stack([1.0 - positive, positive])
