"""Gradient-descent optimizers for the neural layers."""

from __future__ import annotations

import numpy as np


class SGD:
    """Plain mini-batch SGD with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        for param, grad in zip(params, grads):
            key = id(param)
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(param)
                self._velocity[key] = velocity
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity


class Adam:
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._t += 1
        correction1 = 1 - self.beta1**self._t
        correction2 = 1 - self.beta2**self._t
        for param, grad in zip(params, grads):
            key = id(param)
            if key not in self._m:
                self._m[key] = np.zeros_like(param)
                self._v[key] = np.zeros_like(param)
            m = self._m[key]
            v = self._v[key]
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            param -= (
                self.learning_rate
                * (m / correction1)
                / (np.sqrt(v / correction2) + self.epsilon)
            )
