"""Class-imbalance resampling.

The failure-prediction dataset is heavily imbalanced (replacement rates
are 0.05%-0.68%, Table VI). The paper balances classes with the
RandomUnderSampler algorithm at ratios like 3:1 or 5:1
(negative:positive, §III-C(3)).
"""

from __future__ import annotations

import numpy as np


class RandomUnderSampler:
    """Randomly drop majority-class samples down to a target ratio.

    Parameters
    ----------
    ratio:
        Desired number of majority samples per minority sample. ``1.0``
        yields a fully balanced set; the paper uses 3.0 or 5.0.
    seed:
        Seed for the subsampling RNG.
    """

    def __init__(self, ratio: float = 3.0, seed: int = 0):
        if ratio <= 0:
            raise ValueError(f"ratio must be positive, got {ratio}")
        self.ratio = ratio
        self.seed = seed

    def fit_resample(
        self, X: np.ndarray, y: np.ndarray, *extras: np.ndarray
    ) -> tuple[np.ndarray, ...]:
        """Return resampled ``(X, y, *extras)``.

        ``extras`` are additional per-sample arrays (serial numbers,
        timestamps) that must stay aligned with the kept rows. Rows keep
        their original relative order so time-series structure survives.
        """
        X = np.asarray(X)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different lengths")
        for extra in extras:
            if np.asarray(extra).shape[0] != y.shape[0]:
                raise ValueError("extra arrays must align with y")

        labels, counts = np.unique(y, return_counts=True)
        if labels.size < 2:
            # Nothing to balance.
            return (X, y, *extras)
        minority_label = labels[np.argmin(counts)]
        minority_count = int(counts.min())
        target_majority = int(round(self.ratio * minority_count))

        rng = np.random.default_rng(self.seed)
        keep = np.zeros(y.shape[0], dtype=bool)
        keep[y == minority_label] = True
        for label in labels:
            if label == minority_label:
                continue
            indices = np.flatnonzero(y == label)
            if indices.size > target_majority:
                indices = rng.choice(indices, size=target_majority, replace=False)
            keep[indices] = True

        kept = np.flatnonzero(keep)
        return (X[kept], y[kept], *[np.asarray(extra)[kept] for extra in extras])
