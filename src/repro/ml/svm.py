"""Linear support vector machine trained with Pegasos-style SGD.

A linear SVM is the paper's "SVM" comparator. Probabilities come from a
logistic squashing of the signed margin (a cheap stand-in for Platt
scaling that preserves score ordering, which is all AUC needs).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y


class LinearSVM(BaseClassifier):
    """Binary L2-regularized hinge-loss classifier.

    Parameters
    ----------
    C:
        Inverse regularization strength; larger fits the training set
        harder.
    n_epochs:
        Passes over the (shuffled) training data.
    batch_size:
        Mini-batch size for the subgradient steps.
    seed:
        RNG seed for shuffling.
    """

    def __init__(
        self,
        C: float = 1.0,
        n_epochs: int = 30,
        batch_size: int = 64,
        seed: int = 0,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if n_epochs < 1:
            raise ValueError("n_epochs must be at least 1")
        self.C = C
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X, y = check_X_y(X, y)
        if X.ndim != 2:
            raise ValueError("LinearSVM expects 2-D input")
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError(f"LinearSVM is binary; got {self.classes_.size} classes")
        # Standardize internally: hinge-loss SGD is scale-sensitive and
        # raw SMART counters span ~9 orders of magnitude.
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        self._scale = np.where(scale == 0, 1.0, scale)
        Xs = (X - self._mean) / self._scale
        signs = np.where(y == self.classes_[1], 1.0, -1.0)

        n_samples, n_features = Xs.shape
        lam = 1.0 / (self.C * n_samples)
        weights = np.zeros(n_features)
        bias = 0.0
        rng = np.random.default_rng(self.seed)
        step = 0
        for _ in range(self.n_epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, self.batch_size):
                step += 1
                batch = order[start : start + self.batch_size]
                learning_rate = 1.0 / (lam * (step + 10))
                margins = signs[batch] * (Xs[batch] @ weights + bias)
                violators = margins < 1
                gradient_w = lam * weights
                gradient_b = 0.0
                if np.any(violators):
                    rows = Xs[batch][violators]
                    ys = signs[batch][violators]
                    gradient_w -= (ys[:, None] * rows).mean(axis=0)
                    gradient_b -= ys.mean()
                weights -= learning_rate * gradient_w
                bias -= learning_rate * gradient_b

        self.coef_ = weights
        self.intercept_ = bias
        self.n_features_ = n_features
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance to the separating hyperplane (scaled space)."""
        self._check_fitted()
        X = check_X(X, self.n_features_)
        Xs = (X - self._mean) / self._scale
        return Xs @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        margins = self.decision_function(X)
        positive = 1.0 / (1.0 + np.exp(-np.clip(margins, -500, 500)))
        return np.column_stack([1.0 - positive, positive])
