"""CART decision trees (classification and regression).

These trees power :class:`repro.ml.forest.RandomForestClassifier` and
:class:`repro.ml.gbdt.GradientBoostingClassifier`. Two split-search
backends are available:

* ``split_algorithm="exact"`` (default) — sort once per feature per
  node, evaluate every cut with prefix sums. Bit-reproducible reference.
* ``split_algorithm="hist"`` — LightGBM-style histogram search over a
  :class:`repro.ml.binning.BinnedDataset`: features are quantile-binned
  once into uint8 codes, each node accumulates per-bin class masses
  with ``np.bincount`` and scans O(n_bins) cuts, and when every feature
  is a candidate (``max_features=None``) a child's histograms are
  derived by subtracting its sibling's from the parent's instead of
  being rebuilt. A node costs O(n_node · n_features_sub + n_bins ·
  n_features_sub) instead of O(n_node log n_node · n_features_sub).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y
from repro.ml.binning import BinnedDataset, get_binned
from repro.obs import inc_counter

_NO_SPLIT = -1

#: Below this size the smaller child's histograms are cheaper to rebuild
#: on demand than to precompute and carry on the growth stack.
_SUBTRACTION_MIN_ROWS = 64

_SPLIT_ALGORITHMS = ("exact", "hist")


def _check_split_algorithm(split_algorithm: str) -> str:
    if split_algorithm not in _SPLIT_ALGORITHMS:
        raise ValueError(
            f"split_algorithm must be one of {_SPLIT_ALGORITHMS}, "
            f"got {split_algorithm!r}"
        )
    return split_algorithm


class _Tree:
    """Flat array representation of a grown binary tree.

    ``feature[i] == _NO_SPLIT`` marks a leaf; ``value[i]`` holds either a
    class-probability vector (classification) or a scalar prediction
    (regression).
    """

    def __init__(self, n_outputs: int):
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list[np.ndarray] = []
        self.n_outputs = n_outputs

    def add_node(self, value: np.ndarray) -> int:
        self.feature.append(_NO_SPLIT)
        self.threshold.append(0.0)
        self.left.append(_NO_SPLIT)
        self.right.append(_NO_SPLIT)
        self.value.append(value)
        return len(self.feature) - 1

    def make_split(self, node: int, feature: int, threshold: float, left: int, right: int) -> None:
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.left[node] = left
        self.right[node] = right

    def finalize(self) -> None:
        """Convert list storage to arrays for fast vectorized prediction."""
        self.feature_arr = np.asarray(self.feature, dtype=np.int64)
        self.threshold_arr = np.asarray(self.threshold, dtype=float)
        self.left_arr = np.asarray(self.left, dtype=np.int64)
        self.right_arr = np.asarray(self.right, dtype=np.int64)
        self.value_arr = np.stack(self.value)

    def predict_value(self, X: np.ndarray) -> np.ndarray:
        """Route every row to its leaf and return the leaf values.

        Inference-time NaN policy: ``NaN <= threshold`` evaluates
        False, so a row whose split feature is missing deterministically
        routes RIGHT at that node.  This is a contract, not an
        accident — the binned engine (:mod:`repro.ml.arena`) maps NaN
        to the reserved top bin (``edges.size + 1``), which sorts above
        every quantized code threshold and therefore routes the same
        rows right, keeping both engines bit-identical on missing
        values.  Pinned by ``tests/ml/test_arena.py``.
        """
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_arr[nodes] != _NO_SPLIT
        while np.any(active):
            indices = np.flatnonzero(active)
            current = nodes[indices]
            # NaN compares False here → missing values go right (see above).
            go_left = (
                X[indices, self.feature_arr[current]] <= self.threshold_arr[current]
            )
            nodes[indices] = np.where(
                go_left, self.left_arr[current], self.right_arr[current]
            )
            active[indices] = self.feature_arr[nodes[indices]] != _NO_SPLIT
        return self.value_arr[nodes]

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        features = getattr(self, "feature_arr", None)
        if features is None:
            features = np.asarray(self.feature, dtype=np.int64)
        return int(np.sum(features == _NO_SPLIT))

    def depth(self) -> int:
        """Maximum root-to-leaf depth (root = 0).

        ``add_node`` appends children after their parent, so node ids
        are topologically ordered and one forward pass over the arrays
        suffices.
        """
        if getattr(self, "feature_arr", None) is None:
            features = np.asarray(self.feature, dtype=np.int64)
            left = np.asarray(self.left, dtype=np.int64)
            right = np.asarray(self.right, dtype=np.int64)
        else:
            features, left, right = self.feature_arr, self.left_arr, self.right_arr
        depths = np.zeros(self.n_nodes, dtype=np.int64)
        split_nodes = np.flatnonzero(features != _NO_SPLIT)
        for node in split_nodes:
            child_depth = depths[node] + 1
            depths[left[node]] = child_depth
            depths[right[node]] = child_depth
        return int(depths.max()) if depths.size else 0


def _best_split_classification(
    X: np.ndarray,
    y_codes: np.ndarray,
    sample_indices: np.ndarray,
    feature_indices: np.ndarray,
    n_classes: int,
    min_samples_leaf: int,
    sample_weight: np.ndarray | None = None,
) -> tuple[int, float, float]:
    """Find the (weighted-)gini-optimal (feature, threshold) for a node.

    Returns ``(feature, threshold, impurity_decrease)`` with feature -1
    when no valid split exists. ``sample_weight`` makes the impurity
    cost-sensitive while the ``min_samples_leaf`` floor stays on raw
    sample counts.
    """
    node_y = y_codes[sample_indices]
    n = node_y.size
    weights = (
        np.ones(n) if sample_weight is None else sample_weight[sample_indices]
    )
    one_hot = np.zeros((n, n_classes))
    one_hot[np.arange(n), node_y] = weights
    counts = one_hot.sum(axis=0)
    total_mass = counts.sum()
    parent_impurity = 1.0 - np.sum((counts / total_mass) ** 2)

    best_feature, best_threshold, best_gain = _NO_SPLIT, 0.0, 0.0
    for feature in feature_indices:
        values = X[sample_indices, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        # Prefix class masses for every "first k rows go left" cut.
        left_counts = np.cumsum(one_hot[order], axis=0)[:-1]
        left_mass = left_counts.sum(axis=1)
        right_mass = total_mass - left_mass
        k = np.arange(1, n)
        valid = sorted_values[:-1] < sorted_values[1:]
        valid &= (k >= min_samples_leaf) & (n - k >= min_samples_leaf)
        valid &= (left_mass > 0) & (right_mass > 0)
        if not np.any(valid):
            continue
        right_counts = counts[None, :] - left_counts
        with np.errstate(divide="ignore", invalid="ignore"):
            left_impurity = 1.0 - np.sum(
                (left_counts / left_mass[:, None]) ** 2, axis=1
            )
            right_impurity = 1.0 - np.sum(
                (right_counts / right_mass[:, None]) ** 2, axis=1
            )
        weighted = (left_mass * left_impurity + right_mass * right_impurity) / total_mass
        gain = np.where(valid, parent_impurity - weighted, -np.inf)
        best_index = int(np.argmax(gain))
        if gain[best_index] > best_gain:
            best_gain = float(gain[best_index])
            best_feature = int(feature)
            best_threshold = float(
                (sorted_values[best_index] + sorted_values[best_index + 1]) / 2.0
            )
    return best_feature, best_threshold, best_gain


def _best_split_regression(
    X: np.ndarray,
    y: np.ndarray,
    sample_indices: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    """Variance-reduction split search for regression trees."""
    node_y = y[sample_indices]
    n = node_y.size
    total = node_y.sum()
    parent_sse = float(np.sum((node_y - total / n) ** 2))

    best_feature, best_threshold, best_gain = _NO_SPLIT, 0.0, 1e-12
    for feature in feature_indices:
        values = X[sample_indices, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_y = node_y[order]
        k = np.arange(1, n)
        valid = sorted_values[:-1] < sorted_values[1:]
        valid &= (k >= min_samples_leaf) & (n - k >= min_samples_leaf)
        if not np.any(valid):
            continue
        left_sum = np.cumsum(sorted_y)[:-1]
        right_sum = total - left_sum
        # SSE decrease == sum_left^2/n_left + sum_right^2/n_right - sum^2/n
        score = left_sum**2 / k + right_sum**2 / (n - k)
        gain = np.where(valid, score - total**2 / n, -np.inf)
        best_index = int(np.argmax(gain))
        if gain[best_index] > best_gain:
            best_gain = float(gain[best_index])
            best_feature = int(feature)
            best_threshold = float(
                (sorted_values[best_index] + sorted_values[best_index + 1]) / 2.0
            )
    if best_feature == _NO_SPLIT:
        return _NO_SPLIT, 0.0, 0.0
    return best_feature, best_threshold, min(best_gain, parent_sse)


# ----------------------------------------------------------------------
# Histogram backend
# ----------------------------------------------------------------------
def _code_block(
    binned: BinnedDataset, indices: np.ndarray, features: np.ndarray | None
) -> np.ndarray:
    """Gather the node's ``(n_node, n_features_sub)`` uint8 codes."""
    if features is None:
        return binned.codes[indices]
    return binned.codes[indices[:, None], features[None, :]]


def _class_histograms(
    codes_block: np.ndarray,
    node_y: np.ndarray,
    weights: np.ndarray | None,
    n_bins: int,
    n_classes: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(feature, bin) class masses and raw sample counts.

    One ``bincount`` over the offset-flattened codes covers every
    feature at once — the per-node cost is O(n_node · n_features_sub),
    with no per-feature Python loop.
    """
    n_features = codes_block.shape[1]
    flat = codes_block.astype(np.intp)
    flat += np.arange(n_features, dtype=np.intp) * n_bins
    counts = np.bincount(
        flat.ravel(), minlength=n_features * n_bins
    ).reshape(n_features, n_bins)
    keys = flat * n_classes + node_y[:, None]
    if weights is None:
        mass = np.bincount(
            keys.ravel(), minlength=n_features * n_bins * n_classes
        ).astype(float)
    else:
        tiled = np.broadcast_to(weights[:, None], keys.shape).ravel()
        mass = np.bincount(
            keys.ravel(), weights=tiled, minlength=n_features * n_bins * n_classes
        )
    return mass.reshape(n_features, n_bins, n_classes), counts


def _binary_class_histograms(
    codes_block: np.ndarray, node_y: np.ndarray, n_bins: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unweighted two-class histograms as ``(mass0, mass1, counts)``.

    The common MFPA case (binary labels, no class weights) needs only
    one extra bincount over the positive rows — the negative class is
    the complement — instead of the general per-class key expansion.
    """
    n_features = codes_block.shape[1]
    flat = codes_block.astype(np.intp)
    flat += np.arange(n_features, dtype=np.intp) * n_bins
    counts = np.bincount(
        flat.ravel(), minlength=n_features * n_bins
    ).reshape(n_features, n_bins)
    positives = np.bincount(
        flat[node_y == 1].ravel(), minlength=n_features * n_bins
    ).reshape(n_features, n_bins)
    return (counts - positives).astype(float), positives.astype(float), counts


def _regression_histograms(
    codes_block: np.ndarray, node_y: np.ndarray, n_bins: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(feature, bin) target sums and raw sample counts."""
    n_features = codes_block.shape[1]
    flat = codes_block.astype(np.intp)
    flat += np.arange(n_features, dtype=np.intp) * n_bins
    raveled = flat.ravel()
    counts = np.bincount(raveled, minlength=n_features * n_bins).reshape(
        n_features, n_bins
    )
    tiled = np.broadcast_to(node_y[:, None], flat.shape).ravel()
    sums = np.bincount(raveled, weights=tiled, minlength=n_features * n_bins).reshape(
        n_features, n_bins
    )
    return sums, counts


def _scan_classification_cuts(
    mass: np.ndarray,
    counts: np.ndarray,
    class_mass: np.ndarray,
    total_mass: float,
    parent_impurity: float,
    n: int,
    min_samples_leaf: int,
) -> tuple[int, int, float] | None:
    """Best gini cut over every (feature, bin) at once.

    The gain grid is feature-major, so ``argmax`` keeps the exact
    backend's tie-break: the first candidate feature reaching the
    maximum wins, and within a feature the lowest threshold wins.
    """
    left_counts = np.cumsum(mass[:, :-1, :], axis=1)
    left_mass = left_counts.sum(axis=2)
    right_mass = total_mass - left_mass
    left_n = np.cumsum(counts[:, :-1], axis=1)
    valid = (left_n >= min_samples_leaf) & (n - left_n >= min_samples_leaf)
    valid &= (left_mass > 0) & (right_mass > 0)
    if not np.any(valid):
        return None
    right_counts = class_mass[None, None, :] - left_counts
    with np.errstate(divide="ignore", invalid="ignore"):
        left_impurity = 1.0 - np.sum(
            (left_counts / left_mass[..., None]) ** 2, axis=2
        )
        right_impurity = 1.0 - np.sum(
            (right_counts / right_mass[..., None]) ** 2, axis=2
        )
        weighted = (
            left_mass * left_impurity + right_mass * right_impurity
        ) / total_mass
    gain = np.where(valid, parent_impurity - weighted, -np.inf)
    best = int(np.argmax(gain))
    local_feature, cut_bin = divmod(best, gain.shape[1])
    return local_feature, cut_bin, float(gain[local_feature, cut_bin])


def _scan_binary_cuts(
    mass0: np.ndarray,
    mass1: np.ndarray,
    class_mass: np.ndarray,
    total_mass: float,
    parent_impurity: float,
    min_samples_leaf: int,
) -> tuple[int, int, float, np.ndarray] | None:
    """Two-class unweighted cut scan.

    Same arithmetic (in the same float operation order) as
    :func:`_scan_classification_cuts` with the class axis unrolled, so
    the chosen cut is bit-identical — just without the per-node
    ``(f, n_bins, 2)`` temporaries and axis reductions. Unweighted means
    the class masses double as sample counts for the leaf-size floor.

    Also returns the left partition's per-class counts at the chosen
    cut: they determine both children's leaf values and purity, sparing
    the caller a pass over the node's rows.
    """
    left0 = np.cumsum(mass0[:, :-1], axis=1)
    left1 = np.cumsum(mass1[:, :-1], axis=1)
    left_mass = left0 + left1
    right_mass = total_mass - left_mass
    valid = (left_mass >= min_samples_leaf) & (right_mass >= min_samples_leaf)
    if not np.any(valid):
        return None
    right0 = class_mass[0] - left0
    right1 = class_mass[1] - left1
    with np.errstate(divide="ignore", invalid="ignore"):
        left_impurity = 1.0 - ((left0 / left_mass) ** 2 + (left1 / left_mass) ** 2)
        right_impurity = 1.0 - (
            (right0 / right_mass) ** 2 + (right1 / right_mass) ** 2
        )
        weighted = (
            left_mass * left_impurity + right_mass * right_impurity
        ) / total_mass
    gain = np.where(valid, parent_impurity - weighted, -np.inf)
    best = int(np.argmax(gain))
    local_feature, cut_bin = divmod(best, gain.shape[1])
    left_class_mass = np.array(
        [left0[local_feature, cut_bin], left1[local_feature, cut_bin]]
    )
    return local_feature, cut_bin, float(gain[local_feature, cut_bin]), left_class_mass


def _scan_regression_cuts(
    sums: np.ndarray,
    counts: np.ndarray,
    total: float,
    n: int,
    min_samples_leaf: int,
) -> tuple[int, int, float] | None:
    """Best variance-reduction cut over every (feature, bin) at once."""
    left_sum = np.cumsum(sums[:, :-1], axis=1)
    left_n = np.cumsum(counts[:, :-1], axis=1)
    right_n = n - left_n
    valid = (left_n >= min_samples_leaf) & (right_n >= min_samples_leaf)
    if not np.any(valid):
        return None
    right_sum = total - left_sum
    with np.errstate(divide="ignore", invalid="ignore"):
        score = left_sum**2 / left_n + right_sum**2 / right_n
    gain = np.where(valid, score - total**2 / n, -np.inf)
    best = int(np.argmax(gain))
    local_feature, cut_bin = divmod(best, gain.shape[1])
    return local_feature, cut_bin, float(gain[local_feature, cut_bin])


def _node_threshold(
    X: np.ndarray,
    indices: np.ndarray,
    feature: int,
    go_left: np.ndarray,
    fallback: float,
) -> float:
    """Real-unit threshold for a histogram cut.

    The midpoint between the left partition's maximum and the right
    partition's minimum *within the node* — the same value the exact
    backend derives from its sort, so lossless binning reproduces exact
    trees threshold-for-threshold (and quantile binning generalizes at
    the margin between observed values instead of at an arbitrary global
    edge). Falls back to the bin edge if the node holds non-finite
    values (the NaN bin).
    """
    values = X[indices, feature]
    threshold = float((values[go_left].max() + values[~go_left].min()) / 2.0)
    if not np.isfinite(threshold):
        return fallback
    return threshold


def _check_binned(binned: BinnedDataset, X: np.ndarray) -> None:
    if binned.codes.shape != X.shape:
        raise ValueError(
            f"binned dataset shape {binned.codes.shape} does not match "
            f"X shape {X.shape}"
        )


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate a max_features spec into a concrete count."""
    if max_features is None:
        return n_features
    if isinstance(max_features, (bool, np.bool_)):
        # bool is an int subclass: True would silently mean "1 feature
        # per split" and False would be rejected confusingly below.
        raise ValueError(
            f"invalid max_features: {max_features!r}; booleans are not "
            "accepted (use None for all features or an explicit count)"
        )
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, float) and 0 < max_features <= 1:
        return max(1, int(max_features * n_features))
    if isinstance(max_features, int) and max_features >= 1:
        return min(max_features, n_features)
    raise ValueError(f"invalid max_features: {max_features!r}")


class DecisionTreeClassifier(BaseClassifier):
    """CART classification tree with gini impurity.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or too
        small.
    min_samples_split / min_samples_leaf:
        Standard CART stopping rules.
    max_features:
        Features considered per split: ``None`` (all), ``"sqrt"``,
        ``"log2"``, an int, or a float fraction. Randomized per node when
        fewer than all — this is what de-correlates forest members.
    class_weight:
        ``None`` (all samples weigh 1), ``"balanced"`` (inverse class
        frequency), or a label -> weight dict. Weights enter the gini
        criterion and the leaf probabilities, making the tree
        cost-sensitive (cf. CSLE, DATE 2022 [24]).
    split_algorithm:
        ``"exact"`` (sort-based, bit-reproducible default) or ``"hist"``
        (quantile-binned histogram search; pass a pre-built ``binned``
        to :meth:`fit` to amortize binning across trees).
    seed:
        RNG seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        class_weight=None,
        split_algorithm: str = "exact",
        seed: int = 0,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.class_weight = class_weight
        self.split_algorithm = _check_split_algorithm(split_algorithm)
        self.seed = seed

    def _sample_weights(self, y: np.ndarray, y_codes: np.ndarray) -> np.ndarray | None:
        if self.class_weight is None:
            return None
        if self.class_weight == "balanced":
            counts = np.bincount(y_codes).astype(float)
            per_class = y.shape[0] / (counts.size * counts)
            return per_class[y_codes]
        if isinstance(self.class_weight, dict):
            try:
                per_class = np.array(
                    [float(self.class_weight[label]) for label in self.classes_]
                )
            except KeyError as error:
                raise ValueError(
                    f"class_weight is missing label {error.args[0]!r}"
                ) from error
            if np.any(per_class <= 0):
                raise ValueError("class weights must be positive")
            return per_class[y_codes]
        raise ValueError(f"invalid class_weight: {self.class_weight!r}")

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        binned: BinnedDataset | None = None,
    ) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        if X.ndim != 2:
            raise ValueError("DecisionTreeClassifier expects 2-D input")
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        n_classes = self.classes_.size
        n_features = X.shape[1]
        self.n_features_ = n_features
        n_candidate_features = _resolve_max_features(self.max_features, n_features)
        rng = np.random.default_rng(self.seed)

        use_hist = self.split_algorithm == "hist"
        if use_hist:
            if binned is None:
                binned = get_binned(X)
            _check_binned(binned, X)
        # The parent-sibling subtraction trick needs the parent's
        # histograms to cover the child's candidate features; that holds
        # exactly when every node considers every feature.
        subtraction = use_hist and n_candidate_features == n_features
        hist_nodes = 0

        if sample_weight is None:
            sample_weight = self._sample_weights(y, y_codes)
        if sample_weight is not None and np.ptp(sample_weight) == 0:
            # Uniform weights are exactly the unweighted problem; taking
            # the unweighted path keeps the grown tree bit-identical
            # instead of letting float rescaling flip split tie-breaks.
            sample_weight = None
        # Unweighted binary labels (the MFPA case) take a leaner
        # histogram layout: (mass0, mass1, counts) instead of a dense
        # (f, n_bins, n_classes) block. Same arithmetic, fewer
        # temporaries.
        binary = n_classes == 2 and sample_weight is None

        tree = _Tree(n_outputs=n_classes)
        self.feature_importances_ = np.zeros(n_features)
        total_samples = X.shape[0]

        def leaf_value(indices: np.ndarray) -> np.ndarray:
            if sample_weight is None:
                counts = np.bincount(
                    y_codes[indices], minlength=n_classes
                ).astype(float)
            else:
                counts = np.bincount(
                    y_codes[indices],
                    weights=sample_weight[indices],
                    minlength=n_classes,
                )
            return counts / counts.sum()

        def searchable(indices: np.ndarray, depth: int) -> bool:
            """Whether a node will reach the split search when popped."""
            if indices.size < self.min_samples_split:
                return False
            if self.max_depth is not None and depth >= self.max_depth:
                return False
            # Codes are contiguous 0..n_classes-1, so a pure node is
            # exactly a zero peak-to-peak — no sort needed.
            return np.ptp(y_codes[indices]) != 0

        def hist_child_searchable(size: int, depth: int, pair: np.ndarray) -> bool:
            """`searchable` from split-scan byproducts — no row pass."""
            if size < self.min_samples_split:
                return False
            if self.max_depth is not None and depth >= self.max_depth:
                return False
            return pair[0] != 0 and pair[1] != 0

        # Iterative depth-first growth avoids recursion limits on deep
        # trees. Stack entries carry the node's pre-derived histograms
        # when the subtraction trick produced them, plus a `vetted` flag
        # set when the parent's split scan already proved the node
        # searchable (binary hist path) so the pop-time re-check is
        # skipped.
        root = tree.add_node(leaf_value(np.arange(total_samples)))
        stack = [(root, np.arange(total_samples), 0, None, False)]
        while stack:
            node, indices, depth, inherited, vetted = stack.pop()
            if not vetted and not searchable(indices, depth):
                continue
            if n_candidate_features < n_features:
                candidates = rng.choice(n_features, size=n_candidate_features, replace=False)
            else:
                candidates = np.arange(n_features)
            hists = None
            left_class_mass = None
            if not use_hist:
                feature, threshold, gain = _best_split_classification(
                    X,
                    y_codes,
                    indices,
                    candidates,
                    n_classes,
                    self.min_samples_leaf,
                    sample_weight,
                )
                if feature == _NO_SPLIT or gain <= 0:
                    continue
                go_left = X[indices, feature] <= threshold
            else:
                hist_nodes += 1
                node_y = y_codes[indices]
                node_weights = (
                    None if sample_weight is None else sample_weight[indices]
                )
                if node_weights is None:
                    class_mass = np.bincount(node_y, minlength=n_classes).astype(
                        float
                    )
                else:
                    class_mass = np.bincount(
                        node_y, weights=node_weights, minlength=n_classes
                    )
                total_mass = class_mass.sum()
                parent_impurity = 1.0 - np.sum((class_mass / total_mass) ** 2)
                if inherited is not None:
                    hists = inherited
                else:
                    block = _code_block(
                        binned, indices, None if subtraction else candidates
                    )
                    if binary:
                        hists = _binary_class_histograms(
                            block, node_y, binned.n_bins
                        )
                    else:
                        hists = _class_histograms(
                            block, node_y, node_weights, binned.n_bins, n_classes
                        )
                if binary:
                    cut = _scan_binary_cuts(
                        hists[0],
                        hists[1],
                        class_mass,
                        total_mass,
                        parent_impurity,
                        self.min_samples_leaf,
                    )
                else:
                    cut = _scan_classification_cuts(
                        hists[0],
                        hists[1],
                        class_mass,
                        total_mass,
                        parent_impurity,
                        indices.size,
                        self.min_samples_leaf,
                    )
                if cut is None:
                    continue
                if binary:
                    local_feature, cut_bin, gain, left_class_mass = cut
                else:
                    local_feature, cut_bin, gain = cut
                if gain <= 0:
                    continue
                feature = int(candidates[local_feature])
                go_left = binned.codes[indices, feature] <= cut_bin
                threshold = _node_threshold(
                    X,
                    indices,
                    feature,
                    go_left,
                    float(binned.cut_thresholds[feature, cut_bin]),
                )
            left_indices = indices[go_left]
            right_indices = indices[~go_left]
            left_ok = right_ok = None
            if left_class_mass is not None:
                # The scan already knows both children's class counts:
                # leaf values and purity come for free.
                right_class_mass = class_mass - left_class_mass
                left = tree.add_node(left_class_mass / left_class_mass.sum())
                right = tree.add_node(right_class_mass / right_class_mass.sum())
                left_ok = hist_child_searchable(
                    left_indices.size, depth + 1, left_class_mass
                )
                right_ok = hist_child_searchable(
                    right_indices.size, depth + 1, right_class_mass
                )
            else:
                left = tree.add_node(leaf_value(left_indices))
                right = tree.add_node(leaf_value(right_indices))
            tree.make_split(node, feature, threshold, left, right)
            self.feature_importances_[feature] += gain * indices.size / total_samples

            left_hist = right_hist = None
            if subtraction and hists is not None:
                smaller = (
                    left_indices
                    if left_indices.size <= right_indices.size
                    else right_indices
                )
                both_searchable = (
                    left_ok and right_ok
                    if left_ok is not None
                    else searchable(left_indices, depth + 1)
                    and searchable(right_indices, depth + 1)
                )
                if smaller.size >= _SUBTRACTION_MIN_ROWS and both_searchable:
                    if binary:
                        small_hist = _binary_class_histograms(
                            binned.codes[smaller], y_codes[smaller], binned.n_bins
                        )
                    else:
                        small_hist = _class_histograms(
                            binned.codes[smaller],
                            y_codes[smaller],
                            None
                            if sample_weight is None
                            else sample_weight[smaller],
                            binned.n_bins,
                            n_classes,
                        )
                    # The sibling's histograms are the parent's minus the
                    # smaller child's — no second pass over the rows.
                    large_hist = tuple(
                        parent - small for parent, small in zip(hists, small_hist)
                    )
                    if smaller is left_indices:
                        left_hist, right_hist = small_hist, large_hist
                    else:
                        left_hist, right_hist = large_hist, small_hist
            if left_ok is None:
                stack.append((left, left_indices, depth + 1, left_hist, False))
                stack.append((right, right_indices, depth + 1, right_hist, False))
            else:
                # Children the scan proved pure or too small are already
                # finished leaves — never pushed, never re-checked.
                if left_ok:
                    stack.append((left, left_indices, depth + 1, left_hist, True))
                if right_ok:
                    stack.append((right, right_indices, depth + 1, right_hist, True))

        if hist_nodes:
            inc_counter("tree_hist_nodes_total", hist_nodes)
        total_importance = self.feature_importances_.sum()
        if total_importance > 0:
            self.feature_importances_ /= total_importance
        tree.finalize()
        self.tree_ = tree
        # Snapshot the training bin edges so the arena's binned engine
        # (and saved artifacts) can encode inference batches without
        # refitting quantiles.
        self.bin_edges_ = binned.bin_edges if use_hist else None
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X, self.n_features_)
        return self.tree_.predict_value(X)


class DecisionTreeRegressor:
    """CART regression tree (mean-squared-error criterion) for GBDT."""

    def __init__(
        self,
        max_depth: int | None = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        split_algorithm: str = "exact",
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.split_algorithm = _check_split_algorithm(split_algorithm)
        self.seed = seed

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        binned: BinnedDataset | None = None,
    ) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0] or X.ndim != 2:
            raise ValueError("invalid shapes for regression tree")
        n_features = X.shape[1]
        self.n_features_ = n_features
        n_candidate_features = _resolve_max_features(self.max_features, n_features)
        rng = np.random.default_rng(self.seed)

        use_hist = self.split_algorithm == "hist"
        if use_hist:
            if binned is None:
                binned = get_binned(X)
            _check_binned(binned, X)
        subtraction = use_hist and n_candidate_features == n_features
        hist_nodes = 0

        def searchable(indices: np.ndarray, depth: int) -> bool:
            if indices.size < self.min_samples_split:
                return False
            if self.max_depth is not None and depth >= self.max_depth:
                return False
            return np.ptp(y[indices]) != 0

        tree = _Tree(n_outputs=1)
        root = tree.add_node(np.array([y.mean()]))
        stack = [(root, np.arange(X.shape[0]), 0, None)]
        while stack:
            node, indices, depth, inherited = stack.pop()
            if not searchable(indices, depth):
                continue
            if n_candidate_features < n_features:
                candidates = rng.choice(n_features, size=n_candidate_features, replace=False)
            else:
                candidates = np.arange(n_features)
            sums = counts = None
            if not use_hist:
                feature, threshold, gain = _best_split_regression(
                    X, y, indices, candidates, self.min_samples_leaf
                )
                if feature == _NO_SPLIT or gain <= 0:
                    continue
                go_left = X[indices, feature] <= threshold
            else:
                hist_nodes += 1
                node_y = y[indices]
                total = node_y.sum()
                parent_sse = float(np.sum((node_y - total / indices.size) ** 2))
                if inherited is not None:
                    sums, counts = inherited
                else:
                    block = _code_block(
                        binned, indices, None if subtraction else candidates
                    )
                    sums, counts = _regression_histograms(
                        block, node_y, binned.n_bins
                    )
                cut = _scan_regression_cuts(
                    sums, counts, total, indices.size, self.min_samples_leaf
                )
                if cut is None:
                    continue
                local_feature, cut_bin, gain = cut
                # Mirror the exact backend: a split must beat the 1e-12
                # floor, and the reported gain is capped at the parent SSE.
                if gain <= 1e-12:
                    continue
                gain = min(gain, parent_sse)
                if gain <= 0:
                    continue
                feature = int(candidates[local_feature])
                go_left = binned.codes[indices, feature] <= cut_bin
                threshold = _node_threshold(
                    X,
                    indices,
                    feature,
                    go_left,
                    float(binned.cut_thresholds[feature, cut_bin]),
                )
            left_indices = indices[go_left]
            right_indices = indices[~go_left]
            left = tree.add_node(np.array([y[left_indices].mean()]))
            right = tree.add_node(np.array([y[right_indices].mean()]))
            tree.make_split(node, feature, threshold, left, right)

            left_hist = right_hist = None
            if subtraction and sums is not None:
                smaller, larger = (
                    (left_indices, right_indices)
                    if left_indices.size <= right_indices.size
                    else (right_indices, left_indices)
                )
                if (
                    smaller.size >= _SUBTRACTION_MIN_ROWS
                    and searchable(left_indices, depth + 1)
                    and searchable(right_indices, depth + 1)
                ):
                    small_sums, small_counts = _regression_histograms(
                        binned.codes[smaller], y[smaller], binned.n_bins
                    )
                    small_hist = (small_sums, small_counts)
                    large_hist = (sums - small_sums, counts - small_counts)
                    if smaller is left_indices:
                        left_hist, right_hist = small_hist, large_hist
                    else:
                        left_hist, right_hist = large_hist, small_hist
            stack.append((left, left_indices, depth + 1, left_hist))
            stack.append((right, right_indices, depth + 1, right_hist))

        if hist_nodes:
            inc_counter("tree_hist_nodes_total", hist_nodes)
        tree.finalize()
        self.tree_ = tree
        self.bin_edges_ = binned.bin_edges if use_hist else None
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return self.tree_.predict_value(X)[:, 0]
