"""CART decision trees (classification and regression).

These trees power :class:`repro.ml.forest.RandomForestClassifier` and
:class:`repro.ml.gbdt.GradientBoostingClassifier`. Split search is
vectorized per feature (sort once, evaluate every cut with prefix sums),
which keeps fleet-scale training tractable in pure numpy.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y

_NO_SPLIT = -1


class _Tree:
    """Flat array representation of a grown binary tree.

    ``feature[i] == _NO_SPLIT`` marks a leaf; ``value[i]`` holds either a
    class-probability vector (classification) or a scalar prediction
    (regression).
    """

    def __init__(self, n_outputs: int):
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list[np.ndarray] = []
        self.n_outputs = n_outputs

    def add_node(self, value: np.ndarray) -> int:
        self.feature.append(_NO_SPLIT)
        self.threshold.append(0.0)
        self.left.append(_NO_SPLIT)
        self.right.append(_NO_SPLIT)
        self.value.append(value)
        return len(self.feature) - 1

    def make_split(self, node: int, feature: int, threshold: float, left: int, right: int) -> None:
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.left[node] = left
        self.right[node] = right

    def finalize(self) -> None:
        """Convert list storage to arrays for fast vectorized prediction."""
        self.feature_arr = np.asarray(self.feature, dtype=np.int64)
        self.threshold_arr = np.asarray(self.threshold, dtype=float)
        self.left_arr = np.asarray(self.left, dtype=np.int64)
        self.right_arr = np.asarray(self.right, dtype=np.int64)
        self.value_arr = np.stack(self.value)

    def predict_value(self, X: np.ndarray) -> np.ndarray:
        """Route every row to its leaf and return the leaf values."""
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_arr[nodes] != _NO_SPLIT
        while np.any(active):
            indices = np.flatnonzero(active)
            current = nodes[indices]
            go_left = (
                X[indices, self.feature_arr[current]] <= self.threshold_arr[current]
            )
            nodes[indices] = np.where(
                go_left, self.left_arr[current], self.right_arr[current]
            )
            active[indices] = self.feature_arr[nodes[indices]] != _NO_SPLIT
        return self.value_arr[nodes]

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(np.asarray(self.feature) == _NO_SPLIT))

    def depth(self) -> int:
        """Maximum root-to-leaf depth (root = 0)."""
        depths = {0: 0}
        maximum = 0
        for node in range(self.n_nodes):
            depth = depths[node]
            maximum = max(maximum, depth)
            if self.feature[node] != _NO_SPLIT:
                depths[self.left[node]] = depth + 1
                depths[self.right[node]] = depth + 1
        return maximum


def _best_split_classification(
    X: np.ndarray,
    y_codes: np.ndarray,
    sample_indices: np.ndarray,
    feature_indices: np.ndarray,
    n_classes: int,
    min_samples_leaf: int,
    sample_weight: np.ndarray | None = None,
) -> tuple[int, float, float]:
    """Find the (weighted-)gini-optimal (feature, threshold) for a node.

    Returns ``(feature, threshold, impurity_decrease)`` with feature -1
    when no valid split exists. ``sample_weight`` makes the impurity
    cost-sensitive while the ``min_samples_leaf`` floor stays on raw
    sample counts.
    """
    node_y = y_codes[sample_indices]
    n = node_y.size
    weights = (
        np.ones(n) if sample_weight is None else sample_weight[sample_indices]
    )
    one_hot = np.zeros((n, n_classes))
    one_hot[np.arange(n), node_y] = weights
    counts = one_hot.sum(axis=0)
    total_mass = counts.sum()
    parent_impurity = 1.0 - np.sum((counts / total_mass) ** 2)

    best_feature, best_threshold, best_gain = _NO_SPLIT, 0.0, 0.0
    for feature in feature_indices:
        values = X[sample_indices, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        # Prefix class masses for every "first k rows go left" cut.
        left_counts = np.cumsum(one_hot[order], axis=0)[:-1]
        left_mass = left_counts.sum(axis=1)
        right_mass = total_mass - left_mass
        k = np.arange(1, n)
        valid = sorted_values[:-1] < sorted_values[1:]
        valid &= (k >= min_samples_leaf) & (n - k >= min_samples_leaf)
        valid &= (left_mass > 0) & (right_mass > 0)
        if not np.any(valid):
            continue
        right_counts = counts[None, :] - left_counts
        with np.errstate(divide="ignore", invalid="ignore"):
            left_impurity = 1.0 - np.sum(
                (left_counts / left_mass[:, None]) ** 2, axis=1
            )
            right_impurity = 1.0 - np.sum(
                (right_counts / right_mass[:, None]) ** 2, axis=1
            )
        weighted = (left_mass * left_impurity + right_mass * right_impurity) / total_mass
        gain = np.where(valid, parent_impurity - weighted, -np.inf)
        best_index = int(np.argmax(gain))
        if gain[best_index] > best_gain:
            best_gain = float(gain[best_index])
            best_feature = int(feature)
            best_threshold = float(
                (sorted_values[best_index] + sorted_values[best_index + 1]) / 2.0
            )
    return best_feature, best_threshold, best_gain


def _best_split_regression(
    X: np.ndarray,
    y: np.ndarray,
    sample_indices: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    """Variance-reduction split search for regression trees."""
    node_y = y[sample_indices]
    n = node_y.size
    total = node_y.sum()
    parent_sse = float(np.sum((node_y - total / n) ** 2))

    best_feature, best_threshold, best_gain = _NO_SPLIT, 0.0, 1e-12
    for feature in feature_indices:
        values = X[sample_indices, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_y = node_y[order]
        k = np.arange(1, n)
        valid = sorted_values[:-1] < sorted_values[1:]
        valid &= (k >= min_samples_leaf) & (n - k >= min_samples_leaf)
        if not np.any(valid):
            continue
        left_sum = np.cumsum(sorted_y)[:-1]
        right_sum = total - left_sum
        # SSE decrease == sum_left^2/n_left + sum_right^2/n_right - sum^2/n
        score = left_sum**2 / k + right_sum**2 / (n - k)
        gain = np.where(valid, score - total**2 / n, -np.inf)
        best_index = int(np.argmax(gain))
        if gain[best_index] > best_gain:
            best_gain = float(gain[best_index])
            best_feature = int(feature)
            best_threshold = float(
                (sorted_values[best_index] + sorted_values[best_index + 1]) / 2.0
            )
    if best_feature == _NO_SPLIT:
        return _NO_SPLIT, 0.0, 0.0
    return best_feature, best_threshold, min(best_gain, parent_sse)


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate a max_features spec into a concrete count."""
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, float) and 0 < max_features <= 1:
        return max(1, int(max_features * n_features))
    if isinstance(max_features, int) and max_features >= 1:
        return min(max_features, n_features)
    raise ValueError(f"invalid max_features: {max_features!r}")


class DecisionTreeClassifier(BaseClassifier):
    """CART classification tree with gini impurity.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or too
        small.
    min_samples_split / min_samples_leaf:
        Standard CART stopping rules.
    max_features:
        Features considered per split: ``None`` (all), ``"sqrt"``,
        ``"log2"``, an int, or a float fraction. Randomized per node when
        fewer than all — this is what de-correlates forest members.
    class_weight:
        ``None`` (all samples weigh 1), ``"balanced"`` (inverse class
        frequency), or a label -> weight dict. Weights enter the gini
        criterion and the leaf probabilities, making the tree
        cost-sensitive (cf. CSLE, DATE 2022 [24]).
    seed:
        RNG seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        class_weight=None,
        seed: int = 0,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.class_weight = class_weight
        self.seed = seed

    def _sample_weights(self, y: np.ndarray, y_codes: np.ndarray) -> np.ndarray | None:
        if self.class_weight is None:
            return None
        if self.class_weight == "balanced":
            counts = np.bincount(y_codes).astype(float)
            per_class = y.shape[0] / (counts.size * counts)
            return per_class[y_codes]
        if isinstance(self.class_weight, dict):
            try:
                per_class = np.array(
                    [float(self.class_weight[label]) for label in self.classes_]
                )
            except KeyError as error:
                raise ValueError(
                    f"class_weight is missing label {error.args[0]!r}"
                ) from error
            if np.any(per_class <= 0):
                raise ValueError("class weights must be positive")
            return per_class[y_codes]
        raise ValueError(f"invalid class_weight: {self.class_weight!r}")

    def fit(
        self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray | None = None
    ) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        if X.ndim != 2:
            raise ValueError("DecisionTreeClassifier expects 2-D input")
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        n_classes = self.classes_.size
        n_features = X.shape[1]
        self.n_features_ = n_features
        n_candidate_features = _resolve_max_features(self.max_features, n_features)
        rng = np.random.default_rng(self.seed)

        if sample_weight is None:
            sample_weight = self._sample_weights(y, y_codes)
        if sample_weight is not None and np.ptp(sample_weight) == 0:
            # Uniform weights are exactly the unweighted problem; taking
            # the unweighted path keeps the grown tree bit-identical
            # instead of letting float rescaling flip split tie-breaks.
            sample_weight = None

        tree = _Tree(n_outputs=n_classes)
        self.feature_importances_ = np.zeros(n_features)
        total_samples = X.shape[0]

        def leaf_value(indices: np.ndarray) -> np.ndarray:
            if sample_weight is None:
                counts = np.bincount(
                    y_codes[indices], minlength=n_classes
                ).astype(float)
            else:
                counts = np.bincount(
                    y_codes[indices],
                    weights=sample_weight[indices],
                    minlength=n_classes,
                )
            return counts / counts.sum()

        # Iterative depth-first growth avoids recursion limits on deep trees.
        root = tree.add_node(leaf_value(np.arange(total_samples)))
        stack = [(root, np.arange(total_samples), 0)]
        while stack:
            node, indices, depth = stack.pop()
            if (
                indices.size < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.unique(y_codes[indices]).size == 1
            ):
                continue
            if n_candidate_features < n_features:
                candidates = rng.choice(n_features, size=n_candidate_features, replace=False)
            else:
                candidates = np.arange(n_features)
            feature, threshold, gain = _best_split_classification(
                X,
                y_codes,
                indices,
                candidates,
                n_classes,
                self.min_samples_leaf,
                sample_weight,
            )
            if feature == _NO_SPLIT or gain <= 0:
                continue
            go_left = X[indices, feature] <= threshold
            left_indices = indices[go_left]
            right_indices = indices[~go_left]
            left = tree.add_node(leaf_value(left_indices))
            right = tree.add_node(leaf_value(right_indices))
            tree.make_split(node, feature, threshold, left, right)
            self.feature_importances_[feature] += gain * indices.size / total_samples
            stack.append((left, left_indices, depth + 1))
            stack.append((right, right_indices, depth + 1))

        total_importance = self.feature_importances_.sum()
        if total_importance > 0:
            self.feature_importances_ /= total_importance
        tree.finalize()
        self.tree_ = tree
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_X(X, self.n_features_)
        return self.tree_.predict_value(X)


class DecisionTreeRegressor:
    """CART regression tree (mean-squared-error criterion) for GBDT."""

    def __init__(
        self,
        max_depth: int | None = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0] or X.ndim != 2:
            raise ValueError("invalid shapes for regression tree")
        n_features = X.shape[1]
        self.n_features_ = n_features
        n_candidate_features = _resolve_max_features(self.max_features, n_features)
        rng = np.random.default_rng(self.seed)

        tree = _Tree(n_outputs=1)
        root = tree.add_node(np.array([y.mean()]))
        stack = [(root, np.arange(X.shape[0]), 0)]
        while stack:
            node, indices, depth = stack.pop()
            if (
                indices.size < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.ptp(y[indices]) == 0
            ):
                continue
            if n_candidate_features < n_features:
                candidates = rng.choice(n_features, size=n_candidate_features, replace=False)
            else:
                candidates = np.arange(n_features)
            feature, threshold, gain = _best_split_regression(
                X, y, indices, candidates, self.min_samples_leaf
            )
            if feature == _NO_SPLIT or gain <= 0:
                continue
            go_left = X[indices, feature] <= threshold
            left_indices = indices[go_left]
            right_indices = indices[~go_left]
            left = tree.add_node(np.array([y[left_indices].mean()]))
            right = tree.add_node(np.array([y[right_indices].mean()]))
            tree.make_split(node, feature, threshold, left, right)
            stack.append((left, left_indices, depth + 1))
            stack.append((right, right_indices, depth + 1))
        tree.finalize()
        self.tree_ = tree
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return self.tree_.predict_value(X)[:, 0]
