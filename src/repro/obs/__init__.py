"""repro.obs — fleet-scale observability for the MFPA pipeline.

Four pillars, each usable alone:

* :mod:`repro.obs.tracing` — nesting span tracer (wall + CPU time)
  aggregating across :class:`~repro.parallel.ParallelExecutor` fork
  workers;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms with JSONL and Prometheus text export;
* :mod:`repro.obs.logs` — leveled structured logging whose default
  output is byte-identical to the ``print()`` calls it replaced;
* :mod:`repro.obs.manifest` — per-run ``manifest.json`` stamping
  config hash, dataset fingerprint, span tree, metrics and results.

This module also owns the cross-process glue: :func:`capture_active`
tells the executor whether to ship worker-side observations home, and
:func:`worker_begin` / :func:`worker_collect` / :func:`absorb_worker`
are the three calls that move them (see ``parallel/executor.py``).

Instrumentation is contractually *passive*: with observability off the
span/metric calls are no-ops or dict updates, and with it on they never
touch model inputs or outputs — ``tests/obs/test_parallel_obs.py`` pins
bit-identical predictions either way.
"""

from __future__ import annotations

from repro.obs.logs import configure_logging, get_logger
from repro.obs.manifest import (
    RunContext,
    config_hash,
    dataset_fingerprint,
    load_manifest,
    start_run,
    validate_manifest,
)
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    inc_counter,
    observe_histogram,
    set_gauge,
)
from repro.obs.server import (
    ObsServer,
    TextfileExporter,
    histogram_quantile,
    registry_status,
)
from repro.obs.top import fetch_json, render_top, run_top
from repro.obs.tracing import Tracer, get_tracer, set_tracing, trace_span, traced
from repro.obs import metrics as _metrics

__all__ = [
    "MetricsRegistry",
    "ObsServer",
    "RunContext",
    "TextfileExporter",
    "Tracer",
    "absorb_worker",
    "annotate_run",
    "capture_active",
    "config_hash",
    "configure_logging",
    "current_run",
    "dataset_fingerprint",
    "disable_observability",
    "enable_observability",
    "fetch_json",
    "get_logger",
    "get_registry",
    "get_tracer",
    "histogram_quantile",
    "inc_counter",
    "load_manifest",
    "observe_histogram",
    "record_result",
    "registry_status",
    "render_top",
    "run_top",
    "set_current_run",
    "set_gauge",
    "set_tracing",
    "start_run",
    "trace_span",
    "traced",
    "validate_manifest",
    "worker_begin",
    "worker_collect",
]


# ----------------------------------------------------------------------
# Session switches
# ----------------------------------------------------------------------
def enable_observability() -> None:
    """Turn on tracing and cross-process metric capture together."""
    set_tracing(True)
    _metrics.set_capture(True)


def disable_observability() -> None:
    """Turn both off and reset tracer + registry (no state leaks
    between CLI invocations in one process)."""
    set_tracing(False)
    _metrics.set_capture(False)
    set_current_run(None)


def capture_active() -> bool:
    """Should ParallelExecutor ship worker observations back?"""
    return get_tracer().enabled or _metrics.capture_enabled()


# ----------------------------------------------------------------------
# Worker-side hooks (called by ParallelExecutor)
# ----------------------------------------------------------------------
def worker_begin() -> None:
    """Reset the fork-inherited tracer totals and registry inside a
    worker, so the upcoming task's observations are a clean delta."""
    tracer = get_tracer()
    tracer.reset()
    get_registry().reset()


def worker_collect() -> dict:
    """Snapshot the worker's observations for shipping to the parent."""
    return {
        "spans": get_tracer().snapshot(),
        "metrics": get_registry().dump(),
    }


def absorb_worker(payload: dict) -> None:
    """Parent side: merge one worker task's observations. Spans nest
    under the parent's currently open span."""
    get_tracer().absorb(payload["spans"])
    get_registry().merge(payload["metrics"])


# ----------------------------------------------------------------------
# Current-run plumbing (CLI sets it; instrumented commands annotate it)
# ----------------------------------------------------------------------
_CURRENT_RUN: RunContext | None = None


def set_current_run(run: RunContext | None) -> None:
    global _CURRENT_RUN
    _CURRENT_RUN = run


def current_run() -> RunContext | None:
    return _CURRENT_RUN


def annotate_run(**keys) -> None:
    """Attach provenance to the active run; no-op without one."""
    if _CURRENT_RUN is not None:
        _CURRENT_RUN.annotate(**keys)


def record_result(key: str, value) -> None:
    """Record a headline outcome on the active run; no-op without one."""
    if _CURRENT_RUN is not None:
        _CURRENT_RUN.record_result(key, value)
