"""Leveled, JSON-capable structured logging for the CLI and runtime.

Replaces the bare ``print()`` calls: every emission carries a level, a
logger name and optional key=value fields. Two output modes:

* **plain** (default) — writes exactly the message followed by a
  newline, byte-identical to the ``print()`` calls it replaced, so
  default CLI output (and the tests pinning it) does not change;
* **jsonl** — one JSON record per emission with timestamp, level,
  logger and the structured fields, for machine consumption.

``debug``/``info`` go to ``sys.stdout`` (they *are* the program's
output); ``warning``/``error`` go to ``sys.stderr`` — diagnostics must
not perturb parity-sensitive stdout (a clamped ``n_jobs`` run prints
the same report as a serial one, plus a stderr warning).

The stream is resolved at *emit* time (``sys.stdout``/``sys.stderr``
lookup per call), so pytest's ``capsys`` and any other redirection see
the output.
Deliberately not built on :mod:`logging`: stdlib handlers bind their
stream at configuration time, which breaks exactly that redirection,
and the repro runtime needs no handler fan-out.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass

__all__ = [
    "LEVELS",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "logging_config",
]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_LEVEL_NAMES = {number: name for name, number in LEVELS.items()}


@dataclass
class LogConfig:
    level: int = LEVELS["info"]
    json_lines: bool = False


_CONFIG = LogConfig()
_LOGGERS: dict[str, "StructuredLogger"] = {}


def configure_logging(level: str | int = "info", json_lines: bool = False) -> None:
    """Set the global log level and output mode.

    ``level`` is a name from :data:`LEVELS` or a numeric threshold.
    """
    if isinstance(level, str):
        try:
            level_number = LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; known: {sorted(LEVELS)}"
            ) from None
    else:
        level_number = int(level)
    _CONFIG.level = level_number
    _CONFIG.json_lines = bool(json_lines)


def logging_config() -> LogConfig:
    """The live global configuration (mutating it takes effect)."""
    return _CONFIG


class StructuredLogger:
    """Named logger writing through the global :class:`LogConfig`."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _emit(self, level: int, message: str, fields: dict) -> None:
        if level < _CONFIG.level:
            return
        # Resolved per call: capsys/redirect safe. Diagnostics on stderr.
        stream = sys.stderr if level >= LEVELS["warning"] else sys.stdout
        if _CONFIG.json_lines:
            record = {
                "ts": round(time.time(), 3),
                "level": _LEVEL_NAMES.get(level, str(level)),
                "logger": self.name,
                "message": message,
            }
            if fields:
                record["fields"] = fields
            stream.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        else:
            stream.write(message + "\n")

    def debug(self, message: str, **fields) -> None:
        self._emit(LEVELS["debug"], message, fields)

    def info(self, message: str, **fields) -> None:
        self._emit(LEVELS["info"], message, fields)

    def warning(self, message: str, **fields) -> None:
        self._emit(LEVELS["warning"], message, fields)

    def error(self, message: str, **fields) -> None:
        self._emit(LEVELS["error"], message, fields)


def get_logger(name: str) -> StructuredLogger:
    """Named logger (cached; same name returns the same instance)."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = StructuredLogger(name)
    return logger
