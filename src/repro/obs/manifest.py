"""Run manifests: one JSON record of everything a run was and did.

Every ``train`` / ``monitor`` / ``chaos`` invocation run with
``--run-dir DIR`` writes ``DIR/manifest.json`` stamping:

* identity — run id, command, CLI args, start time, duration, status;
* provenance — config hash (stable digest of the :class:`MFPAConfig`
  knobs including the estimator's parameters), dataset fingerprint
  (content digest of the loaded telemetry), seed, ``n_jobs``;
* behaviour — the aggregated span tree from the tracer and every
  metric family from the registry;
* outcome — the run's headline numbers (TPR/FPR, alarm precision, …).

Manifests answer "what exactly produced this number" months later: two
runs with equal config hash + dataset fingerprint + seed are the same
experiment, and their span trees show where any wall-clock difference
went. The checked-in schema (``manifest_schema.json``, validated by
:func:`validate_manifest` and the ``make obs-smoke`` target) keeps the
format honest across PRs.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = [
    "MANIFEST_VERSION",
    "RunContext",
    "config_hash",
    "dataset_fingerprint",
    "load_manifest",
    "load_schema",
    "start_run",
    "validate_manifest",
]

MANIFEST_VERSION = 1
SCHEMA_PATH = Path(__file__).with_name("manifest_schema.json")


# ----------------------------------------------------------------------
# Provenance digests
# ----------------------------------------------------------------------
def _describe(value: Any) -> Any:
    """Stable JSON-able description of a config value."""
    if is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _describe(getattr(value, field.name))
            for field in fields(value)
        }
    if hasattr(value, "get_params"):  # estimators
        return {
            "class": type(value).__name__,
            "params": {k: _describe(v) for k, v in sorted(value.get_params().items())},
        }
    if isinstance(value, Mapping):
        return {str(k): _describe(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_describe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_hash(config: Any) -> str:
    """16-hex-char digest of a config object (dataclass or mapping).

    Stable across processes and sessions: two configs hash equal iff
    every knob — including nested estimator parameters — is equal.
    """
    payload = json.dumps(_describe(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def dataset_fingerprint(dataset: Any) -> str:
    """16-hex-char content digest of a :class:`TelemetryDataset`.

    Hashes the shape (drive/record counts, column names), the drive
    metadata, and a NaN-safe per-column content digest (sum + a strided
    row sample), so any fault injection, sanitization pass or version
    drift changes the fingerprint without rehashing every byte.
    """
    digest = hashlib.sha256()
    digest.update(f"{dataset.n_drives}:{dataset.n_records}".encode())
    for serial in sorted(dataset.drives):
        meta = dataset.drives[serial]
        digest.update(
            f"{serial}:{meta.vendor}:{meta.failure_day}".encode()
        )
    for name in sorted(dataset.columns):
        values = dataset.columns[name]
        digest.update(name.encode())
        stride = max(1, values.size // 64)
        sample = values[::stride]
        if values.dtype.kind in "fiub":
            as_float = np.asarray(values, dtype=float)
            digest.update(repr(float(np.nansum(as_float))).encode())
            digest.update(np.nan_to_num(np.asarray(sample, dtype=float)).tobytes())
        else:
            digest.update("|".join(str(v) for v in sample).encode())
    return digest.hexdigest()[:16]


def _json_safe(value: Any) -> Any:
    """Recursively replace NaN/Inf with None so the manifest is strict JSON."""
    if isinstance(value, float) and not np.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return _json_safe(float(value))
    return value


# ----------------------------------------------------------------------
# Run context
# ----------------------------------------------------------------------
class RunContext:
    """Accumulates one run's identity, annotations and results, then
    writes the manifest."""

    def __init__(self, run_dir: str | Path, command: str, args: Mapping[str, Any]):
        self.run_dir = Path(run_dir)
        self.command = command
        self.args = {k: _describe(v) for k, v in sorted(dict(args).items())}
        self.started_unix = time.time()
        self._wall_start = time.perf_counter()
        self.run_id = (
            f"{command}-"
            f"{time.strftime('%Y%m%dT%H%M%S', time.gmtime(self.started_unix))}-"
            f"{os.getpid()}"
        )
        self.annotations: dict[str, Any] = {}
        self.results: dict[str, Any] = {}

    def annotate(self, **keys: Any) -> None:
        """Attach provenance keys (config hash, fingerprint, seed, …)."""
        self.annotations.update({k: _describe(v) for k, v in keys.items()})

    def record_result(self, key: str, value: Any) -> None:
        """Record one headline outcome number/structure."""
        self.results[key] = _describe(value)

    # ------------------------------------------------------------------
    def build(self, tracer, registry, status: str = "ok") -> dict:
        """Assemble the manifest dict (no I/O)."""
        return _json_safe(
            {
                "manifest_version": MANIFEST_VERSION,
                "run_id": self.run_id,
                "command": self.command,
                "status": status,
                "created_unix": round(self.started_unix, 3),
                "duration_seconds": round(
                    time.perf_counter() - self._wall_start, 6
                ),
                "args": self.args,
                "annotations": self.annotations,
                "spans": tracer.span_records(),
                "metrics": registry.dump(),
                "results": self.results,
            }
        )

    def finalize(self, tracer, registry, status: str = "ok") -> Path:
        """Write ``<run_dir>/manifest.json`` (plus the Prometheus text
        snapshot) atomically and return the manifest path."""
        manifest = self.build(tracer, registry, status=status)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        path = self.run_dir / "manifest.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        (self.run_dir / "metrics.prom").write_text(registry.to_prometheus())
        return path


def start_run(run_dir: str | Path, command: str, args: Mapping[str, Any]) -> RunContext:
    """Open a run context writing into ``run_dir`` on finalize."""
    return RunContext(run_dir, command, args)


def load_manifest(run_dir: str | Path) -> dict:
    """Read ``<run_dir>/manifest.json``."""
    path = Path(run_dir) / "manifest.json"
    if not path.exists():
        raise FileNotFoundError(
            f"{path} not found — was the run started with --run-dir?"
        )
    return json.loads(path.read_text())


# ----------------------------------------------------------------------
# Schema validation (dependency-free subset of JSON Schema)
# ----------------------------------------------------------------------
def load_schema() -> dict:
    """The checked-in manifest schema."""
    return json.loads(SCHEMA_PATH.read_text())


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check(value: Any, schema: Mapping, where: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        if expected == "number":
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif expected == "integer":
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, _TYPES[expected])
        if not ok:
            errors.append(
                f"{where}: expected {expected}, got {type(value).__name__}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{where}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{where}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{where}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _check(value[key], sub, f"{where}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _check(item, schema["items"], f"{where}[{index}]", errors)


def validate_manifest(manifest: Mapping, schema: Mapping | None = None) -> list[str]:
    """Validate a manifest against the schema; returns the error list
    (empty = valid)."""
    errors: list[str] = []
    _check(dict(manifest), schema or load_schema(), "manifest", errors)
    return errors
