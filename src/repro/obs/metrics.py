"""Counters, gauges and fixed-bucket histograms for the MFPA runtime.

A process-global :class:`MetricsRegistry` holds metric *families* (one
name, one type, one help string) with one sample per label combination —
the Prometheus data model, scaled down to what a single pipeline run
needs. Collection is always on (an increment is a dict lookup and a
float add, cheap enough for per-window/per-fit call sites); the
``--metrics-out`` / ``--run-dir`` CLI flags only control *export*.

Exports:

* :meth:`MetricsRegistry.to_jsonl` — one JSON event per sample, for
  machine diffing and the run manifest;
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format (v0.0.4), scrapeable by pushing to a textfile collector.

Process safety mirrors the tracer: fork workers reset their inherited
registry per task, ship a :meth:`dump` back with the task result, and
the parent :meth:`merge`\\ s it — counters and histogram buckets add,
gauges take the worker's last write. Shipping only happens while
capture is enabled (see :func:`set_capture`), so the default path pays
nothing.

The well-known families of the instrumentation (the metric catalog in
``docs/observability.md``) are pre-declared at registry construction so
every run manifest records them — a counter that stayed at zero is
evidence, not absence.
"""

from __future__ import annotations

import bisect
import json
import time
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "capture_enabled",
    "get_registry",
    "inc_counter",
    "observe_histogram",
    "set_capture",
    "set_gauge",
]

LabelItems = tuple[tuple[str, str], ...]

#: Latency buckets (seconds) — sub-millisecond scoring up to multi-minute fits.
SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0,
)
#: Lead-time buckets (days) for warning-time histograms.
DAYS_BUCKETS = (1, 2, 5, 10, 20, 30, 60, 90, 120, 180)


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for decrements")
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: per-bucket counts, sum and count.

    ``bounds`` are inclusive upper bounds; an implicit ``+Inf`` overflow
    bucket catches the rest. Bucket counts are stored per bucket (not
    cumulative); the Prometheus exposition cumulates on the way out.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = SECONDS_BUCKETS):
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _Family:
    """One metric name: its type, help text and per-label samples."""

    __slots__ = ("name", "type", "help", "bounds", "samples")

    def __init__(self, name: str, kind: str, help: str, bounds=None):
        self.name = name
        self.type = kind
        self.help = help
        self.bounds = bounds
        self.samples: dict[LabelItems, Counter | Gauge | Histogram] = {}

    def sample(self, labels: LabelItems):
        existing = self.samples.get(labels)
        if existing is None:
            if self.type == "counter":
                existing = Counter()
            elif self.type == "gauge":
                existing = Gauge()
            else:
                existing = Histogram(self.bounds or SECONDS_BUCKETS)
            self.samples[labels] = existing
        return existing


#: (name, type, help, histogram bounds or None, eagerly create the
#: unlabeled sample at zero). Labeled families stay empty until used.
CATALOG: tuple[tuple[str, str, str, tuple | None, bool], ...] = (
    ("mfpa_grid_search_fits_total", "counter",
     "(candidate, fold) estimator fits performed by GridSearchCV", None, True),
    ("mfpa_grid_search_candidates_total", "counter",
     "hyperparameter combinations evaluated by GridSearchCV", None, True),
    ("mfpa_selection_rounds_total", "counter",
     "greedy rounds run by SequentialForwardSelector", None, True),
    ("mfpa_selection_candidate_fits_total", "counter",
     "candidate feature subsets cross-validated during forward selection",
     None, True),
    ("forest_trees_fitted_total", "counter",
     "decision trees grown by the random forests", None, True),
    ("gbdt_boosting_rounds_total", "counter",
     "boosting rounds run by GradientBoostingClassifier", None, True),
    ("tree_hist_nodes_total", "counter",
     "tree nodes split-searched by the histogram backend", None, True),
    ("tree_bin_cache_hits_total", "counter",
     "BinnedDataset lookups served from the fingerprint cache", None, True),
    ("tree_bin_cache_misses_total", "counter",
     "BinnedDataset lookups that had to quantile-bin from scratch", None, True),
    ("monitor_windows_scored_total", "counter",
     "fleet windows scored by FleetMonitor", None, True),
    ("monitor_windows_empty_total", "counter",
     "scored windows that raised no alarms", None, True),
    ("monitor_drives_scored_total", "counter",
     "per-window drives scored by FleetMonitor", None, True),
    ("monitor_alarms_raised_total", "counter",
     "alarms raised by FleetMonitor.score_window", None, True),
    ("monitor_retrains_total", "counter",
     "model refreshes triggered by the retrain policy", None, True),
    ("monitor_missed_failures_total", "counter",
     "monitored-period failures with no preceding alarm", None, True),
    ("monitor_alarms_total", "counter",
     "graded alarms by kind (tp | fp | unknown_serial)", None, False),
    ("faults_injected_total", "counter",
     "chaos fault injectors applied, by fault name", None, False),
    ("parallel_tasks_total", "counter",
     "tasks submitted to ParallelExecutor.starmap", None, True),
    ("parallel_pool_forks_total", "counter",
     "worker pools forked by ParallelExecutor", None, True),
    ("parallel_pool_reuses_total", "counter",
     "starmap dispatches served by an already-live persistent pool",
     None, True),
    ("parallel_pool_restarts_total", "counter",
     "persistent pool re-forks (stale payload generation, dead workers, "
     "or a larger worker request)", None, True),
    ("parallel_serial_fallbacks_total", "counter",
     "parallel-capable starmap calls the calibrated cost model ran "
     "serially", None, True),
    ("parallel_pool_workers", "gauge",
     "worker processes in the live persistent pool (0 = no pool)",
     None, True),
    ("parallel_pool_age_seconds", "gauge",
     "age of the live persistent pool since its last fork", None, True),
    ("window_score_seconds", "histogram",
     "wall-clock per FleetMonitor.score_window call", SECONDS_BUCKETS, True),
    ("cv_fold_fit_seconds", "histogram",
     "wall-clock per (candidate, fold) fit-and-score", SECONDS_BUCKETS, True),
    ("selection_candidate_seconds", "histogram",
     "wall-clock per forward-selection candidate evaluation",
     SECONDS_BUCKETS, True),
    ("monitor_lead_time_days", "histogram",
     "days of warning before each truly-failing alarmed drive failed",
     DAYS_BUCKETS, True),
    ("parallel_starmap_seconds", "histogram",
     "wall-clock per ParallelExecutor.starmap call", SECONDS_BUCKETS, True),
    ("tree_bin_build_seconds", "histogram",
     "wall-clock per BinnedDataset quantile-binning build", SECONDS_BUCKETS,
     True),
    # ---- serve daemon (repro.serve) ----
    ("serve_readings_ingested_total", "counter",
     "readings admitted by the ingest gate into the scoring queue", None, True),
    ("serve_readings_quarantined_total", "counter",
     "readings rejected by the ingest gate, by rule", None, False),
    ("serve_readings_repaired_total", "counter",
     "readings admitted after in-place repair, by rule", None, False),
    ("serve_readings_shed_total", "counter",
     "queued readings shed under backpressure (oldest non-alarmed first)",
     None, True),
    ("serve_readings_skipped_alarmed_total", "counter",
     "readings skipped because their drive already alarmed", None, True),
    ("serve_queue_depth", "gauge",
     "readings currently waiting in the bounded ingest queue", None, True),
    ("serve_batches_scored_total", "counter",
     "scoring batches completed by the serve loop", None, True),
    ("serve_windows_scored_total", "counter",
     "monitoring windows flushed by the serve loop", None, True),
    ("serve_stage_retries_total", "counter",
     "retried stage attempts in the serve loop, by stage", None, False),
    ("serve_stage_timeouts_total", "counter",
     "stage attempts abandoned for exceeding their timeout budget",
     None, True),
    ("serve_breaker_state", "gauge",
     "scoring circuit breaker state (0 closed, 1 half-open, 2 open)",
     None, True),
    ("serve_breaker_opens_total", "counter",
     "circuit breaker trips from closed/half-open to open", None, True),
    ("serve_degraded_mode", "gauge",
     "1 while the daemon scores with the reduced-feature model", None, True),
    ("serve_degraded_entries_total", "counter",
     "transitions into degraded (reduced-feature) scoring", None, True),
    ("serve_degraded_exits_total", "counter",
     "transitions back to full-feature scoring", None, True),
    ("serve_alarms_emitted_total", "counter",
     "alarms appended to the alarm sink", None, True),
    ("serve_alarms_suppressed_total", "counter",
     "alarms withheld by the fleet-wide per-window rate budget", None, True),
    ("serve_alarms_deduped_total", "counter",
     "alarm candidates dropped because the drive already alarmed",
     None, True),
    ("serve_checkpoints_total", "counter",
     "window-boundary checkpoints committed by the daemon", None, True),
    ("serve_resumes_total", "counter",
     "daemon starts that restored state from a checkpoint", None, True),
    ("serve_heartbeat_timestamp", "gauge",
     "unix time of the watchdog's last completed tick", None, True),
    ("serve_ticks_total", "counter",
     "pump ticks completed by the serve loop", None, True),
    ("serve_slow_ticks_total", "counter",
     "pump ticks exceeding the watchdog's slow-tick threshold", None, True),
    ("serve_e2e_latency_seconds", "histogram",
     "ingest-to-alarm latency of emitted alarms (daemon clock)",
     SECONDS_BUCKETS, True),
    # ---- live drift monitoring (repro.serve.drift) ----
    ("serve_drift_psi", "gauge",
     "per-window population stability index vs the training-time "
     "ReferenceProfile, by feature (__score__ = score distribution)",
     None, False),
    ("serve_drift_state", "gauge",
     "worst drift severity last window (0 stable, 1 drifting, 2 severe)",
     None, True),
    ("serve_drift_events_total", "counter",
     "rate-budgeted severe-drift events fired by the drift monitor",
     None, True),
    ("serve_drift_events_suppressed_total", "counter",
     "severe-drift windows withheld by the drift event budget", None, True),
    # ---- live observability plane (repro.obs.server) ----
    ("obs_scrapes_total", "counter",
     "HTTP requests served by the observability endpoint, by path",
     None, False),
    ("obs_textfile_writes_total", "counter",
     ".prom textfile exports written by the periodic exporter", None, True),
    # ---- out-of-core sharded execution (repro.scale) ----
    ("tree_bin_cache_evictions_total", "counter",
     "BinnedDataset entries dropped by the bounded LRU", None, True),
    ("scale_shards_written_total", "counter",
     "telemetry shards written to sharded dataset stores", None, True),
    ("scale_shards_read_total", "counter",
     "telemetry shards loaded from sharded dataset stores", None, True),
    ("scale_shards_scored_total", "counter",
     "(shard, window) scoring passes completed by ShardedFleetMonitor",
     None, True),
    ("scale_drives_generated_total", "counter",
     "drives simulated by SSDFleet.generate_shards", None, True),
    ("scale_memory_ceiling_exceeded_total", "counter",
     "memory-ceiling checks that found peak RSS over budget", None, True),
    ("scale_peak_rss_mb", "gauge",
     "process-lifetime peak resident set size in MiB", None, True),
    ("scale_shard_write_seconds", "histogram",
     "wall-clock per shard simulated, assembled and written",
     SECONDS_BUCKETS, True),
    ("scale_shard_score_seconds", "histogram",
     "wall-clock per (shard, window) ShardedFleetMonitor scoring pass",
     SECONDS_BUCKETS, True),
    # ---- inference fast path (repro.ml.arena / repro.ml.artifact) ----
    ("predict_requests_total", "counter",
     "prediction batches served by the forest arena, by engine "
     "(float | binned)", None, False),
    ("predict_rows_total", "counter",
     "rows scored by the forest arena, by engine (float | binned)",
     None, False),
    ("model_artifacts_saved_total", "counter",
     "versioned model artifacts written by save_model", None, True),
    ("model_artifacts_loaded_total", "counter",
     "versioned model artifacts loaded (and sha256-verified) by "
     "load_model", None, True),
    ("predict_batch_seconds", "histogram",
     "wall-clock per arena predict call (descent + aggregation)",
     SECONDS_BUCKETS, True),
    ("predict_encode_seconds", "histogram",
     "wall-clock per integer-code encode of an inference batch against "
     "the refined per-feature code tables", SECONDS_BUCKETS, True),
)


class MetricsRegistry:
    """Process-global collection of metric families."""

    def __init__(self, declare_catalog: bool = True):
        self._families: dict[str, _Family] = {}
        if declare_catalog:
            self._declare_catalog()

    def _declare_catalog(self) -> None:
        for name, kind, help, bounds, eager in CATALOG:
            family = self._family(name, kind, help, bounds)
            if eager:
                family.sample(())

    def _family(self, name: str, kind: str, help: str = "", bounds=None) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, help, bounds)
        elif family.type != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.type}, not {kind}"
            )
        else:
            if help and not family.help:
                family.help = help
        return family

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._family(name, "counter", help).sample(_label_items(labels))

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._family(name, "gauge", help).sample(_label_items(labels))

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None,
        **labels,
    ) -> Histogram:
        family = self._family(name, "histogram", help, buckets)
        return family.sample(_label_items(labels))

    # ------------------------------------------------------------------
    # Lifecycle / merging
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every family, keeping the catalog declarations."""
        self._families.clear()
        self._declare_catalog()

    def dump(self) -> list[dict]:
        """Picklable/JSON-ready snapshot of every family and sample."""
        out = []
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for labels, sample in sorted(family.samples.items()):
                record: dict = {"labels": dict(labels)}
                if isinstance(sample, Histogram):
                    record.update(
                        bounds=list(sample.bounds),
                        bucket_counts=list(sample.bucket_counts),
                        sum=sample.sum,
                        count=sample.count,
                    )
                else:
                    record["value"] = sample.value
                samples.append(record)
            out.append(
                {"name": name, "type": family.type, "help": family.help,
                 "samples": samples}
            )
        return out

    def merge(self, dumped: list[dict]) -> None:
        """Fold a :meth:`dump` from another process into this registry."""
        for entry in dumped:
            family = self._family(
                entry["name"], entry["type"], entry.get("help", "")
            )
            for record in entry["samples"]:
                labels = _label_items(record.get("labels", {}))
                if family.type == "histogram":
                    sample = family.samples.get(labels)
                    if sample is None:
                        sample = family.samples[labels] = Histogram(
                            record["bounds"]
                        )
                    if tuple(sample.bounds) != tuple(record["bounds"]):
                        raise ValueError(
                            f"bucket mismatch merging histogram {family.name!r}"
                        )
                    for i, bucket_count in enumerate(record["bucket_counts"]):
                        sample.bucket_counts[i] += bucket_count
                    sample.sum += record["sum"]
                    sample.count += record["count"]
                elif family.type == "counter":
                    family.sample(labels).inc(record["value"])
                else:
                    family.sample(labels).set(record["value"])

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON event per sample (timestamped at export time)."""
        now = time.time()
        lines = []
        for entry in self.dump():
            for record in entry["samples"]:
                event = {
                    "ts": now,
                    "name": entry["name"],
                    "type": entry["type"],
                    "labels": record["labels"],
                }
                if entry["type"] == "histogram":
                    event.update(
                        count=record["count"],
                        sum=record["sum"],
                        bounds=record["bounds"],
                        bucket_counts=record["bucket_counts"],
                    )
                else:
                    event["value"] = record["value"]
                lines.append(json.dumps(event, sort_keys=True))
        return "\n".join(lines) + "\n" if lines else ""

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (v0.0.4)."""

        def escape_label_value(value: str) -> str:
            # Exposition-format escaping: backslash first, then quote and
            # newline, so already-inserted backslashes are not re-escaped.
            return (
                str(value)
                .replace("\\", r"\\")
                .replace('"', r"\"")
                .replace("\n", r"\n")
            )

        def fmt_labels(labels: dict, extra: tuple[str, str] | None = None) -> str:
            items = list(labels.items())
            if extra is not None:
                items.append(extra)
            if not items:
                return ""
            inner = ",".join(
                f'{k}="{escape_label_value(v)}"' for k, v in items
            )
            return "{" + inner + "}"

        def fmt_value(value: float) -> str:
            as_int = int(value)
            return str(as_int) if value == as_int else repr(value)

        lines: list[str] = []
        for entry in self.dump():
            name = entry["name"]
            if entry.get("help"):
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {entry['type']}")
            for record in entry["samples"]:
                labels = record["labels"]
                if entry["type"] == "histogram":
                    cumulative = 0
                    for bound, bucket_count in zip(
                        record["bounds"], record["bucket_counts"]
                    ):
                        cumulative += bucket_count
                        lines.append(
                            f"{name}_bucket"
                            f"{fmt_labels(labels, ('le', fmt_value(bound)))} "
                            f"{cumulative}"
                        )
                    cumulative += record["bucket_counts"][-1]
                    lines.append(
                        f"{name}_bucket{fmt_labels(labels, ('le', '+Inf'))} "
                        f"{cumulative}"
                    )
                    lines.append(
                        f"{name}_sum{fmt_labels(labels)} {fmt_value(record['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{fmt_labels(labels)} {record['count']}"
                    )
                else:
                    lines.append(
                        f"{name}{fmt_labels(labels)} {fmt_value(record['value'])}"
                    )
        return "\n".join(lines) + "\n"


#: The process-global registry the instrumentation records into.
_GLOBAL = MetricsRegistry()

#: When True, ParallelExecutor ships worker-side registry deltas back to
#: the parent so cross-process totals are complete.
_CAPTURE = False


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL


def set_capture(enabled: bool) -> None:
    """Turn cross-process metric shipping on/off (off also resets)."""
    global _CAPTURE
    _CAPTURE = bool(enabled)
    if not enabled:
        _GLOBAL.reset()


def capture_enabled() -> bool:
    return _CAPTURE


# ----------------------------------------------------------------------
# Call-site conveniences
# ----------------------------------------------------------------------
def inc_counter(name: str, amount: float = 1.0, **labels) -> None:
    _GLOBAL.counter(name, **labels).inc(amount)


def set_gauge(name: str, value: float, **labels) -> None:
    _GLOBAL.gauge(name, **labels).set(value)


def observe_histogram(
    name: str, value: float, buckets: Sequence[float] | None = None, **labels
) -> None:
    _GLOBAL.histogram(name, buckets=buckets, **labels).observe(value)
