"""Human-readable rendering of run manifests (``repro obs report``).

Turns the span tree and metric families a run recorded into the same
fixed-width ASCII tables the benchmark exhibits use, so a run directory
is inspectable without any tooling beyond the CLI itself.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.obs.manifest import load_manifest
from repro.reporting import render_table

__all__ = ["render_metrics", "render_run_report", "render_span_tree"]


def render_span_tree(spans: Sequence[Mapping], title: str = "Span tree") -> str:
    """Render span records (see ``Tracer.span_records``) as a tree table.

    Nesting is shown by indentation; the share column is each span's
    wall-clock as a fraction of its root span (inclusive timings).
    """
    if not spans:
        return f"{title}\n(no spans recorded — was tracing enabled?)"
    ordered = sorted(spans, key=lambda record: tuple(record["path"]))
    root_walls = {
        tuple(record["path"])[0]: record["wall_seconds"]
        for record in ordered
        if len(record["path"]) == 1
    }
    rows = []
    for record in ordered:
        path = tuple(record["path"])
        root_wall = root_walls.get(path[0], 0.0)
        share = record["wall_seconds"] / root_wall if root_wall else float("nan")
        rows.append(
            [
                "  " * (len(path) - 1) + record["name"],
                record["count"],
                f"{record['wall_seconds']:.3f}",
                f"{record['cpu_seconds']:.3f}",
                f"{share:6.1%}" if share == share else "-",
            ]
        )
    return render_table(
        ["Span", "Count", "Wall (s)", "CPU (s)", "% of root"], rows, title=title
    )


def render_metrics(
    metrics: Sequence[Mapping], top: int = 20, title: str = "Top metrics"
) -> str:
    """Render metric families: counters/gauges by value, histograms by
    count/total/mean. Zero-valued samples are elided below the top."""

    def label_text(labels: Mapping) -> str:
        if not labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"

    scalar_rows = []
    histogram_rows = []
    for family in metrics:
        for sample in family["samples"]:
            qualified = family["name"] + label_text(sample["labels"])
            if family["type"] == "histogram":
                histogram_rows.append(
                    [
                        qualified,
                        sample["count"],
                        f"{sample['sum']:.3f}",
                        f"{sample['sum'] / sample['count']:.4f}"
                        if sample["count"]
                        else "-",
                    ]
                )
            else:
                scalar_rows.append((sample["value"], qualified, family["type"]))
    scalar_rows.sort(key=lambda row: (-row[0], row[1]))
    shown = scalar_rows[:top]
    parts = []
    if shown:
        parts.append(
            render_table(
                ["Metric", "Type", "Value"],
                [[name, kind, value] for value, name, kind in shown],
                title=title,
            )
        )
        if len(scalar_rows) > top:
            parts.append(f"(+{len(scalar_rows) - top} more counters/gauges)")
    if histogram_rows:
        parts.append(
            render_table(
                ["Histogram", "Count", "Sum", "Mean"],
                histogram_rows,
                title="Histograms",
            )
        )
    return "\n\n".join(parts) if parts else "(no metrics recorded)"


def render_run_report(run_dir: str) -> str:
    """Full report for one run directory's manifest."""
    manifest = load_manifest(run_dir)
    annotations = manifest.get("annotations", {})
    header = [
        f"run      {manifest['run_id']}  [{manifest['status']}]",
        f"command  {manifest['command']}"
        + (f"  (config {annotations['config_hash']})" if "config_hash" in annotations else ""),
        f"duration {manifest['duration_seconds']:.2f}s",
    ]
    if "dataset_fingerprint" in annotations:
        header.append(f"dataset  {annotations['dataset_fingerprint']}")
    results = manifest.get("results", {})
    parts = [
        "\n".join(header),
        render_span_tree(manifest.get("spans", [])),
        render_metrics(manifest.get("metrics", [])),
    ]
    if results:
        parts.append(
            render_table(
                ["Result", "Value"],
                [[key, results[key]] for key in sorted(results)],
                title="Results",
            )
        )
    return "\n\n".join(parts)
