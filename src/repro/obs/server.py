"""Live scrape surface: HTTP `/metrics`, `/health`, `/status`.

The batch pipeline exports metrics post-hoc (``--metrics-out``, run
manifests); a daemon that runs for months needs to be *scraped while it
works*. :class:`ObsServer` is a stdlib :class:`ThreadingHTTPServer` on a
daemon thread:

* ``GET /metrics`` — Prometheus text exposition v0.0.4 straight from
  the process-global :class:`~repro.obs.metrics.MetricsRegistry`;
* ``GET /health`` — liveness + readiness JSON (a load balancer or
  systemd watchdog decision: 200 when ready, 503 when not);
* ``GET /status`` — a full human/tooling JSON snapshot (what
  ``repro obs top`` renders).

The handlers never block the pump loop: they read the registry (plus
whatever snapshot callables the daemon registered) from the HTTP
thread. Registry reads race benignly with writer threads — ``dump()``
iterates dicts that a concurrent insert can resize — so reads go
through a short retry loop instead of a lock on the hot write path.

For scrape-less deployments :class:`TextfileExporter` periodically
writes the same exposition text to a node_exporter textfile, atomically
(tmp + ``os.replace``) so the collector never reads a torn file.
"""

from __future__ import annotations

import json
import math
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "ObsServer",
    "TextfileExporter",
    "histogram_quantile",
    "registry_status",
]

_LOG = get_logger("repro.obs.server")

#: Content type promised by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_DUMP_RETRIES = 5


def _dump_with_retry(registry: MetricsRegistry) -> list[dict]:
    """Snapshot the registry, tolerating concurrent writer mutation.

    A writer thread creating a brand-new label combination can resize a
    dict mid-iteration (``RuntimeError: dictionary changed size``).
    That's rare and transient — retry a few times rather than lock every
    counter increment in the pump loop.
    """
    for attempt in range(_DUMP_RETRIES):
        try:
            return registry.dump()
        except RuntimeError:
            if attempt == _DUMP_RETRIES - 1:
                raise
    raise AssertionError("unreachable")


def _render_prometheus(registry: MetricsRegistry) -> str:
    for attempt in range(_DUMP_RETRIES):
        try:
            return registry.to_prometheus()
        except RuntimeError:
            if attempt == _DUMP_RETRIES - 1:
                raise
    raise AssertionError("unreachable")


def histogram_quantile(
    bounds: Sequence[float], bucket_counts: Sequence[int], q: float
) -> float:
    """Estimate a quantile from fixed-bucket histogram counts.

    Linear interpolation inside the selected bucket, Prometheus-style:
    the overflow bucket clamps to its lower bound (the largest finite
    bound) since ``+Inf`` cannot be interpolated.
    """
    if not 0 <= q <= 1:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(bucket_counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for i, count in enumerate(bucket_counts):
        cumulative += count
        if cumulative >= rank and count:
            lower = bounds[i - 1] if i > 0 else 0.0
            if i >= len(bounds):  # +Inf overflow bucket
                return float(bounds[-1])
            upper = bounds[i]
            fraction = (rank - (cumulative - count)) / count
            return float(lower + (upper - lower) * fraction)
    return float(bounds[-1])


def registry_status(registry: MetricsRegistry | None = None) -> dict:
    """JSON-ready summary of every non-zero sample in the registry.

    Histograms are condensed to count/sum/mean plus interpolated
    p50/p95/p99 — the per-stage latency summaries `/status` promises.
    """
    registry = registry if registry is not None else get_registry()
    out: dict[str, dict] = {}
    for entry in _dump_with_retry(registry):
        samples = []
        for record in entry["samples"]:
            if entry["type"] == "histogram":
                if not record["count"]:
                    continue
                samples.append({
                    "labels": record["labels"],
                    "count": record["count"],
                    "sum": record["sum"],
                    "mean": record["sum"] / record["count"],
                    "p50": histogram_quantile(
                        record["bounds"], record["bucket_counts"], 0.50),
                    "p95": histogram_quantile(
                        record["bounds"], record["bucket_counts"], 0.95),
                    "p99": histogram_quantile(
                        record["bounds"], record["bucket_counts"], 0.99),
                })
            else:
                if not record["value"]:
                    continue
                samples.append(
                    {"labels": record["labels"], "value": record["value"]}
                )
        if samples:
            out[entry["name"]] = {"type": entry["type"], "samples": samples}
    return out


def _jsonable(value):
    """Strict-JSON coercion: non-finite floats become null, unknown
    objects their string form — a scrape must never 500 on a NaN."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _default_health() -> dict:
    return {"alive": True, "ready": True, "checks": {}}


class _Handler(BaseHTTPRequestHandler):
    # Set by ObsServer on the server instance; reached via self.server.
    server_version = "repro-obs/1"

    def _respond(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, code: int, payload) -> None:
        body = json.dumps(
            _jsonable(payload), sort_keys=True, indent=2
        ).encode() + b"\n"
        self._respond(code, body, "application/json; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        obs: "ObsServer" = self.server.obs  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                obs.count_scrape("/metrics")
                body = _render_prometheus(obs.registry).encode()
                self._respond(200, body, PROMETHEUS_CONTENT_TYPE)
            elif path == "/health":
                obs.count_scrape("/health")
                health = obs.health_fn() if obs.health_fn else _default_health()
                code = 200 if health.get("ready", True) else 503
                self._respond_json(code, health)
            elif path == "/status":
                obs.count_scrape("/status")
                status = obs.status_fn() if obs.status_fn else {}
                status = dict(status)
                status.setdefault("metrics", registry_status(obs.registry))
                self._respond_json(200, status)
            else:
                self._respond_json(
                    404,
                    {"error": "not found",
                     "endpoints": ["/metrics", "/health", "/status"]},
                )
        except BrokenPipeError:
            pass  # client went away mid-write; nothing to salvage
        except Exception as exc:
            _LOG.warning(
                "observability handler failed", path=path, error=repr(exc)
            )
            try:
                self._respond_json(500, {"error": repr(exc)})
            except OSError:
                pass  # response already half-sent on a dead socket

    def log_message(self, format: str, *args) -> None:
        # BaseHTTPRequestHandler writes access logs to stderr; route
        # them through the leveled logger at debug instead.
        _LOG.debug("obs http " + format % args)


class ObsServer:
    """The live observability endpoint, on a daemon thread.

    ``status_fn`` / ``health_fn`` are zero-arg callables supplied by the
    host process (the serve daemon's ``status_snapshot`` /
    ``health_snapshot``); both are optional — a bare server still
    exposes `/metrics` and an always-ready `/health`.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` for the bound value.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
        status_fn: Callable[[], Mapping] | None = None,
        health_fn: Callable[[], Mapping] | None = None,
    ):
        self.host = host
        self.port = int(port)
        self.registry = registry if registry is not None else get_registry()
        self.status_fn = status_fn
        self.health_fn = health_fn
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def count_scrape(self, endpoint: str) -> None:
        self.registry.counter("obs_scrapes_total", endpoint=endpoint).inc()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        if self._httpd is not None:
            raise RuntimeError("observability server already started")
        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.obs = self  # type: ignore[attr-defined]
        self.port = httpd.server_address[1]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        _LOG.info(
            "observability endpoint listening", url=self.url,
            endpoints=["/metrics", "/health", "/status"],
        )
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class TextfileExporter:
    """Periodic atomic ``.prom`` writer for scrape-less deployments.

    Writes the registry's exposition text to ``path`` every
    ``interval`` seconds from a daemon thread, via tmp +
    :func:`os.replace` so a node_exporter textfile collector never
    observes a torn file. :meth:`write_once` is also usable standalone
    (and is called a final time on :meth:`stop`, so the file reflects
    shutdown-instant truth).
    """

    def __init__(
        self,
        path: str | Path,
        interval: float = 15.0,
        registry: MetricsRegistry | None = None,
    ):
        if interval <= 0:
            raise ValueError("textfile interval must be positive")
        self.path = Path(path)
        self.interval = float(interval)
        self.registry = registry if registry is not None else get_registry()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def write_once(self) -> Path:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        text = _render_prometheus(self.registry)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, self.path)
        self.registry.counter("obs_textfile_writes_total").inc()
        return self.path

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.write_once()
            except OSError as exc:
                _LOG.warning(
                    "textfile export failed", path=str(self.path),
                    error=repr(exc),
                )

    def start(self) -> "TextfileExporter":
        if self._thread is not None:
            raise RuntimeError("textfile exporter already started")
        self.write_once()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-textfile", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None
        try:
            self.write_once()
        except OSError:
            pass  # final flush is best-effort on teardown
