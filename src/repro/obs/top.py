"""``repro obs top`` — a curses-free refreshing terminal dashboard.

Polls a running daemon's `/status` and `/health` endpoints
(:mod:`repro.obs.server`) and repaints a compact operator view:
readiness checks, throughput counters, per-stage latency percentiles,
alarm/shed/quarantine pressure and the live drift table. Rendering is a
pure function of the two JSON payloads (:func:`render_top`), so tests
drive it without a network or a TTY; the refresh loop just clears the
screen with ANSI codes — no curses dependency.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, TextIO

from repro.obs.logs import get_logger

__all__ = ["fetch_json", "render_top", "run_top"]

_LOG = get_logger("repro.obs.top")

#: Home + clear-to-end — repaint without scrollback spam.
ANSI_CLEAR = "\x1b[H\x1b[2J"

_DRIFT_GLYPH = {0: "·", 1: "~", 2: "!"}


def fetch_json(url: str, timeout: float = 2.0) -> dict:
    """GET ``url`` and parse the JSON body (also on 4xx/5xx, which the
    health endpoint uses for not-ready)."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode())
    except urllib.error.HTTPError as err:
        # /health returns 503 with a JSON body while not ready.
        return json.loads(err.read().decode())


def _fmt(value, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _counter_value(metrics: dict, name: str) -> float:
    family = metrics.get(name)
    if not family:
        return 0.0
    return sum(s.get("value", 0.0) for s in family.get("samples", []))


def render_top(status: dict, health: dict | None = None) -> str:
    """Render one dashboard frame from `/status` (+ optional `/health`)."""
    lines: list[str] = []
    metrics = status.get("metrics", {})

    ready = None if health is None else health.get("ready")
    badge = {True: "READY", False: "NOT READY", None: "?"}[ready]
    lines.append(
        f"repro serve — {badge}   watermark={_fmt(status.get('watermark'))}   "
        f"window_start={_fmt(status.get('window_start'))}   "
        f"degraded={_fmt(status.get('degraded'))}"
    )
    if health:
        checks = health.get("checks", {})
        if checks:
            parts = []
            for name in sorted(checks):
                check = checks[name]
                ok = check.get("ok") if isinstance(check, dict) else bool(check)
                parts.append(f"{name}={'ok' if ok else 'FAIL'}")
            lines.append("checks   " + "  ".join(parts))
    lines.append("")

    queue = status.get("queue", {})
    lines.append(
        f"queue    depth={_fmt(queue.get('depth'))}/"
        f"{_fmt(queue.get('capacity'))}   "
        f"breaker={_fmt(status.get('breaker', {}).get('name'))}   "
        f"staged={_fmt(status.get('staged'))}"
    )
    lines.append(
        "counts   "
        f"ingested={_fmt(_counter_value(metrics, 'serve_readings_ingested_total'), 0)}  "
        f"scored_windows={_fmt(_counter_value(metrics, 'serve_windows_scored_total'), 0)}  "
        f"alarms={_fmt(_counter_value(metrics, 'serve_alarms_emitted_total'), 0)}  "
        f"shed={_fmt(_counter_value(metrics, 'serve_readings_shed_total'), 0)}  "
        f"quarantined={_fmt(_counter_value(metrics, 'serve_readings_quarantined_total'), 0)}  "
        f"checkpoints={_fmt(_counter_value(metrics, 'serve_checkpoints_total'), 0)}"
    )
    lines.append("")

    histograms = [
        (name, family)
        for name, family in sorted(metrics.items())
        if family.get("type") == "histogram"
    ]
    if histograms:
        lines.append(
            f"{'latency (s)':<34} {'count':>8} {'mean':>9} {'p50':>9} "
            f"{'p95':>9} {'p99':>9}"
        )
        for name, family in histograms:
            for sample in family["samples"]:
                labels = sample.get("labels") or {}
                label = name + (
                    "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels else ""
                )
                lines.append(
                    f"{label:<34} {sample['count']:>8} "
                    f"{_fmt(sample.get('mean')):>9} {_fmt(sample.get('p50')):>9} "
                    f"{_fmt(sample.get('p95')):>9} {_fmt(sample.get('p99')):>9}"
                )
        lines.append("")

    drift = status.get("drift")
    if drift:
        lines.append(
            f"drift    state={drift.get('state_name', '?')}   "
            f"worst_psi={_fmt(drift.get('worst'))}   "
            f"score_psi={_fmt(drift.get('score'))}   "
            f"window={_fmt(drift.get('window_start'))}"
        )
        features = drift.get("features") or {}
        worst = sorted(features.items(), key=lambda kv: kv[1], reverse=True)[:8]
        for column, psi in worst:
            glyph = _DRIFT_GLYPH[2 if psi >= 0.25 else 1 if psi >= 0.1 else 0]
            lines.append(f"  {glyph} {column:<28} psi={_fmt(psi, 4)}")
        lines.append("")

    alarms = status.get("alarms", {})
    if alarms:
        lines.append(
            f"alarms   ledger={_fmt(alarms.get('ledger'))}   "
            f"alarmed_drives={_fmt(alarms.get('alarmed'))}"
        )
    return "\n".join(lines) + "\n"


def run_top(
    url: str,
    interval: float = 2.0,
    iterations: int | None = None,
    clear: bool = True,
    out: TextIO | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll ``url``'s `/status` + `/health` and repaint until interrupted.

    ``iterations=None`` runs forever (Ctrl-C to stop); a finite count is
    for scripts and tests. Returns the number of successful frames.
    """
    base = url.rstrip("/")
    if not base.startswith("http"):
        base = "http://" + base
    frames = 0
    n = 0
    try:
        while iterations is None or n < iterations:
            n += 1
            try:
                status = fetch_json(base + "/status")
                health = fetch_json(base + "/health")
            except (OSError, ValueError) as exc:
                _LOG.warning(
                    "obs top poll failed", url=base, error=repr(exc)
                )
            else:
                frame = render_top(status, health)
                text = (ANSI_CLEAR if clear else "") + frame
                if out is None:
                    _LOG.info(text.rstrip("\n"))
                else:
                    out.write(text)
                    out.flush()
                frames += 1
            if iterations is None or n < iterations:
                sleep(interval)
    except KeyboardInterrupt:
        pass  # operator detached; frames so far are the result
    return frames
