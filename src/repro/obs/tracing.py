"""Structured span tracing for the MFPA pipeline.

A *span* is one timed section of work ("pipeline.fit", "forest.fit_tree")
with wall-clock and CPU time. Spans nest: entering a span while another
is open records the child under the parent's path, so a whole run
aggregates into a tree keyed by ``("train", "pipeline.fit", "training",
"forest.fit", ...)`` paths. Timings are *inclusive* (a parent's time
contains its children's).

The tracer aggregates rather than streams: repeated spans with the same
path fold into one :class:`SpanStats` (count, total wall, total CPU), so
tracing a 40-tree forest costs 40 tiny dict updates, not an event log.

Process safety
--------------
Fork workers inherit the enabled tracer. :class:`repro.parallel.executor.
ParallelExecutor` resets the worker-local totals before each task (via
:func:`repro.obs.worker_begin`), collects the per-task snapshot with the
task's result, and the parent merges it under its *current* span path
with :meth:`Tracer.absorb` — so spans recorded inside workers land in the
same place in the tree as they would have in a serial run, and
totals-per-name are identical at every ``n_jobs``.

Tracing is off by default and :func:`trace_span` is a cheap no-op then;
instrumented code never changes results, only records timings.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

__all__ = [
    "SpanStats",
    "Tracer",
    "get_tracer",
    "set_tracing",
    "trace_span",
    "traced",
]

#: A span's position in the tree: the names of every open ancestor plus
#: its own, root first.
SpanPath = tuple[str, ...]


@dataclass
class SpanStats:
    """Aggregated timings for every occurrence of one span path."""

    count: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0

    def add(self, count: int, wall_seconds: float, cpu_seconds: float) -> None:
        self.count += count
        self.wall_seconds += wall_seconds
        self.cpu_seconds += cpu_seconds


class Tracer:
    """Aggregating span recorder.

    Parameters
    ----------
    enabled:
        When False (the default for the global tracer), :meth:`span` is a
        no-op context manager and nothing is recorded.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.totals: dict[SpanPath, SpanStats] = {}
        self._stack: list[str] = []

    # ------------------------------------------------------------------
    @property
    def current_path(self) -> SpanPath:
        """Path of the innermost open span (empty at the root)."""
        return tuple(self._stack)

    def reset(self) -> None:
        """Drop all recorded spans and any (stale) open-span stack."""
        self.totals.clear()
        self._stack.clear()

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a section under ``name``, nested below any open span."""
        if not self.enabled:
            yield
            return
        self._stack.append(name)
        path = tuple(self._stack)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield
        finally:
            stats = self.totals.get(path)
            if stats is None:
                stats = self.totals[path] = SpanStats()
            stats.add(
                1,
                time.perf_counter() - wall_start,
                time.process_time() - cpu_start,
            )
            self._stack.pop()

    # ------------------------------------------------------------------
    # Cross-process aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[SpanPath, tuple[int, float, float]]:
        """Picklable copy of the totals (for shipping out of a worker)."""
        return {
            path: (stats.count, stats.wall_seconds, stats.cpu_seconds)
            for path, stats in self.totals.items()
        }

    def absorb(
        self,
        snapshot: Mapping[SpanPath, tuple[int, float, float]],
        prefix: SpanPath | None = None,
    ) -> None:
        """Merge a worker snapshot under ``prefix`` (default: the
        currently open span path), as if those spans had run here."""
        if not self.enabled or not snapshot:
            return
        base = self.current_path if prefix is None else tuple(prefix)
        for path, (count, wall, cpu) in snapshot.items():
            full = base + tuple(path)
            stats = self.totals.get(full)
            if stats is None:
                stats = self.totals[full] = SpanStats()
            stats.add(count, wall, cpu)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def span_records(self) -> list[dict]:
        """JSON-ready span rows, sorted so parents precede children."""
        return [
            {
                "path": list(path),
                "name": path[-1],
                "count": stats.count,
                "wall_seconds": round(stats.wall_seconds, 6),
                "cpu_seconds": round(stats.cpu_seconds, 6),
            }
            for path, stats in sorted(self.totals.items())
        ]


#: The process-global tracer every ``trace_span`` call records into.
_GLOBAL = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _GLOBAL


def set_tracing(enabled: bool) -> None:
    """Enable or disable the global tracer (disabling also resets it)."""
    _GLOBAL.enabled = enabled
    if not enabled:
        _GLOBAL.reset()


def trace_span(name: str):
    """Context manager timing a section on the global tracer.

    Usage::

        with trace_span("pipeline.fit"):
            ...
    """
    return _GLOBAL.span(name)


def traced(name: str | None = None) -> Callable:
    """Decorator form of :func:`trace_span` (span named after the
    function unless ``name`` is given)."""

    def decorate(function: Callable) -> Callable:
        label = name or function.__qualname__

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            with _GLOBAL.span(label):
                return function(*args, **kwargs)

        return wrapper

    return decorate
