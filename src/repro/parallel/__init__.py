"""Parallel execution layer: process pools with deterministic fallback.

See :mod:`repro.parallel.executor` for the design; ``docs/performance.md``
documents the seeding discipline that keeps every ``n_jobs`` setting
bit-identical.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    SharedPayload,
    effective_n_jobs,
    fork_available,
    share,
)

__all__ = [
    "ParallelExecutor",
    "SharedPayload",
    "effective_n_jobs",
    "fork_available",
    "share",
]
