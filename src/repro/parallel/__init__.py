"""Parallel execution layer: a persistent process pool with deterministic fallback.

See :mod:`repro.parallel.executor` for the design (dispatch + calibrated
serial fallback), :mod:`repro.parallel.pool` for the persistent pool
lifecycle, and :mod:`repro.parallel.shared` for the generation-tagged
copy-on-write payload registry. ``docs/performance.md`` documents the
seeding discipline that keeps every ``n_jobs`` setting bit-identical.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    SharedPayload,
    StalePayloadError,
    effective_n_jobs,
    fork_available,
    share,
    shutdown_pool,
)

__all__ = [
    "ParallelExecutor",
    "SharedPayload",
    "StalePayloadError",
    "effective_n_jobs",
    "fork_available",
    "share",
    "shutdown_pool",
]
