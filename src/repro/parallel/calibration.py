"""Measured cost model behind the executor's calibrated serial fallback.

Forking and dispatching have real prices: pool spin-up is tens of
milliseconds, and every task round-trip through the result pipe costs a
little more. When the work being distributed is smaller than those
prices, ``n_jobs > 1`` is a measured net *loss* — the bug this module
exists to prevent. The executor therefore:

1. measures pool spin-up whenever it forks, and per-task dispatch
   overhead with a tiny no-op calibration pass on the fresh pool;
2. probes the first task of each ``starmap`` in-process (its result is
   kept — nothing is wasted) and folds the duration into a per-task-
   function EWMA;
3. dispatches the remaining tasks to the pool only when the estimated
   serial time saved exceeds the estimated overhead — otherwise it
   runs them serially and counts a ``parallel_serial_fallbacks_total``.

This replaces hand-tuned guards like the fleet monitor's old
"stay serial below 256 rows per worker" constant with numbers measured
on the running host.

Test hooks: :func:`set_serial_fallback_mode` forces the decision
(``"always"`` = always fall back, ``"never"`` = always dispatch,
``"auto"`` = measure and decide), so the lifecycle suite can pin both
paths deterministically.
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "CostModel",
    "get_cost_model",
    "serial_fallback_mode",
    "set_serial_fallback_mode",
]

#: EWMA smoothing for all duration estimates.
_ALPHA = 0.5

#: Conservative priors used until the first real measurement lands.
_DEFAULT_SPINUP_SECONDS = 0.05
_DEFAULT_DISPATCH_SECONDS = 0.001

_MODES = ("auto", "always", "never")
_mode = "auto"


def set_serial_fallback_mode(mode: str) -> None:
    """Force ('always'/'never') or restore ('auto') the serial fallback."""
    global _mode
    if mode not in _MODES:
        raise ValueError(f"fallback mode must be one of {_MODES}, got {mode!r}")
    _mode = mode


def serial_fallback_mode() -> str:
    return _mode


def _ewma(previous: float | None, sample: float) -> float:
    if previous is None:
        return sample
    return _ALPHA * sample + (1.0 - _ALPHA) * previous


class CostModel:
    """EWMA estimates of task durations and pool overheads."""

    def __init__(self) -> None:
        self.spinup_seconds: float | None = None
        self.dispatch_seconds: float | None = None
        self._task_seconds: dict[str, float] = {}

    def reset(self) -> None:
        """Forget all measurements (test isolation hook)."""
        self.spinup_seconds = None
        self.dispatch_seconds = None
        self._task_seconds.clear()

    # -- measurement ---------------------------------------------------
    @staticmethod
    def task_key(task: Callable) -> str:
        return f"{getattr(task, '__module__', '?')}.{getattr(task, '__qualname__', repr(task))}"

    def observe_spinup(self, seconds: float) -> None:
        self.spinup_seconds = _ewma(self.spinup_seconds, seconds)

    def observe_dispatch(self, per_task_seconds: float) -> None:
        self.dispatch_seconds = _ewma(self.dispatch_seconds, per_task_seconds)

    def observe_task(self, key: str, per_task_seconds: float) -> None:
        self._task_seconds[key] = _ewma(
            self._task_seconds.get(key), per_task_seconds
        )

    def estimate_task(self, key: str) -> float | None:
        return self._task_seconds.get(key)

    # -- decision ------------------------------------------------------
    def worth_dispatching(
        self, key: str, n_tasks: int, workers: int, pool_is_warm: bool
    ) -> bool:
        """Does a pool beat the serial loop for ``n_tasks`` of ``key``?

        Compares the serial time a pool would save against the overhead
        it would add; with no task estimate yet the executor is expected
        to probe first, so an unknown task conservatively stays serial.
        """
        if workers < 2 or n_tasks < 1:
            return False
        per_task = self._task_seconds.get(key)
        if per_task is None:
            return False
        spinup = 0.0 if pool_is_warm else (
            self.spinup_seconds
            if self.spinup_seconds is not None
            else _DEFAULT_SPINUP_SECONDS
        )
        dispatch = (
            self.dispatch_seconds
            if self.dispatch_seconds is not None
            else _DEFAULT_DISPATCH_SECONDS
        )
        serial_seconds = per_task * n_tasks
        saved = serial_seconds * (1.0 - 1.0 / min(workers, n_tasks))
        overhead = spinup + dispatch * n_tasks
        return saved > overhead


_COST_MODEL = CostModel()


def get_cost_model() -> CostModel:
    return _COST_MODEL
