"""Process-pool execution substrate for the embarrassingly parallel paths.

The MFPA workload (per-tree forest fitting, per-candidate grid search,
per-feature forward selection, per-drive fleet scoring) decomposes into
independent tasks that all read the *same* large arrays. This module
provides the one primitive everything shares:

* :class:`ParallelExecutor` — ``starmap`` over a task list, either
  in-process (``n_jobs=1``, the deterministic reference path) or on the
  **persistent** ``fork``-context worker pool owned by
  :mod:`repro.parallel.pool`. The pool is forked lazily on the first
  parallel dispatch and reused across forest trees, GBDT rounds,
  grid-search candidates, monitor windows and sharded-monitor shards;
  it re-forks transparently when workers die or when task arguments
  carry payloads registered after the fork. Task order is always
  preserved, so callers that pre-derive per-task seeds get
  **bit-identical** results at every ``n_jobs``.
* :func:`share` — registers a payload (feature matrix, fitted model) in
  the generation-tagged registry (:mod:`repro.parallel.shared`).
  Workers inherit the registry through copy-on-write fork memory and
  dereference a tiny :class:`SharedPayload` token, so the dataset is
  never pickled per task — only the token and per-task index arrays
  cross the pipe.

Dispatching is gated by a measured cost model
(:mod:`repro.parallel.calibration`): the first task of a ``starmap`` is
probed in-process (its result is kept), and the remainder go to the
pool only when the estimated serial time saved exceeds the measured
fork/dispatch overhead — otherwise the whole call runs serially and
counts a ``parallel_serial_fallbacks_total``. That is what makes
"parallel never slower than serial" hold even on a single-core box.

``n_jobs`` above ``os.cpu_count()`` is clamped (with a warning logged
once per distinct request and the effective count surfaced in the run
manifest); set ``REPRO_PARALLEL_OVERSUBSCRIBE=1`` to opt out, which the
parallel test suite does so pool paths stay covered on small CI boxes.

Platforms without ``fork`` (Windows; macOS under spawn-only policies)
silently fall back to the serial path: correctness never depends on the
pool, only wall-clock does. Workers themselves are marked so nested
``ParallelExecutor`` use inside a task (e.g. a forest with ``n_jobs>1``
cloned inside a parallel grid search) degrades to serial instead of
forking recursively.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Sequence

from repro.obs import (
    absorb_worker,
    annotate_run,
    capture_active,
    get_logger,
    inc_counter,
    observe_histogram,
    trace_span,
    worker_begin,
    worker_collect,
)

from repro.parallel import pool as pool_manager
from repro.parallel.calibration import get_cost_model, serial_fallback_mode
from repro.parallel.shared import (
    SharedPayload,
    StalePayloadError,
    in_worker,
    share,
)

__all__ = [
    "ParallelExecutor",
    "SharedPayload",
    "StalePayloadError",
    "effective_n_jobs",
    "fork_available",
    "share",
    "shutdown_pool",
]

_LOG = get_logger("repro.parallel")

#: Environment switch that disables the cpu_count clamp (tests use it to
#: exercise real pool paths on single-core machines).
_OVERSUBSCRIBE_ENV = "REPRO_PARALLEL_OVERSUBSCRIBE"

#: (requested, cap) pairs already warned about, so fleets of executors
#: built in a loop don't spam the log.
_WARNED_CLAMPS: set[tuple[int, int]] = set()


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (safe to call anytime)."""
    pool_manager.shutdown()


def _oversubscribe_allowed() -> bool:
    return os.environ.get(_OVERSUBSCRIBE_ENV, "") not in ("", "0")


def effective_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` request to a concrete worker count.

    ``None`` means 1 (serial); negative values count back from the CPU
    count joblib-style (``-1`` = all cores, ``-2`` = all but one).
    Positive requests above ``os.cpu_count()`` are clamped to the core
    count — oversubscribed fork workers only add page-fault and context-
    switch cost — with a warning logged once per distinct request.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ValueError("n_jobs must not be 0; use 1 for serial or -1 for all cores")
    cap = os.cpu_count() or 1
    if n_jobs < 0:
        return max(1, cap + 1 + n_jobs)
    if n_jobs > cap and not _oversubscribe_allowed():
        if (n_jobs, cap) not in _WARNED_CLAMPS:
            _WARNED_CLAMPS.add((n_jobs, cap))
            _LOG.warning(
                f"n_jobs={n_jobs} exceeds os.cpu_count()={cap}; "
                f"clamping to {cap} worker{'s' if cap != 1 else ''} "
                f"(set {_OVERSUBSCRIBE_ENV}=1 to override)",
                requested=n_jobs,
                cpu_count=cap,
            )
        return cap
    return n_jobs


def _observed_call(task: Callable[..., Any], arguments: tuple) -> tuple[Any, dict]:
    """Worker-side wrapper when observability capture is on.

    Resets the fork-inherited tracer/registry so this task's spans and
    metrics are a clean delta, and ships that delta back alongside the
    task's (unchanged) result for the parent to absorb.
    """
    worker_begin()
    result = task(*arguments)
    return result, worker_collect()


def _max_generation(tasks: Sequence[tuple]) -> int:
    """Newest registry generation referenced by any task argument.

    The pool serving these tasks must have forked at or after this
    generation, or its workers' registry snapshots miss the payload.
    Handles are passed as top-level tuple items by every caller, so one
    flat scan suffices.
    """
    generation = 0
    for arguments in tasks:
        for item in arguments:
            if isinstance(item, SharedPayload) and item.generation > generation:
                generation = item.generation
    return generation


class ParallelExecutor:
    """Ordered ``starmap`` over independent tasks, serial or forked.

    Parameters
    ----------
    n_jobs:
        Worker count; 1 (or ``None``) runs in-process. Negative counts
        back from the CPU count (``-1`` = all cores); positive requests
        are clamped to the CPU count (see :func:`effective_n_jobs`).

    The serial path, the calibrated fallback path and the pool path all
    execute the *same* task functions on the *same* pre-derived
    arguments, so any caller that hoists its randomness into the task
    list (per-tree seeds, fold indices) is bit-identical at every
    ``n_jobs``.
    """

    def __init__(self, n_jobs: int | None = 1):
        self.requested_n_jobs = n_jobs
        self.n_jobs = effective_n_jobs(n_jobs)
        if (
            isinstance(n_jobs, int)
            and n_jobs > 1
            and self.n_jobs != n_jobs
        ):
            annotate_run(
                parallel_requested_n_jobs=n_jobs,
                parallel_effective_n_jobs=self.n_jobs,
            )

    @property
    def is_parallel(self) -> bool:
        """Whether ``starmap`` is *allowed* to dispatch to a pool here
        and now (the calibrated cost model may still keep it serial)."""
        return self.n_jobs > 1 and fork_available() and not in_worker()

    def starmap(
        self, task: Callable[..., Any], argument_tuples: Sequence[tuple]
    ) -> list:
        """Apply ``task`` to every argument tuple, preserving order.

        Spans and metrics recorded inside tasks behave identically at
        every ``n_jobs``: on the serial path they land in the live
        tracer/registry directly; on the pool path each task ships its
        observation delta back with its result and the parent absorbs
        it under the currently open span (see :mod:`repro.obs`).
        Shipping only happens while observability capture is active, so
        the default result protocol is untouched.
        """
        tasks = list(argument_tuples)
        started = time.perf_counter()
        with trace_span("parallel.starmap"):
            inc_counter("parallel_tasks_total", len(tasks))
            if len(tasks) <= 1 or not self.is_parallel:
                results = [task(*arguments) for arguments in tasks]
            else:
                results = self._parallel_starmap(task, tasks)
            observe_histogram(
                "parallel_starmap_seconds", time.perf_counter() - started
            )
            return results

    # -- parallel-capable dispatch ------------------------------------
    def _parallel_starmap(self, task: Callable[..., Any], tasks: list) -> list:
        model = get_cost_model()
        key = model.task_key(task)
        mode = serial_fallback_mode()
        workers = min(self.n_jobs, len(tasks))
        generation = _max_generation(tasks)

        if mode == "always":
            inc_counter("parallel_serial_fallbacks_total")
            return self._timed_serial(model, key, task, tasks)
        if mode == "never":
            return self._dispatch(task, tasks, workers, generation)

        # auto: probe the first task in-process when this task function
        # has no cost estimate yet. The probe's result is kept — the
        # measurement costs nothing beyond running task #1 serially.
        results: list = []
        remaining = tasks
        if model.estimate_task(key) is None:
            probe_started = time.perf_counter()
            results.append(task(*tasks[0]))
            model.observe_task(key, time.perf_counter() - probe_started)
            remaining = tasks[1:]
            if not remaining:
                return results

        warm = pool_manager.pool_is_warm(workers, generation)
        if not model.worth_dispatching(key, len(remaining), workers, warm):
            inc_counter("parallel_serial_fallbacks_total")
            results.extend(self._timed_serial(model, key, task, remaining))
            return results

        results.extend(self._dispatch(task, remaining, workers, generation))
        return results

    @staticmethod
    def _timed_serial(model, key: str, task, tasks: list) -> list:
        """Serial execution that keeps the task-cost EWMA fresh."""
        started = time.perf_counter()
        results = [task(*arguments) for arguments in tasks]
        if tasks:
            model.observe_task(
                key, (time.perf_counter() - started) / len(tasks)
            )
        return results

    def _dispatch(
        self, task, tasks: list, workers: int, generation: int
    ) -> list:
        capture = capture_active()
        pool_task = _observed_call if capture else task
        pool_args = [(task, arguments) for arguments in tasks] if capture else tasks
        # Small chunks keep the pool busy when task durations are skewed
        # (deep trees next to stumps) without flooding the result pipe.
        chunksize = max(1, len(tasks) // (workers * 4))
        try:
            raw = pool_manager.acquire(workers, generation).starmap(
                pool_task, pool_args, chunksize=chunksize
            )
        except StalePayloadError:
            # A worker forked before a payload it was handed (e.g. the
            # registry changed between acquire() and dispatch). Re-fork
            # once against the current registry and retry.
            pool_manager.shutdown()
            raw = pool_manager.acquire(workers, generation).starmap(
                pool_task, pool_args, chunksize=chunksize
            )
        if not capture:
            return raw
        results = []
        for result, observations in raw:
            absorb_worker(observations)
            results.append(result)
        return results
