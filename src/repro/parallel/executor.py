"""Process-pool execution substrate for the embarrassingly parallel paths.

The MFPA workload (per-tree forest fitting, per-candidate grid search,
per-feature forward selection, per-drive fleet scoring) decomposes into
independent tasks that all read the *same* large arrays. This module
provides the one primitive everything shares:

* :class:`ParallelExecutor` — ``starmap`` over a task list, either
  in-process (``n_jobs=1``, the deterministic reference path) or on a
  fresh ``fork``-context worker pool. Task order is always preserved,
  so callers that pre-derive per-task seeds get **bit-identical**
  results at every ``n_jobs``.
* :func:`share` — registers a payload (feature matrix, fitted model) in
  a module-level registry *before* the pool forks. Workers inherit the
  registry through copy-on-write fork memory and dereference a tiny
  :class:`SharedPayload` token, so the dataset is never pickled per
  task — only the token and per-task index arrays cross the pipe.

Platforms without ``fork`` (Windows; macOS under spawn-only policies)
silently fall back to the serial path: correctness never depends on the
pool, only wall-clock does. Workers themselves are marked so nested
``ParallelExecutor`` use inside a task (e.g. a forest with ``n_jobs>1``
cloned inside a parallel grid search) degrades to serial instead of
forking recursively.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.obs import (
    absorb_worker,
    capture_active,
    inc_counter,
    observe_histogram,
    trace_span,
    worker_begin,
    worker_collect,
)

__all__ = [
    "ParallelExecutor",
    "SharedPayload",
    "effective_n_jobs",
    "fork_available",
    "share",
]

#: Parent-side payload registry; forked workers see a copy-on-write view.
_SHARED: dict[int, Any] = {}
_TOKENS = itertools.count()

#: Set (in the child) by the pool initializer; guards nested pools.
_IN_WORKER = False


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def effective_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` request to a concrete worker count.

    ``None`` means 1 (serial); negative values count back from the CPU
    count joblib-style (``-1`` = all cores, ``-2`` = all but one).
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ValueError("n_jobs must not be 0; use 1 for serial or -1 for all cores")
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


class SharedPayload:
    """Pickle-cheap handle to data registered with :func:`share`.

    Only the integer token crosses process boundaries; :meth:`get`
    dereferences the fork-inherited registry inside the worker (or the
    live registry when running serially in the parent).
    """

    __slots__ = ("token",)

    def __init__(self, token: int):
        self.token = token

    def get(self) -> Any:
        try:
            return _SHARED[self.token]
        except KeyError:  # pragma: no cover - defensive
            raise RuntimeError(
                "shared payload is no longer registered; SharedPayload handles "
                "are only valid inside the share() context that created them"
            ) from None

    def __getstate__(self) -> int:
        return self.token

    def __setstate__(self, token: int) -> None:
        self.token = token


@contextmanager
def share(payload: Any) -> Iterator[SharedPayload]:
    """Register ``payload`` for fork-inherited hand-off to workers.

    Pools must be created *inside* the context (ParallelExecutor always
    forks lazily per ``starmap`` call, so this holds by construction).
    """
    token = next(_TOKENS)
    _SHARED[token] = payload
    try:
        yield SharedPayload(token)
    finally:
        del _SHARED[token]


def _init_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _observed_call(task: Callable[..., Any], arguments: tuple) -> tuple[Any, dict]:
    """Worker-side wrapper when observability capture is on.

    Resets the fork-inherited tracer/registry so this task's spans and
    metrics are a clean delta, and ships that delta back alongside the
    task's (unchanged) result for the parent to absorb.
    """
    worker_begin()
    result = task(*arguments)
    return result, worker_collect()


class ParallelExecutor:
    """Ordered ``starmap`` over independent tasks, serial or forked.

    Parameters
    ----------
    n_jobs:
        Worker count; 1 (or ``None``) runs in-process. Negative counts
        back from the CPU count (``-1`` = all cores).

    The serial path and the pool path execute the *same* task functions
    on the *same* pre-derived arguments, so any caller that hoists its
    randomness into the task list (per-tree seeds, fold indices) is
    bit-identical at every ``n_jobs``.
    """

    def __init__(self, n_jobs: int | None = 1):
        self.n_jobs = effective_n_jobs(n_jobs)

    @property
    def is_parallel(self) -> bool:
        """Whether ``starmap`` would actually fork a pool here and now."""
        return self.n_jobs > 1 and fork_available() and not _IN_WORKER

    def starmap(
        self, task: Callable[..., Any], argument_tuples: Sequence[tuple]
    ) -> list:
        """Apply ``task`` to every argument tuple, preserving order.

        Spans and metrics recorded inside tasks behave identically at
        every ``n_jobs``: on the serial path they land in the live
        tracer/registry directly; on the pool path each task ships its
        observation delta back with its result and the parent absorbs
        it under the currently open span (see :mod:`repro.obs`).
        Shipping only happens while observability capture is active, so
        the default result protocol is untouched.
        """
        tasks = list(argument_tuples)
        started = time.perf_counter()
        with trace_span("parallel.starmap"):
            inc_counter("parallel_tasks_total", len(tasks))
            if len(tasks) <= 1 or not self.is_parallel:
                results = [task(*arguments) for arguments in tasks]
                observe_histogram(
                    "parallel_starmap_seconds", time.perf_counter() - started
                )
                return results
            inc_counter("parallel_pool_forks_total")
            workers = min(self.n_jobs, len(tasks))
            context = multiprocessing.get_context("fork")
            # Small chunks keep the pool busy when task durations are skewed
            # (deep trees next to stumps) without flooding the result pipe.
            chunksize = max(1, len(tasks) // (workers * 4))
            capture = capture_active()
            pool_task = _observed_call if capture else task
            pool_args = [(task, arguments) for arguments in tasks] if capture else tasks
            with context.Pool(processes=workers, initializer=_init_worker) as pool:
                raw = pool.starmap(pool_task, pool_args, chunksize=chunksize)
            if capture:
                results = []
                for result, observations in raw:
                    absorb_worker(observations)
                    results.append(result)
            else:
                results = raw
            observe_histogram(
                "parallel_starmap_seconds", time.perf_counter() - started
            )
            return results
