"""Persistent fork-pool lifecycle for :class:`ParallelExecutor`.

The original executor forked a fresh ``multiprocessing.Pool`` on every
``starmap`` call, paying pool start-up plus copy-on-write page-fault
cost per forest, per GBDT round, per grid-search candidate and per
monitor window — the measured net loss recorded in
``benchmarks/results/parallel_speedup.json``. This module owns exactly
one process-wide pool instead:

* **Lazy fork, broad reuse.** The pool is created on the first parallel
  dispatch and reused by every later one that fits inside it
  (``parallel_pool_reuses_total``).
* **Generation safety.** The pool records the shared-registry
  generation (:func:`repro.parallel.shared.registry_generation`) it
  forked at. A dispatch whose task arguments carry payloads registered
  *after* that fork restarts the pool first, so workers always hold a
  registry snapshot that covers every token they are asked to
  dereference.
* **Crash-safe re-fork.** A dispatch against a pool with dead workers
  (or one torn down by a crash) re-forks transparently
  (``parallel_pool_restarts_total``); no caller sees a broken pool.
* **Explicit shutdown.** :func:`shutdown` tears the pool down
  deterministically and runs from an ``atexit`` hook so interpreter
  exit never hangs on live workers.

Forking also feeds the calibration layer: every fork times the spin-up
and runs a tiny no-op starmap to measure per-task dispatch overhead,
which is what makes the executor's serial fallback *calibrated* rather
than guessed.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from multiprocessing.pool import Pool
from typing import Any

from repro.obs import inc_counter, set_gauge

from repro.parallel import shared
from repro.parallel.calibration import get_cost_model

__all__ = [
    "acquire",
    "pool_is_warm",
    "pool_stats",
    "shutdown",
]

#: Tasks used to time per-task dispatch overhead on a fresh pool.
_CALIBRATION_TASKS = 32

_pool: Pool | None = None
_workers = 0
#: PIDs of the workers as forked. Pool's maintainer thread silently
#: respawns dead workers, so ``is_alive`` alone cannot detect a crash —
#: but a respawned worker has a fresh pid (and may sit behind a queue a
#: dying worker left broken), so any pid drift means re-fork.
_worker_pids: tuple[int | None, ...] = ()
_fork_generation = -1
_forked_at = 0.0
_restarts = 0
_atexit_registered = False


def _noop() -> None:
    """Calibration task: measures pure dispatch/result-pipe overhead."""


def _init_worker() -> None:
    shared.mark_worker()


def _alive(pool: Pool) -> bool:
    procs = getattr(pool, "_pool", None)
    if not procs:
        return False
    if tuple(proc.pid for proc in procs) != _worker_pids:
        return False
    return all(proc.is_alive() for proc in procs)


def pool_is_warm(workers: int, generation: int) -> bool:
    """Whether a dispatch could reuse the live pool without a re-fork."""
    return (
        _pool is not None
        and workers <= _workers
        and generation <= _fork_generation
        and _alive(_pool)
    )


def pool_stats() -> dict[str, Any]:
    """Lifecycle snapshot (used by tests and the run manifest)."""
    return {
        "live": _pool is not None,
        "workers": _workers if _pool is not None else 0,
        "fork_generation": _fork_generation,
        "restarts": _restarts,
        "age_seconds": time.monotonic() - _forked_at if _pool is not None else 0.0,
    }


def acquire(workers: int, generation: int) -> Pool:
    """Return a live pool of at least ``workers`` covering ``generation``.

    Reuses the persistent pool when it is big enough, forked at or
    after every payload the caller will dereference, and all its
    workers are alive; otherwise tears it down and re-forks. The caller
    never owns the pool — it must not close or terminate it.
    """
    global _pool, _workers, _worker_pids, _fork_generation, _forked_at
    global _restarts, _atexit_registered
    if _pool is not None:
        if pool_is_warm(workers, generation):
            inc_counter("parallel_pool_reuses_total")
            set_gauge(
                "parallel_pool_age_seconds", time.monotonic() - _forked_at
            )
            return _pool
        _teardown()
        _restarts += 1
        inc_counter("parallel_pool_restarts_total")

    started = time.perf_counter()
    context = multiprocessing.get_context("fork")
    pool = context.Pool(processes=workers, initializer=_init_worker)
    spinup = time.perf_counter() - started
    inc_counter("parallel_pool_forks_total")

    model = get_cost_model()
    model.observe_spinup(spinup)
    dispatch_started = time.perf_counter()
    pool.starmap(_noop, [()] * _CALIBRATION_TASKS)
    model.observe_dispatch(
        (time.perf_counter() - dispatch_started) / _CALIBRATION_TASKS
    )

    _pool = pool
    _workers = workers
    _worker_pids = tuple(proc.pid for proc in pool._pool)
    _fork_generation = shared.registry_generation()
    _forked_at = time.monotonic()
    set_gauge("parallel_pool_workers", workers)
    set_gauge("parallel_pool_age_seconds", 0.0)
    if not _atexit_registered:
        atexit.register(shutdown)
        _atexit_registered = True
    return _pool


def _repair_queue_locks(pool: Pool) -> None:
    """Release queue locks a killed worker may have died holding.

    ``Pool.terminate`` drains the task queue under ``inqueue._rlock``
    and posts the result-handler sentinel under ``outqueue._wlock``. A
    worker killed mid ``get``/``put`` leaves the semaphore permanently
    acquired and ``terminate`` deadlocks in ``_help_stuff_finish``.
    Both are plain (non-recursive) semaphores, so once every worker is
    dead the parent can restore them from its side.
    """
    for queue_lock in (
        getattr(pool._inqueue, "_rlock", None),
        getattr(pool._outqueue, "_wlock", None),
    ):
        if queue_lock is None:  # pragma: no cover - platform dependent
            continue
        if queue_lock.acquire(block=False):
            queue_lock.release()
        else:
            try:
                queue_lock.release()
            except ValueError:  # pragma: no cover - racing live holder
                pass


def _teardown() -> None:
    global _pool, _workers, _worker_pids
    if _pool is None:
        return
    if not _alive(_pool):
        # Crash path: respawned workers may be blocked on a lock a dead
        # sibling held. Kill whatever is left, then repair the queue
        # locks so ``terminate`` cannot deadlock draining the queues.
        procs = list(getattr(_pool, "_pool", None) or ())
        for proc in procs:
            if proc.is_alive():
                proc.kill()
        for proc in procs:
            proc.join(timeout=5.0)
        _repair_queue_locks(_pool)
    _pool.terminate()
    _pool.join()
    _pool = None
    _workers = 0
    _worker_pids = ()
    set_gauge("parallel_pool_workers", 0)
    set_gauge("parallel_pool_age_seconds", 0.0)


def shutdown() -> None:
    """Tear down the persistent pool (idempotent; also the atexit hook)."""
    _teardown()
