"""Copy-on-write payload registry behind :func:`share`.

Workers never receive large payloads (feature matrices, fitted models)
through the task pipe. Instead the parent registers them here, the pool
inherits the registry through ``fork`` copy-on-write memory, and tasks
carry a pickle-cheap :class:`SharedPayload` token.

With the persistent worker pool (:mod:`repro.parallel.pool`) the pool
can outlive any single ``share()`` context, so the registry is
**generation-tagged**: every *new* registration bumps a global
generation counter, each payload remembers the generation it was
registered at, and the executor compares those against the generation
the pool forked at. A payload newer than the pool triggers a controlled
pool restart (re-fork) instead of a stale-token crash inside a worker.

Two deliberate lifecycle quirks:

* **Identity reuse.** Re-sharing the *same object* returns the same
  token at its original generation. The fleet monitor shares its fitted
  model once per window; identity reuse means only the first window
  (and the first window after a retrain) pays a pool restart — every
  later window reuses both the token and the live pool.
* **Deferred eviction.** When the last ``share()`` context for a
  payload exits, the entry is only marked *released*, not deleted —
  deleting it would defeat identity reuse one window later. Released
  entries are evicted in bulk whenever a genuinely new payload
  registers (the pool restarts then anyway). Parent-side ``get()`` on a
  released handle still raises, preserving the "handles are only valid
  inside their context" contract; worker-side ``get()`` ignores the
  release flag because the worker's registry is a fork-time snapshot.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "SharedPayload",
    "StalePayloadError",
    "in_worker",
    "mark_worker",
    "register_shared",
    "registry_generation",
    "release_shared",
    "share",
]

#: token -> payload. Forked workers see a copy-on-write snapshot.
_REGISTRY: dict[int, Any] = {}
#: token -> number of live share() contexts (0 = released, cached).
_REFS: dict[int, int] = {}
#: token -> generation the payload was registered at.
_GENERATIONS: dict[int, int] = {}
#: token -> human-readable payload name (for error messages).
_NAMES: dict[int, str] = {}
#: id(payload) -> token, for identity reuse. Entries are valid only
#: while the token is registered (the registry holds the strong ref
#: that keeps ``id`` stable).
_BY_ID: dict[int, int] = {}

_TOKENS = itertools.count()
#: Bumped on every *new* registration; the pool records the value it
#: forked at and restarts when payloads newer than the fork appear.
_GENERATION = 0

#: True inside pool workers (set by the pool initializer at fork).
_IN_WORKER = False


def mark_worker() -> None:
    """Flag this process as a pool worker (called by the initializer)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """Whether this process is a fork-pool worker."""
    return _IN_WORKER


def registry_generation() -> int:
    """Current registry generation (compared against the pool's fork)."""
    return _GENERATION


class StalePayloadError(RuntimeError):
    """A :class:`SharedPayload` handle that cannot be dereferenced.

    Raised with the payload's name and registration generation so the
    failure is actionable: either the handle escaped the ``share()``
    context that created it (parent side), or a worker forked before
    the payload was registered (executor bug — the generation check in
    :meth:`ParallelExecutor.starmap` should have restarted the pool).
    """

    def __init__(self, name: str, generation: int, reason: str):
        self.payload_name = name
        self.generation = generation
        super().__init__(
            f"shared payload {name!r} (generation {generation}) {reason}"
        )


class SharedPayload:
    """Pickle-cheap handle to data registered with :func:`share`.

    Only the token, name and generation cross process boundaries;
    :meth:`get` dereferences the fork-inherited registry inside the
    worker (or the live registry when running serially in the parent).
    """

    __slots__ = ("token", "name", "generation")

    def __init__(self, token: int, name: str = "payload", generation: int = 0):
        self.token = token
        self.name = name
        self.generation = generation

    def get(self) -> Any:
        try:
            payload = _REGISTRY[self.token]
        except KeyError:
            raise StalePayloadError(
                self.name,
                self.generation,
                "is not registered in this process; handles are only valid "
                "inside the share() context that created them, and workers "
                "must fork at or after the payload's generation",
            ) from None
        if not _IN_WORKER and _REFS.get(self.token, 0) < 1:
            raise StalePayloadError(
                self.name,
                self.generation,
                "was released; SharedPayload handles are only valid inside "
                "the share() context that created them",
            )
        return payload

    def __getstate__(self) -> tuple[int, str, int]:
        return (self.token, self.name, self.generation)

    def __setstate__(self, state: tuple[int, str, int] | int) -> None:
        if isinstance(state, tuple):
            self.token, self.name, self.generation = state
        else:  # handles pickled by the pre-generation executor
            self.token, self.name, self.generation = state, "payload", 0


def _evict_released() -> None:
    """Drop zero-ref (released) entries; runs before a new registration
    bumps the generation, i.e. exactly when the pool restarts anyway."""
    for token in [t for t, refs in _REFS.items() if refs < 1]:
        payload = _REGISTRY.pop(token)
        _BY_ID.pop(id(payload), None)
        _REFS.pop(token, None)
        _GENERATIONS.pop(token, None)
        _NAMES.pop(token, None)


def register_shared(payload: Any, name: str | None = None) -> SharedPayload:
    """Register ``payload`` (or re-claim its cached registration).

    Sharing an object that is already registered — live or released —
    returns a handle to the existing token at its original generation,
    so repeated ``share(model)`` calls with the same model never force
    a pool restart. Only a genuinely new payload bumps the generation.
    """
    global _GENERATION
    token = _BY_ID.get(id(payload))
    if token is not None and _REGISTRY.get(token) is payload:
        _REFS[token] = _REFS.get(token, 0) + 1
        return SharedPayload(token, _NAMES[token], _GENERATIONS[token])
    _evict_released()
    _GENERATION += 1
    token = next(_TOKENS)
    label = name if name is not None else type(payload).__name__
    _REGISTRY[token] = payload
    _REFS[token] = 1
    _GENERATIONS[token] = _GENERATION
    _NAMES[token] = label
    _BY_ID[id(payload)] = token
    return SharedPayload(token, label, _GENERATION)


def release_shared(handle: SharedPayload) -> None:
    """Drop one ``share()`` reference; the entry stays cached at zero
    refs until the next new registration evicts it."""
    if handle.token in _REFS:
        _REFS[handle.token] = max(0, _REFS[handle.token] - 1)


@contextmanager
def share(payload: Any, name: str | None = None) -> Iterator[SharedPayload]:
    """Register ``payload`` for fork-inherited hand-off to workers.

    The executor guarantees any pool serving tasks that reference the
    returned handle forked at or after the registration (restarting the
    pool when necessary), so the context no longer needs to enclose
    pool creation — but handles still must not escape the context.
    """
    handle = register_shared(payload, name)
    try:
        yield handle
    finally:
        release_shared(handle)
