"""Plain-text rendering of experiment tables and series."""

from repro.reporting.model_card import generate_model_card
from repro.reporting.tables import render_series, render_table

__all__ = ["generate_model_card", "render_series", "render_table"]
