"""Model-card generation: one markdown document per trained model.

Production ML governance expects every deployed model to ship with a
card describing its data, configuration, metrics and caveats. This
builds one from a fitted :class:`~repro.core.pipeline.MFPA`, pulling
the evaluation, top permutation importances, and current feature-drift
status into a single reviewable artifact.
"""

from __future__ import annotations

from repro.core.drift import feature_drift_report
from repro.core.explain import permutation_importance
from repro.core.pipeline import MFPA


def generate_model_card(
    model: MFPA,
    eval_start: int,
    eval_end: int,
    include_importance: bool = True,
    include_drift: bool = True,
    importance_repeats: int = 2,
) -> str:
    """Render a markdown model card for a fitted pipeline.

    The evaluation period also anchors the drift measurement: drift is
    reported between the 90 days before the training cutoff and the
    evaluation period itself.
    """
    model._check_fitted()
    config = model.config
    result = model.evaluate(eval_start, eval_end)
    summary = model.dataset_.summary()

    lines: list[str] = []
    lines.append("# MFPA model card")
    lines.append("")
    lines.append("## Configuration")
    lines.append("")
    lines.append(f"- feature group: **{config.feature_group_name}**"
                 f" ({len(model.assembler_.columns)} columns in use)")
    lines.append(f"- algorithm: **{type(model.model_).__name__}**")
    lines.append(f"- θ (failure-time threshold): {config.theta} days")
    lines.append(f"- positive window: {config.positive_window} days; "
                 f"lookahead: {config.lookahead} days")
    lines.append(f"- under-sampling ratio: {config.negative_ratio}:1")
    lines.append(f"- discontinuity repair: drop gaps ≥ {config.max_gap}d, "
                 f"fill ≤ {config.fill_gap}d")
    lines.append(f"- decision threshold: {config.decision_threshold:.3f}")
    lines.append(f"- trained through day {model.train_end_day_}")
    lines.append("")

    lines.append("## Training data")
    lines.append("")
    for vendor in sorted(summary):
        entry = summary[vendor]
        lines.append(
            f"- vendor {vendor}: {int(entry['total'])} drives, "
            f"{int(entry['failures'])} failures "
            f"(RR {entry['replacement_rate']:.4f})"
        )
    report = model.preprocess_report_
    lines.append(
        f"- preprocessing: {report.n_input_rows} -> {report.n_output_rows} rows "
        f"(dropped {report.n_rows_dropped}, filled {report.n_rows_filled}, "
        f"drives dropped {report.n_drives_dropped})"
    )
    lines.append(f"- labeled failures: {len(model.failure_times_)}")
    lines.append("")

    lines.append(f"## Evaluation (days {eval_start}-{eval_end})")
    lines.append("")
    drive = result.drive_report
    record = result.record_report
    lines.append("| Level | TPR | FPR | ACC | PDR | AUC |")
    lines.append("|---|---|---|---|---|---|")
    lines.append(
        f"| drive | {drive.tpr:.4f} | {drive.fpr:.4f} | {drive.accuracy:.4f} "
        f"| {drive.pdr:.4f} | {drive.auc:.4f} |"
    )
    lines.append(
        f"| record | {record.tpr:.4f} | {record.fpr:.4f} | {record.accuracy:.4f} "
        f"| {record.pdr:.4f} | {record.auc:.4f} |"
    )
    lines.append("")
    lines.append(
        f"{result.n_faulty_drives} faulty and {result.n_healthy_drives} healthy "
        f"drives evaluated."
    )
    lines.append("")

    if include_importance:
        lines.append("## Top features (permutation importance)")
        lines.append("")
        importances = permutation_importance(
            model, eval_start, eval_end, n_repeats=importance_repeats
        )
        for importance in importances[:8]:
            lines.append(f"- `{importance.column}`: AUC drop {importance.auc_drop:.4f}")
        lines.append("")

    if include_drift:
        lines.append("## Feature drift vs training era")
        lines.append("")
        reference = (max(0, model.train_end_day_ - 90), model.train_end_day_)
        drift = feature_drift_report(model, reference, (eval_start, eval_end))
        flagged = [d for d in drift if d.severity != "stable"][:8]
        if flagged:
            for entry in flagged:
                lines.append(
                    f"- `{entry.column}`: PSI {entry.psi:.3f} ({entry.severity})"
                )
        else:
            lines.append("- no feature exceeds the PSI 0.1 drift threshold")
        lines.append("")

    lines.append("## Caveats")
    lines.append("")
    lines.append(
        "- Trained on synthetic CSS telemetry (see DESIGN.md §2); absolute"
        " rates do not transfer to production fleets."
    )
    lines.append(
        "- The paper recommends model iteration every 2-3 months; monitor"
        " drift and FPR before extending deployment."
    )
    return "\n".join(lines)
