"""ASCII table / series rendering shared by examples and benchmarks.

Every benchmark prints its reproduced table or figure through these so
the output of ``pytest benchmarks/ --benchmark-only`` doubles as the
EXPERIMENTS.md evidence.
"""

from __future__ import annotations

from typing import Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if abs(value) >= 1000 or (0 < abs(value) < 0.001):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render a fixed-width ASCII table."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in formatted)) if formatted else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in formatted:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence, ys: Sequence[float], width: int = 40, title: str = ""
) -> str:
    """Render an x/y series as a labeled horizontal bar chart."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    finite = [y for y in ys if y == y]
    peak = max(finite) if finite else 1.0
    scale = width / peak if peak > 0 else 0.0
    lines = [title or name]
    label_width = max((len(str(x)) for x in xs), default=1)
    for x, y in zip(xs, ys):
        if y != y:
            bar, shown = "", "NaN"
        else:
            bar = "#" * max(0, int(round(y * scale)))
            shown = _format_cell(float(y))
        lines.append(f"{str(x).rjust(label_width)} | {bar} {shown}")
    return "\n".join(lines)
