"""Fault tolerance: operate *through* bad telemetry, not just reject it.

The paper's premise is that consumer telemetry is unreliable — machines
boot irregularly, collectors crash mid-upload, whole feature dimensions
(WindowsEvent, BSOD) are absent on some installations. This package
turns those collector faults from pipeline-killing exceptions into
accounted-for operating conditions:

* :mod:`repro.robustness.quarantine` — repair/drop invalid rows into a
  structured report instead of failing (`sanitize_dataset`);
* :mod:`repro.robustness.degraded` — score with missing feature
  dimensions via imputation and reduced-dimension fallback models;
* :mod:`repro.robustness.checkpoint` — persist/restore
  :class:`~repro.core.deployment.FleetMonitor` state so a crashed
  monitor resumes with identical alarms;
* :mod:`repro.robustness.faults` — seeded, composable chaos injectors
  for datasets and client reading streams.
"""

from repro.robustness.checkpoint import (
    CheckpointCorruptError,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
    verify_manifest,
    write_manifest,
)
from repro.robustness.degraded import (
    DegradedPrediction,
    DegradedScorer,
    adapt_for_missing_dimensions,
    fit_reduced_model,
    missing_dimensions,
)
from repro.robustness.faults import (
    FAULT_REGISTRY,
    CounterReset,
    DropDays,
    DuplicateRows,
    FaultInjector,
    MissingDimension,
    OutOfOrder,
    StuckSensor,
    inject,
    inject_stream,
    make_fault,
)
from repro.robustness.quarantine import (
    QuarantinePolicy,
    QuarantineReport,
    sanitize_dataset,
)

__all__ = [
    "CheckpointCorruptError",
    "CounterReset",
    "DegradedPrediction",
    "DegradedScorer",
    "DropDays",
    "DuplicateRows",
    "FAULT_REGISTRY",
    "FaultInjector",
    "MissingDimension",
    "OutOfOrder",
    "QuarantinePolicy",
    "QuarantineReport",
    "StuckSensor",
    "adapt_for_missing_dimensions",
    "fit_reduced_model",
    "has_checkpoint",
    "inject",
    "inject_stream",
    "load_checkpoint",
    "make_fault",
    "missing_dimensions",
    "sanitize_dataset",
    "save_checkpoint",
    "verify_manifest",
    "write_manifest",
]
