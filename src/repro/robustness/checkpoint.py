"""Checkpointing primitives: crash (or lose power) mid-run, resume identically.

A monitor that loses its alarm ledger on restart re-alarms every drive
it already flagged (operator alarm fatigue) and forgets when it last
retrained (drift). The checkpoint captures everything
:func:`~repro.core.deployment.simulate_operation` needs to continue a
run as if it had never stopped:

* ``state.json`` — alarmed serials, retrain bookkeeping, the alarm
  threshold, and every scored :class:`MonitoringWindow` so far;
* ``model.pkl``  — the fitted model (with its prepared dataset),
  config and policy, pickled. Re-fitting on resume would be equally
  deterministic but strictly slower; pickling guarantees bit-identical
  probabilities either way.

Durability contract:

* every file write is atomic (temp file + ``os.replace``) **and**
  durable — the temp file is fsynced before the rename and the
  directory after it, so a committed checkpoint survives power loss,
  not just process crash;
* ``manifest.json``, written last, records the sha256 and size of every
  checkpoint file — it is the commit record. A checkpoint whose files
  do not match their manifest (truncated ``model.pkl``, crash while
  overwriting) fails :func:`verify_manifest` with a typed
  :class:`CheckpointCorruptError` instead of an opaque ``pickle.load``
  traceback;
* a *half pair* (one of ``state.json``/``model.pkl`` present without
  the other — a crash between the two writes) is reported by
  :func:`has_checkpoint` as "no usable checkpoint" and its stray files
  are cleaned up so the caller restarts from scratch.

The same primitives (:func:`atomic_write`, :func:`write_manifest`,
:func:`verify_manifest`, :func:`has_checkpoint_files`) back the serve
daemon's checkpoints in :mod:`repro.serve.daemon`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.deployment import FleetMonitor, MonitoringWindow

from repro.telemetry.dataset import TelemetryDataset

CHECKPOINT_VERSION = 1
MANIFEST_VERSION = 1
_STATE_FILE = "state.json"
_MODEL_FILE = "model.pkl"
_MANIFEST_FILE = "manifest.json"
#: The file pair a FleetMonitor checkpoint consists of.
MONITOR_FILES = (_MODEL_FILE, _STATE_FILE)


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file is missing, truncated, or fails its sha256."""


def _fsync_path(path: Path) -> None:
    """fsync a file or directory; best-effort on filesystems that
    refuse directory fsync (the rename itself is still atomic)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic fs
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic fs
        pass
    finally:
        os.close(fd)


def atomic_write(path: str | Path, data: bytes) -> None:
    """Atomic *and durable* write: fsync the temp file before
    ``os.replace`` and the directory after, so the committed bytes
    survive power loss, not just process crash."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_path(path.parent)


# Backwards-compatible private alias (pre-manifest callers).
_atomic_write = atomic_write


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_manifest(directory: str | Path, filenames: Iterable[str]) -> Path:
    """Write the sha256 content manifest — the checkpoint commit record.

    Must be called *after* every listed file is in place; a checkpoint
    without a matching manifest is treated as legacy (pre-manifest) by
    :func:`verify_manifest` and as uncommitted by the serve daemon.
    """
    path = Path(directory)
    manifest = {
        "version": MANIFEST_VERSION,
        "files": {
            name: {
                "sha256": _sha256_file(path / name),
                "size": (path / name).stat().st_size,
            }
            for name in filenames
        },
    }
    target = path / _MANIFEST_FILE
    atomic_write(target, json.dumps(manifest, sort_keys=True).encode())
    return target


def verify_manifest(
    directory: str | Path, filenames: Iterable[str] | None = None
) -> bool:
    """Check every checkpoint file against its manifest entry.

    Returns ``True`` when verified, ``False`` for a legacy checkpoint
    with no manifest at all. Raises :class:`CheckpointCorruptError` on
    an unreadable manifest, a missing file, a size mismatch
    (truncation) or a content-hash mismatch.
    """
    path = Path(directory)
    manifest_path = path / _MANIFEST_FILE
    if not manifest_path.exists():
        return False
    try:
        manifest = json.loads(manifest_path.read_text())
        files = dict(manifest["files"])
    except (ValueError, KeyError, TypeError) as error:
        raise CheckpointCorruptError(
            f"unreadable checkpoint manifest {manifest_path}: {error}"
        ) from error
    names = tuple(filenames) if filenames is not None else tuple(sorted(files))
    for name in names:
        entry = files.get(name)
        if entry is None:
            raise CheckpointCorruptError(
                f"checkpoint file {name!r} has no manifest entry in {path}"
            )
        target = path / name
        if not target.exists():
            raise CheckpointCorruptError(f"checkpoint file {target} is missing")
        size = target.stat().st_size
        if size != entry["size"]:
            raise CheckpointCorruptError(
                f"checkpoint file {target} is truncated or overgrown: "
                f"{size} bytes on disk, {entry['size']} in manifest"
            )
        if _sha256_file(target) != entry["sha256"]:
            raise CheckpointCorruptError(
                f"checkpoint file {target} fails its sha256 content check"
            )
    return True


def discard_partial_checkpoint(
    directory: str | Path, filenames: Iterable[str] = MONITOR_FILES
) -> None:
    """Remove the leftovers of a half-written checkpoint."""
    path = Path(directory)
    for name in (*filenames, _MANIFEST_FILE):
        try:
            (path / name).unlink()
        except FileNotFoundError:
            pass


def has_checkpoint_files(
    directory: str | Path, filenames: Iterable[str] = MONITOR_FILES
) -> bool:
    """Whether ``directory`` holds a *usable* (complete) checkpoint.

    A half pair — some but not all of ``filenames`` present, the
    signature of a crash between the per-file atomic writes — can never
    be restored, so it is cleaned up here and reported as "no usable
    checkpoint" rather than left to crash the loader.
    """
    path = Path(directory)
    names = tuple(filenames)
    present = [name for name in names if (path / name).exists()]
    if len(present) == len(names):
        return True
    if present or (path / _MANIFEST_FILE).exists():
        discard_partial_checkpoint(path, names)
    return False


def has_checkpoint(directory: str | Path) -> bool:
    """Whether ``directory`` holds a usable FleetMonitor checkpoint."""
    return has_checkpoint_files(directory, MONITOR_FILES)


def save_checkpoint(
    monitor: "FleetMonitor",
    windows: list["MonitoringWindow"],
    directory: str | Path,
) -> Path:
    """Persist a started monitor and its scored windows."""
    monitor._check_started()
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    payload = {
        "config": monitor.config,
        "policy": monitor.policy,
        "model": monitor.model,
    }
    atomic_write(path / _MODEL_FILE, pickle.dumps(payload))

    state = {
        "version": CHECKPOINT_VERSION,
        "alarmed": sorted(monitor._alarmed),
        "last_trained_day": monitor._last_trained_day,
        "failures_at_training": monitor._failures_at_training,
        "alarm_threshold": monitor.alarm_threshold,
        "windows": [
            {
                "start_day": window.start_day,
                "end_day": window.end_day,
                "n_drives_scored": window.n_drives_scored,
                "retrained": window.retrained,
                "alarms": [
                    {
                        "serial": alarm.serial,
                        "day": alarm.day,
                        "probability": alarm.probability,
                    }
                    for alarm in window.alarms
                ],
            }
            for window in windows
        ],
    }
    atomic_write(path / _STATE_FILE, json.dumps(state).encode())
    # Manifest last: it is the commit record — hashes of both files as
    # they now exist on disk. A crash before this line leaves files the
    # manifest (old or absent) does not vouch for, which load_checkpoint
    # reports as CheckpointCorruptError instead of loading garbage.
    write_manifest(path, MONITOR_FILES)
    return path


def load_checkpoint(
    directory: str | Path, dataset: TelemetryDataset
) -> tuple["FleetMonitor", list["MonitoringWindow"]]:
    """Restore a monitor (bound to ``dataset``) and its window history.

    Raises :class:`CheckpointCorruptError` when the files fail their
    manifest (truncation, hash mismatch) or the pickle/state payloads
    are undecodable; ``FileNotFoundError`` when there is no checkpoint.
    """
    from repro.core.deployment import Alarm, FleetMonitor, MonitoringWindow

    path = Path(directory)
    if not has_checkpoint(path):
        raise FileNotFoundError(f"{path} does not contain a monitor checkpoint")
    verify_manifest(path, MONITOR_FILES)

    try:
        state = json.loads((path / _STATE_FILE).read_text())
    except ValueError as error:
        raise CheckpointCorruptError(
            f"checkpoint state {path / _STATE_FILE} is not valid JSON: {error}"
        ) from error
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(f"unsupported checkpoint version {version!r}")
    try:
        with open(path / _MODEL_FILE, "rb") as handle:
            payload = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError, IndexError) as error:
        raise CheckpointCorruptError(
            f"checkpoint model {path / _MODEL_FILE} is undecodable "
            f"(truncated write?): {error}"
        ) from error

    monitor = FleetMonitor(
        config=payload["config"],
        policy=payload["policy"],
        alarm_threshold=state["alarm_threshold"],
    )
    monitor.dataset = dataset
    monitor.model = payload["model"]
    monitor._alarmed = set(state["alarmed"])
    monitor._last_trained_day = state["last_trained_day"]
    monitor._failures_at_training = state["failures_at_training"]

    windows = [
        MonitoringWindow(
            start_day=entry["start_day"],
            end_day=entry["end_day"],
            alarms=[
                Alarm(
                    serial=alarm["serial"],
                    day=alarm["day"],
                    probability=alarm["probability"],
                )
                for alarm in entry["alarms"]
            ],
            n_drives_scored=entry["n_drives_scored"],
            retrained=entry["retrained"],
        )
        for entry in state["windows"]
    ]
    return monitor, windows
