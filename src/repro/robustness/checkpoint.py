"""FleetMonitor checkpointing: crash mid-horizon, resume identically.

A monitor that loses its alarm ledger on restart re-alarms every drive
it already flagged (operator alarm fatigue) and forgets when it last
retrained (drift). The checkpoint captures everything
:func:`~repro.core.deployment.simulate_operation` needs to continue a
run as if it had never stopped:

* ``state.json`` — alarmed serials, retrain bookkeeping, the alarm
  threshold, and every scored :class:`MonitoringWindow` so far;
* ``model.pkl``  — the fitted model (with its prepared dataset),
  config and policy, pickled. Re-fitting on resume would be equally
  deterministic but strictly slower; pickling guarantees bit-identical
  probabilities either way.

Writes are atomic (temp file + rename, state last) so a crash *during*
checkpointing leaves the previous consistent checkpoint in place.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.deployment import FleetMonitor, MonitoringWindow

from repro.telemetry.dataset import TelemetryDataset

CHECKPOINT_VERSION = 1
_STATE_FILE = "state.json"
_MODEL_FILE = "model.pkl"


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def has_checkpoint(directory: str | Path) -> bool:
    path = Path(directory)
    return (path / _STATE_FILE).exists() and (path / _MODEL_FILE).exists()


def save_checkpoint(
    monitor: "FleetMonitor",
    windows: list["MonitoringWindow"],
    directory: str | Path,
) -> Path:
    """Persist a started monitor and its scored windows."""
    monitor._check_started()
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    payload = {
        "config": monitor.config,
        "policy": monitor.policy,
        "model": monitor.model,
    }
    _atomic_write(path / _MODEL_FILE, pickle.dumps(payload))

    state = {
        "version": CHECKPOINT_VERSION,
        "alarmed": sorted(monitor._alarmed),
        "last_trained_day": monitor._last_trained_day,
        "failures_at_training": monitor._failures_at_training,
        "alarm_threshold": monitor.alarm_threshold,
        "windows": [
            {
                "start_day": window.start_day,
                "end_day": window.end_day,
                "n_drives_scored": window.n_drives_scored,
                "retrained": window.retrained,
                "alarms": [
                    {
                        "serial": alarm.serial,
                        "day": alarm.day,
                        "probability": alarm.probability,
                    }
                    for alarm in window.alarms
                ],
            }
            for window in windows
        ],
    }
    # State written last: a crash between the two writes leaves a stale
    # but mutually consistent (model, state) pair on disk only if the
    # state file still matches the old model — so write both atomically
    # and state after model, and treat state.json as the commit record.
    _atomic_write(path / _STATE_FILE, json.dumps(state).encode())
    return path


def load_checkpoint(
    directory: str | Path, dataset: TelemetryDataset
) -> tuple["FleetMonitor", list["MonitoringWindow"]]:
    """Restore a monitor (bound to ``dataset``) and its window history."""
    from repro.core.deployment import Alarm, FleetMonitor, MonitoringWindow

    path = Path(directory)
    if not has_checkpoint(path):
        raise FileNotFoundError(f"{path} does not contain a monitor checkpoint")

    state = json.loads((path / _STATE_FILE).read_text())
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(f"unsupported checkpoint version {version!r}")
    with open(path / _MODEL_FILE, "rb") as handle:
        payload = pickle.load(handle)

    monitor = FleetMonitor(
        config=payload["config"],
        policy=payload["policy"],
        alarm_threshold=state["alarm_threshold"],
    )
    monitor.dataset = dataset
    monitor.model = payload["model"]
    monitor._alarmed = set(state["alarmed"])
    monitor._last_trained_day = state["last_trained_day"]
    monitor._failures_at_training = state["failures_at_training"]

    windows = [
        MonitoringWindow(
            start_day=entry["start_day"],
            end_day=entry["end_day"],
            alarms=[
                Alarm(
                    serial=alarm["serial"],
                    day=alarm["day"],
                    probability=alarm["probability"],
                )
                for alarm in entry["alarms"]
            ],
            n_drives_scored=entry["n_drives_scored"],
            retrained=entry["retrained"],
        )
        for entry in state["windows"]
    ]
    return monitor, windows
