"""Degraded-mode scoring: predict with feature dimensions missing.

Consumer collectors routinely fail to deliver a whole dimension —
WindowsEvent counters need an event-log subscription, BSOD minidumps
may be disabled, firmware strings can be unreadable. The paper's
Table 5 ablation shows the model still carries most of its skill on
reduced groups (SF, S), so rather than refusing to score, we:

* impute missing per-reading values (last-known, else zero) inside
  :class:`~repro.core.client.ClientPredictor` (``on_missing="impute"``),
* optionally route readings missing an entire dimension to a pre-fitted
  reduced-dimension model (:class:`DegradedScorer`), and
* let :class:`~repro.core.deployment.FleetMonitor` fall back to the
  largest feature group a dataset actually supports
  (:func:`adapt_for_missing_dimensions`).

Every degraded prediction is flagged so operators can track how much of
the fleet is being scored at reduced fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.client import ClientPredictor
from repro.core.features import FEATURE_GROUPS, feature_group
from repro.core.pipeline import MFPA, MFPAConfig
from repro.telemetry.dataset import B_COLUMNS, TelemetryDataset, W_COLUMNS
from repro.telemetry.smart import SMART_COLUMNS

#: Raw dataset columns per feature dimension.
DIMENSION_COLUMNS: dict[str, tuple[str, ...]] = {
    "S": SMART_COLUMNS,
    "firmware": ("firmware",),
    "W": W_COLUMNS,
    "B": B_COLUMNS,
}


def missing_dimensions(dataset: TelemetryDataset) -> tuple[str, ...]:
    """Feature dimensions with at least one raw column absent."""
    return tuple(
        dim
        for dim, columns in DIMENSION_COLUMNS.items()
        if any(column not in dataset.columns for column in columns)
    )


def reduced_group_name(name: str, missing: tuple[str, ...]) -> str:
    """The Table-V group left after removing the missing dimensions.

    Raises ``ValueError`` when nothing usable remains (e.g. group "W"
    with the W dimension missing).
    """
    group = feature_group(name)
    flags = (
        group.smart and "S" not in missing,
        group.firmware and "firmware" not in missing,
        group.windows_events and "W" not in missing,
        group.bsod and "B" not in missing,
    )
    for candidate in FEATURE_GROUPS.values():
        if (
            candidate.smart,
            candidate.firmware,
            candidate.windows_events,
            candidate.bsod,
        ) == flags:
            return candidate.name
    raise ValueError(
        f"feature group {name!r} has no usable reduction without {missing}"
    )


def adapt_for_missing_dimensions(
    dataset: TelemetryDataset, config: MFPAConfig
) -> tuple[TelemetryDataset, MFPAConfig, tuple[str, ...]]:
    """Make a dimension-incomplete dataset trainable.

    Zero-fills the absent raw columns (preprocessing indexes them
    unconditionally) and shrinks the configured feature group to the
    dimensions actually delivered — the paper's Table-5 reduced groups.
    Returns ``(dataset, config, missing_dimensions)`` unchanged when
    nothing is missing.
    """
    missing = missing_dimensions(dataset)
    if not missing:
        return dataset, config, ()
    n = dataset.n_records
    columns = dict(dataset.columns)
    for dim in missing:
        for column in DIMENSION_COLUMNS[dim]:
            if column in columns:
                continue
            if column == "firmware":
                columns[column] = np.array(["unknown"] * n, dtype=object)
            else:
                columns[column] = np.zeros(n)
    config = replace(
        config,
        feature_group_name=reduced_group_name(config.feature_group_name, missing),
        feature_columns=None,
    )
    filled = TelemetryDataset(columns, dataset.drives, dataset.tickets)
    return filled, config, missing


def fit_reduced_model(
    dataset: TelemetryDataset,
    train_end_day: int,
    base_config: MFPAConfig | None = None,
    feature_group_name: str = "SF",
) -> MFPA:
    """Pre-fit the reduced-dimension fallback model (default SF)."""
    config = replace(
        base_config or MFPAConfig(),
        feature_group_name=feature_group_name,
        feature_columns=None,
    )
    model = MFPA(config)
    model.fit(dataset, train_end_day=train_end_day)
    return model


@dataclass(frozen=True)
class DegradedPrediction:
    """One scored reading, annotated with its fidelity."""

    probability: float
    degraded: bool
    missing: tuple[str, ...]
    used_reduced_model: bool


class DegradedScorer:
    """Client-side scorer that survives missing feature dimensions.

    Wraps a full-dimension :class:`ClientPredictor` (imputing mode) and,
    optionally, a reduced-dimension one. A reading missing an entire
    W/B/firmware dimension routes to the reduced model when available —
    mirroring the paper's feature-group ablation — while partially
    missing readings are imputed in place. Every prediction carries a
    ``degraded`` flag.
    """

    def __init__(self, full: ClientPredictor, reduced: ClientPredictor | None = None):
        self._full = full
        self._reduced = reduced

    @classmethod
    def from_models(cls, full: MFPA, reduced: MFPA | None = None) -> "DegradedScorer":
        return cls(
            full=ClientPredictor.from_model(full, on_missing="impute"),
            reduced=(
                ClientPredictor.from_model(reduced, on_missing="impute")
                if reduced is not None
                else None
            ),
        )

    @property
    def threshold(self) -> float:
        return self._full.threshold

    def _missing_dimensions(self, reading: dict) -> tuple[str, ...]:
        missing = []
        for dim, columns in DIMENSION_COLUMNS.items():
            if not any(column in reading for column in columns):
                missing.append(dim)
        return tuple(missing)

    def observe(self, serial: int, day: int, reading: dict) -> DegradedPrediction:
        missing = self._missing_dimensions(reading)
        routable = set(missing) & {"W", "B", "firmware"}
        if routable and "S" not in missing and self._reduced is not None:
            probability = self._reduced.observe(serial, day, reading)
            return DegradedPrediction(
                probability=probability,
                degraded=True,
                missing=missing,
                used_reduced_model=True,
            )
        probability = self._full.observe(serial, day, reading)
        return DegradedPrediction(
            probability=probability,
            degraded=bool(missing) or self._full.last_prediction_degraded,
            missing=missing,
            used_reduced_model=False,
        )

    def alarm(self, serial: int, day: int, reading: dict) -> tuple[bool, DegradedPrediction]:
        prediction = self.observe(serial, day, reading)
        return prediction.probability >= self.threshold, prediction
