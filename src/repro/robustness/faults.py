"""Seeded, composable chaos injectors for telemetry.

Every injector models one collector failure mode observed in consumer
fleets (cf. the §III.B discontinuity discussion): lost upload days,
double-uploaded batches, sensors frozen or emitting garbage, firmware
counter resets, entire feature dimensions absent, and out-of-order
delivery. Injectors apply to a whole :class:`TelemetryDataset` (for
batch-pipeline chaos tests) or to a stream of per-day client readings
(for :class:`~repro.core.client.ClientPredictor` chaos tests).

All randomness flows through the ``numpy`` generator passed to
``apply`` / ``apply_stream``, so a fixed seed reproduces the corruption
exactly — the chaos benchmark depends on that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.obs import inc_counter, trace_span
from repro.telemetry.dataset import B_COLUMNS, TelemetryDataset, W_COLUMNS
from repro.telemetry.smart import SMART_COLUMNS
from repro.telemetry.validation import _MONOTONE_COLUMNS

#: A client reading stream: ``(serial, day, reading)`` tuples.
Reading = tuple[int, int, dict]

#: Columns removable per feature dimension (see MissingDimension).
DIMENSION_COLUMNS: dict[str, tuple[str, ...]] = {
    "W": W_COLUMNS,
    "B": B_COLUMNS,
    "firmware": ("firmware",),
}


class FaultInjector:
    """Base class: one deterministic corruption of telemetry."""

    name: ClassVar[str] = "fault"

    def apply(self, dataset: TelemetryDataset, rng: np.random.Generator) -> TelemetryDataset:
        """Return a corrupted copy of ``dataset`` (input untouched)."""
        raise NotImplementedError

    def apply_stream(self, readings: list[Reading], rng: np.random.Generator) -> list[Reading]:
        """Corrupt a chronological stream of client readings."""
        raise NotImplementedError(f"{self.name} has no stream form")


def _drive_slices(serial: np.ndarray) -> list[slice]:
    """Contiguous per-drive row slices (serial blocks stay contiguous
    under every injector here, even when day order is broken)."""
    boundaries = np.flatnonzero(serial[1:] != serial[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [serial.size]])
    return [slice(int(s), int(e)) for s, e in zip(starts, ends)]


@dataclass(frozen=True)
class DropDays(FaultInjector):
    """Collector missed uploads: drop a random fraction of rows."""

    fraction: float = 0.1
    name: ClassVar[str] = "drop_days"

    def apply(self, dataset, rng):
        keep = rng.random(dataset.n_records) >= self.fraction
        if not np.any(keep):  # pathological fraction; keep one row
            keep[0] = True
        return dataset.select_rows(keep)

    def apply_stream(self, readings, rng):
        return [r for r in readings if rng.random() >= self.fraction]


@dataclass(frozen=True)
class DuplicateRows(FaultInjector):
    """Batch re-uploaded: duplicate rows next to their originals."""

    fraction: float = 0.05
    name: ClassVar[str] = "duplicate_rows"

    def apply(self, dataset, rng):
        n = dataset.n_records
        chosen = np.flatnonzero(rng.random(n) < self.fraction)
        indices = np.sort(np.concatenate([np.arange(n), chosen]))
        columns = {name: values[indices] for name, values in dataset.columns.items()}
        return TelemetryDataset(columns, dict(dataset.drives), list(dataset.tickets))

    def apply_stream(self, readings, rng):
        out: list[Reading] = []
        for reading in readings:
            out.append(reading)
            if rng.random() < self.fraction:
                out.append(reading)
        return out


@dataclass(frozen=True)
class StuckSensor(FaultInjector):
    """A SMART attribute freezes mid-history, occasionally reading NaN."""

    column: str | None = None
    drive_fraction: float = 0.2
    nan_fraction: float = 0.1
    name: ClassVar[str] = "stuck_sensor"

    def apply(self, dataset, rng):
        column = self.column or str(rng.choice(SMART_COLUMNS))
        columns = dict(dataset.columns)
        values = columns[column].copy()
        for rows in _drive_slices(columns["serial"]):
            length = rows.stop - rows.start
            if length < 2 or rng.random() >= self.drive_fraction:
                continue
            start = rows.start + int(rng.integers(1, length))
            values[start : rows.stop] = values[start]
            nan_mask = rng.random(rows.stop - start) < self.nan_fraction
            values[start : rows.stop][nan_mask] = np.nan
        columns[column] = values
        return TelemetryDataset(columns, dict(dataset.drives), list(dataset.tickets))

    def apply_stream(self, readings, rng):
        column = self.column or str(rng.choice(SMART_COLUMNS))
        if not readings:
            return readings
        start = int(rng.integers(1, max(2, len(readings))))
        frozen = None
        out: list[Reading] = []
        for i, (serial, day, reading) in enumerate(readings):
            reading = dict(reading)
            if i >= start and column in reading:
                if frozen is None:
                    frozen = reading[column]
                reading[column] = (
                    float("nan") if rng.random() < self.nan_fraction else frozen
                )
            out.append((serial, day, reading))
        return out


@dataclass(frozen=True)
class CounterReset(FaultInjector):
    """A cumulative SMART counter restarts from ~0 (firmware reset)."""

    column: str | None = None
    drive_fraction: float = 0.2
    name: ClassVar[str] = "counter_reset"

    def apply(self, dataset, rng):
        column = self.column or str(rng.choice(_MONOTONE_COLUMNS))
        columns = dict(dataset.columns)
        values = columns[column].copy()
        for rows in _drive_slices(columns["serial"]):
            length = rows.stop - rows.start
            if length < 2 or rng.random() >= self.drive_fraction:
                continue
            start = rows.start + int(rng.integers(1, length))
            values[start : rows.stop] = np.maximum(
                values[start : rows.stop] - values[start], 0.0
            )
        columns[column] = values
        return TelemetryDataset(columns, dict(dataset.drives), list(dataset.tickets))

    def apply_stream(self, readings, rng):
        column = self.column or str(rng.choice(_MONOTONE_COLUMNS))
        # Group reading indices per drive so the reset point is chosen
        # inside each affected drive's own history, as in `apply`.
        per_drive: dict[int, list[int]] = {}
        for i, (serial, _day, _reading) in enumerate(readings):
            per_drive.setdefault(serial, []).append(i)
        out = [(serial, day, dict(reading)) for serial, day, reading in readings]
        for indices in per_drive.values():
            if len(indices) < 2 or rng.random() >= self.drive_fraction:
                continue
            start = int(rng.integers(1, len(indices)))
            base = out[indices[start]][2].get(column)
            if base is None:
                continue
            for i in indices[start:]:
                reading = out[i][2]
                if column in reading:
                    reading[column] = max(float(reading[column]) - float(base), 0.0)
        return out


@dataclass(frozen=True)
class MissingDimension(FaultInjector):
    """An entire feature dimension is absent from the collector."""

    dimension: str = "W"
    name: ClassVar[str] = "missing_dimension"

    def __post_init__(self):
        if self.dimension not in DIMENSION_COLUMNS:
            raise ValueError(
                f"unknown dimension {self.dimension!r}; "
                f"known: {sorted(DIMENSION_COLUMNS)}"
            )

    def apply(self, dataset, rng):
        columns = {
            name: values
            for name, values in dataset.columns.items()
            if name not in DIMENSION_COLUMNS[self.dimension]
        }
        return TelemetryDataset(columns, dict(dataset.drives), list(dataset.tickets))

    def apply_stream(self, readings, rng):
        removed = set(DIMENSION_COLUMNS[self.dimension])
        return [
            (serial, day, {k: v for k, v in reading.items() if k not in removed})
            for serial, day, reading in readings
        ]


@dataclass(frozen=True)
class OutOfOrder(FaultInjector):
    """Adjacent same-drive rows delivered swapped (day order broken)."""

    fraction: float = 0.05
    name: ClassVar[str] = "out_of_order"

    def apply(self, dataset, rng):
        serial = dataset.columns["serial"]
        n = serial.size
        order = np.arange(n)
        candidates = np.flatnonzero(
            (serial[:-1] == serial[1:]) & (rng.random(n - 1) < self.fraction)
        )
        last_swapped = -2
        for i in candidates:
            if i <= last_swapped + 1:  # don't chain overlapping swaps
                continue
            order[i], order[i + 1] = order[i + 1], order[i]
            last_swapped = int(i)
        columns = {name: values[order] for name, values in dataset.columns.items()}
        return TelemetryDataset(columns, dict(dataset.drives), list(dataset.tickets))

    def apply_stream(self, readings, rng):
        out = list(readings)
        i = 0
        while i < len(out) - 1:
            if out[i][0] == out[i + 1][0] and rng.random() < self.fraction:
                out[i], out[i + 1] = out[i + 1], out[i]
                i += 2
            else:
                i += 1
        return out


#: CLI / benchmark registry: name -> injector factory.
FAULT_REGISTRY: dict[str, type[FaultInjector]] = {
    cls.name: cls
    for cls in (
        DropDays,
        DuplicateRows,
        StuckSensor,
        CounterReset,
        MissingDimension,
        OutOfOrder,
    )
}


def make_fault(name: str, **params) -> FaultInjector:
    """Instantiate a registered injector by name."""
    try:
        factory = FAULT_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown fault {name!r}; known: {sorted(FAULT_REGISTRY)}"
        ) from None
    return factory(**params)


def inject(
    dataset: TelemetryDataset,
    injectors: list[FaultInjector],
    seed: int = 0,
) -> TelemetryDataset:
    """Apply injectors in order with one seeded generator.

    Every application increments ``faults_injected_total{fault=<name>}``
    so chaos runs are auditable from their manifests: which corruptions
    ran, how many times, against which dataset fingerprint.
    """
    rng = np.random.default_rng(seed)
    with trace_span("faults.inject"):
        for injector in injectors:
            dataset = injector.apply(dataset, rng)
            inc_counter("faults_injected_total", fault=injector.name)
    return dataset


def inject_stream(
    readings: list[Reading],
    injectors: list[FaultInjector],
    seed: int = 0,
) -> list[Reading]:
    """Stream counterpart of :func:`inject` (same audit counters)."""
    rng = np.random.default_rng(seed)
    with trace_span("faults.inject_stream"):
        for injector in injectors:
            readings = injector.apply_stream(readings, rng)
            inc_counter("faults_injected_total", fault=injector.name)
    return readings
