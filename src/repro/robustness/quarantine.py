"""Quarantine ingestion: repair or drop invalid telemetry, never fail.

:func:`repro.telemetry.validation.validate_dataset` *reports* invariant
violations; :func:`sanitize_dataset` enforces the same invariants by
repairing what it can and quarantining (dropping) what it cannot, with
a per-rule :class:`QuarantineReport` so operators can see exactly what
the collectors mangled. The contract is:

    ``validate_dataset(sanitize_dataset(anything)[0]) == []``

and the sanitized dataset feeds straight into ``MFPA.fit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.dataset import (
    B_COLUMNS,
    DriveMeta,
    TelemetryDataset,
    W_COLUMNS,
)
from repro.telemetry.smart import SMART_COLUMNS
from repro.telemetry.tickets import TroubleTicket
from repro.telemetry.validation import _MONOTONE_COLUMNS

_EVENT_COLUMNS = (*W_COLUMNS, *B_COLUMNS)
_OBJECT_COLUMNS = ("firmware", "vendor", "model")


@dataclass(frozen=True)
class QuarantinePolicy:
    """How each violation class is handled.

    Every knob chooses ``"repair"`` (fix in place) or ``"drop"``
    (quarantine the offending rows/tickets); structural problems —
    unsorted rows, duplicates, unknown serials, post-failure records —
    have only one sane resolution and are not configurable.
    """

    nonfinite: str = "drop"
    """NaN/inf telemetry values: ``"drop"`` the row or ``"repair"``
    by zero-filling the bad entries."""
    counter_resets: str = "repair"
    """Decreasing cumulative SMART counters: ``"repair"`` clamps to the
    per-drive running maximum; ``"drop"`` quarantines rows that fall
    below it."""
    negative_events: str = "repair"
    """Negative daily W/B event counts: ``"repair"`` clamps to zero;
    ``"drop"`` quarantines the rows."""
    tickets: str = "repair"
    """Tickets whose IMT precedes the failure day: ``"repair"`` clamps
    the IMT to the failure day; ``"drop"`` discards the ticket."""
    add_missing_columns: bool = True
    """Zero-fill telemetry columns an entire collector dimension failed
    to deliver (SMART, W, B, firmware)."""

    def __post_init__(self) -> None:
        for name in ("nonfinite", "counter_resets", "negative_events", "tickets"):
            if getattr(self, name) not in ("repair", "drop"):
                raise ValueError(f"{name} must be 'repair' or 'drop'")


@dataclass
class RuleOutcome:
    """What one sanitation rule did."""

    rule: str
    n_dropped: int = 0
    n_repaired: int = 0
    serials: set[int] = field(default_factory=set)

    @property
    def triggered(self) -> bool:
        return bool(self.n_dropped or self.n_repaired)


@dataclass
class QuarantineReport:
    """Structured account of a :func:`sanitize_dataset` pass."""

    rules: dict[str, RuleOutcome] = field(default_factory=dict)
    n_input_rows: int = 0
    n_output_rows: int = 0
    n_drives_dropped: int = 0
    n_tickets_dropped: int = 0
    n_tickets_repaired: int = 0

    def outcome(self, rule: str) -> RuleOutcome:
        return self.rules.setdefault(rule, RuleOutcome(rule))

    @property
    def n_rows_dropped(self) -> int:
        return sum(o.n_dropped for o in self.rules.values())

    @property
    def n_rows_repaired(self) -> int:
        return sum(o.n_repaired for o in self.rules.values())

    @property
    def clean(self) -> bool:
        return not any(o.triggered for o in self.rules.values())

    def affected_serials(self) -> tuple[int, ...]:
        serials: set[int] = set()
        for outcome in self.rules.values():
            serials |= outcome.serials
        return tuple(sorted(serials))

    def summary(self) -> str:
        lines = [
            f"rows {self.n_input_rows} -> {self.n_output_rows} "
            f"(dropped {self.n_rows_dropped}, repaired {self.n_rows_repaired}); "
            f"drives dropped {self.n_drives_dropped}; tickets dropped "
            f"{self.n_tickets_dropped}, repaired {self.n_tickets_repaired}"
        ]
        for outcome in self.rules.values():
            if not outcome.triggered:
                continue
            lines.append(
                f"  {outcome.rule}: dropped {outcome.n_dropped}, "
                f"repaired {outcome.n_repaired} "
                f"({len(outcome.serials)} drives affected)"
            )
        return "\n".join(lines)


def _keep(columns: dict[str, np.ndarray], keep: np.ndarray) -> dict[str, np.ndarray]:
    return {name: values[keep] for name, values in columns.items()}


def _serials_of(columns: dict[str, np.ndarray], mask: np.ndarray) -> set[int]:
    return set(np.unique(columns["serial"][mask]).tolist())


def sanitize_dataset(
    dataset: TelemetryDataset,
    policy: QuarantinePolicy | None = None,
) -> tuple[TelemetryDataset, QuarantineReport]:
    """Repair/drop invalid telemetry; return the clean dataset + report.

    The input dataset is never mutated. The output satisfies every
    :func:`~repro.telemetry.validation.validate_dataset` invariant.
    """
    policy = policy or QuarantinePolicy()
    report = QuarantineReport(n_input_rows=dataset.n_records)
    columns = dict(dataset.columns)
    drives = dict(dataset.drives)
    n = dataset.n_records

    if "serial" not in columns or "day" not in columns:
        raise ValueError("dataset lacks 'serial'/'day' columns; nothing to sanitize")

    # ---- 1. whole dimensions missing: zero-fill -----------------------
    if policy.add_missing_columns:
        outcome = report.outcome("missing_column")
        for column in (*SMART_COLUMNS, *_EVENT_COLUMNS):
            if column not in columns:
                columns[column] = np.zeros(n)
                outcome.n_repaired += 1
        for column in _OBJECT_COLUMNS:
            if column not in columns:
                lookup = {
                    serial: getattr(meta, column if column != "model" else "model_id")
                    for serial, meta in drives.items()
                }
                columns[column] = np.array(
                    [lookup.get(int(s), "unknown") for s in columns["serial"]],
                    dtype=object,
                )
                outcome.n_repaired += 1

    # ---- 2. sort by (serial, day) -------------------------------------
    order = np.lexsort((columns["day"], columns["serial"]))
    if not np.array_equal(order, np.arange(n)):
        moved = int(np.count_nonzero(order != np.arange(n)))
        outcome = report.outcome("unsorted")
        outcome.n_repaired += moved
        outcome.serials |= _serials_of(columns, order != np.arange(n))
        columns = {name: values[order] for name, values in columns.items()}

    # ---- 3. non-finite telemetry --------------------------------------
    bad = np.zeros(columns["serial"].size, dtype=bool)
    for name, values in columns.items():
        if values.dtype != object:
            bad |= ~np.isfinite(values)
    if np.any(bad):
        outcome = report.outcome("nonfinite")
        outcome.serials |= _serials_of(columns, bad)
        if policy.nonfinite == "drop":
            outcome.n_dropped += int(bad.sum())
            columns = _keep(columns, ~bad)
        else:
            outcome.n_repaired += int(bad.sum())
            for name, values in columns.items():
                if values.dtype != object:
                    entries = ~np.isfinite(values)
                    if np.any(entries):
                        values = values.copy()
                        values[entries] = 0.0
                        columns[name] = values

    # ---- 4. duplicate (serial, day) rows: keep the first --------------
    serial, day = columns["serial"], columns["day"]
    dup = np.concatenate([[False], (serial[1:] == serial[:-1]) & (day[1:] == day[:-1])])
    if np.any(dup):
        outcome = report.outcome("duplicate_rows")
        outcome.n_dropped += int(dup.sum())
        outcome.serials |= _serials_of(columns, dup)
        columns = _keep(columns, ~dup)

    # ---- 5. rows whose serial has no drive metadata -------------------
    known = np.isin(columns["serial"], np.fromiter(drives, dtype=np.int64, count=len(drives)))
    if not np.all(known):
        outcome = report.outcome("unknown_serial")
        outcome.n_dropped += int((~known).sum())
        outcome.serials |= _serials_of(columns, ~known)
        columns = _keep(columns, known)

    # ---- 6. records logged after the drive's failure day --------------
    failure_day = np.array(
        [
            drives[int(s)].failure_day
            if drives[int(s)].failure_day is not None
            else np.iinfo(np.int64).max
            for s in columns["serial"]
        ],
        dtype=np.int64,
    )
    late = columns["day"] > failure_day
    if np.any(late):
        outcome = report.outcome("post_failure_rows")
        outcome.n_dropped += int(late.sum())
        outcome.serials |= _serials_of(columns, late)
        columns = _keep(columns, ~late)

    # ---- 7. negative daily event counts -------------------------------
    negative = np.zeros(columns["serial"].size, dtype=bool)
    for column in _EVENT_COLUMNS:
        if column in columns:
            negative |= columns[column] < 0
    if np.any(negative):
        outcome = report.outcome("negative_events")
        outcome.serials |= _serials_of(columns, negative)
        if policy.negative_events == "drop":
            outcome.n_dropped += int(negative.sum())
            columns = _keep(columns, ~negative)
        else:
            outcome.n_repaired += int(negative.sum())
            for column in _EVENT_COLUMNS:
                if column in columns:
                    columns[column] = np.maximum(columns[column], 0.0)

    # ---- 8. counter resets in monotone SMART counters -----------------
    columns = _repair_counter_resets(columns, policy, report)

    # ---- 9. drives left without rows ----------------------------------
    surviving = set(np.unique(columns["serial"]).tolist())
    orphans = set(drives) - surviving
    if orphans:
        outcome = report.outcome("orphan_metadata")
        outcome.n_repaired += len(orphans)
        outcome.serials |= orphans
        report.n_drives_dropped = len(orphans)
        drives = {s: m for s, m in drives.items() if s in surviving}

    # ---- 10. tickets ---------------------------------------------------
    tickets = _sanitize_tickets(dataset.tickets, drives, policy, report)

    report.n_output_rows = int(columns["serial"].size)
    return TelemetryDataset(columns, drives, tickets), report


def _repair_counter_resets(
    columns: dict[str, np.ndarray],
    policy: QuarantinePolicy,
    report: QuarantineReport,
) -> dict[str, np.ndarray]:
    """Clamp (or drop) rows violating per-drive counter monotonicity."""
    serial = columns["serial"]
    boundaries = np.flatnonzero(serial[1:] != serial[:-1]) + 1
    starts = np.concatenate([[0], boundaries]).astype(int)
    ends = np.concatenate([boundaries, [serial.size]]).astype(int)

    if policy.counter_resets == "repair":
        for column in _MONOTONE_COLUMNS:
            values = columns.get(column)
            if values is None:
                continue
            clamped = values.copy()
            for start, end in zip(starts, ends):
                np.maximum.accumulate(clamped[start:end], out=clamped[start:end])
            changed = clamped != values
            if np.any(changed):
                outcome = report.outcome("counter_reset")
                outcome.n_repaired += int(changed.sum())
                outcome.serials |= _serials_of(columns, changed)
                columns[column] = clamped
        return columns

    # drop mode: quarantine every row falling below its drive's running max
    keep = np.ones(serial.size, dtype=bool)
    for column in _MONOTONE_COLUMNS:
        values = columns.get(column)
        if values is None:
            continue
        for start, end in zip(starts, ends):
            running = -np.inf
            for i in range(start, end):
                if not keep[i]:
                    continue
                if values[i] < running - 1e-9:
                    keep[i] = False
                else:
                    running = max(running, values[i])
    if not np.all(keep):
        outcome = report.outcome("counter_reset")
        outcome.n_dropped += int((~keep).sum())
        outcome.serials |= _serials_of(columns, ~keep)
        columns = _keep(columns, keep)
    return columns


def _sanitize_tickets(
    tickets: list[TroubleTicket],
    drives: dict[int, DriveMeta],
    policy: QuarantinePolicy,
    report: QuarantineReport,
) -> list[TroubleTicket]:
    clean: list[TroubleTicket] = []
    outcome = report.outcome("invalid_ticket")
    for ticket in tickets:
        meta = drives.get(ticket.serial)
        if meta is None or not meta.failed:
            outcome.n_dropped += 1
            outcome.serials.add(ticket.serial)
            report.n_tickets_dropped += 1
            continue
        if ticket.initial_maintenance_time < meta.failure_day:
            outcome.serials.add(ticket.serial)
            if policy.tickets == "drop":
                outcome.n_dropped += 1
                report.n_tickets_dropped += 1
                continue
            ticket = TroubleTicket(
                serial=ticket.serial,
                initial_maintenance_time=meta.failure_day,
                failure_level=ticket.failure_level,
                category=ticket.category,
                cause=ticket.cause,
            )
            outcome.n_repaired += 1
            report.n_tickets_repaired += 1
        clean.append(ticket)
    return clean
