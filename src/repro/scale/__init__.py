"""Out-of-core sharded execution: million-drive fleets on a fixed RAM budget.

The paper's population is hundreds of thousands of drives and hyperscale
monitoring operates at millions — far past what the in-RAM pipeline can
hold. This package keeps the fleet on disk as drive-serial-partitioned
npz shards and streams every stage over them:

* :mod:`repro.scale.store` — the shard store (manifest, sha256s,
  fingerprints, append-only string vocab);
* :mod:`repro.scale.stats` — shard-at-a-time quantile edge fitting and
  quarantine/preprocess report merging;
* :mod:`repro.scale.trainer` — :func:`fit_sharded`, bit-identical to
  ``MFPA.fit`` on the concatenated fleet;
* :mod:`repro.scale.monitor` — :class:`ShardedFleetMonitor`,
  bit-identical to the in-RAM monitor's ``OperationSummary``;
* :mod:`repro.scale.memory` — peak-RSS gauge and the
  :class:`MemoryCeiling` enforcement the 1M-drive bench runs under.

See ``docs/scaling.md`` for the shard layout and the memory-ceiling
contract.
"""

from repro.scale.memory import (
    MemoryCeiling,
    MemoryCeilingExceeded,
    peak_rss_mb,
    update_peak_rss_gauge,
)
from repro.scale.monitor import GradingView, ShardedFleetMonitor
from repro.scale.stats import (
    StreamingQuantiles,
    fit_bin_edges,
    merge_preprocess_reports,
    merge_quarantine_reports,
)
from repro.scale.store import (
    MANIFEST_NAME,
    ShardInfo,
    ShardManifestError,
    ShardWriter,
    ShardedDataset,
    is_shard_store,
    write_dataset_sharded,
)
from repro.scale.trainer import evaluate_sharded, fit_sharded, prepare_shard

__all__ = [
    "GradingView",
    "MANIFEST_NAME",
    "MemoryCeiling",
    "MemoryCeilingExceeded",
    "ShardInfo",
    "ShardManifestError",
    "ShardWriter",
    "ShardedDataset",
    "ShardedFleetMonitor",
    "StreamingQuantiles",
    "evaluate_sharded",
    "fit_bin_edges",
    "fit_sharded",
    "is_shard_store",
    "merge_preprocess_reports",
    "merge_quarantine_reports",
    "peak_rss_mb",
    "prepare_shard",
    "update_peak_rss_gauge",
    "write_dataset_sharded",
]
