"""Process-memory accounting for out-of-core runs.

The scale subsystem's contract is "the fleet never fits in RAM, the
working set always does". This module is how that contract is observed
and enforced:

* :func:`peak_rss_mb` reads the process high-water RSS from
  ``getrusage`` — the same number ``make bench-scale`` records in
  ``benchmarks/results/scale_1m.json``;
* :func:`update_peak_rss_gauge` publishes it as the ``scale_peak_rss_mb``
  gauge so any obs-enabled run (including the serve daemon) exports its
  memory high-water alongside its throughput counters;
* :class:`MemoryCeiling` turns a configured ``memory_ceiling_mb`` into
  checkpoints sprinkled through the shard loops: crossing the ceiling
  raises :class:`MemoryCeilingExceeded` naming the phase that blew the
  budget, instead of letting the OOM killer produce an unattributable
  corpse hours into a million-drive run.

``ru_maxrss`` is a lifetime high-water mark, so a ceiling can only be
checked against allocations made *after* process start — which is
exactly the bench contract: the ceiling bounds the whole monitored run.
"""

from __future__ import annotations

import resource
import sys

from repro.obs import inc_counter, set_gauge

__all__ = [
    "MemoryCeiling",
    "MemoryCeilingExceeded",
    "peak_rss_mb",
    "update_peak_rss_gauge",
]

#: ``ru_maxrss`` unit: kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_DIVISOR = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0


def peak_rss_mb() -> float:
    """Process-lifetime peak resident set size, in mebibytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / _RU_MAXRSS_DIVISOR


def update_peak_rss_gauge() -> float:
    """Publish the current peak RSS as ``scale_peak_rss_mb``; returns it."""
    peak = peak_rss_mb()
    set_gauge("scale_peak_rss_mb", peak)
    return peak


class MemoryCeilingExceeded(RuntimeError):
    """The process peak RSS crossed the configured out-of-core ceiling."""

    def __init__(self, phase: str, peak_mb: float, ceiling_mb: float):
        self.phase = phase
        self.peak_mb = peak_mb
        self.ceiling_mb = ceiling_mb
        super().__init__(
            f"peak RSS {peak_mb:.0f} MiB exceeded the {ceiling_mb:.0f} MiB "
            f"memory ceiling during {phase}"
        )


class MemoryCeiling:
    """Checkpointed memory budget for sharded pipelines.

    Parameters
    ----------
    limit_mb:
        Budget in mebibytes; ``None`` disables every check (the guard
        becomes free), so call sites never need their own conditionals.

    Every :meth:`check` refreshes the ``scale_peak_rss_mb`` gauge; a
    violation increments ``scale_memory_ceiling_exceeded_total`` before
    raising, so a crashed run's metrics snapshot still shows the breach.
    """

    def __init__(self, limit_mb: float | None):
        if limit_mb is not None and limit_mb <= 0:
            raise ValueError("memory ceiling must be positive (or None)")
        self.limit_mb = limit_mb

    def check(self, phase: str) -> float:
        """Assert the budget holds; returns the current peak RSS in MiB."""
        peak = update_peak_rss_gauge()
        if self.limit_mb is not None and peak > self.limit_mb:
            inc_counter("scale_memory_ceiling_exceeded_total")
            raise MemoryCeilingExceeded(phase, peak, self.limit_mb)
        return peak
