"""Partitioned fleet monitoring over a sharded store.

:class:`ShardedFleetMonitor` replays the same windowed scoring loop as
:class:`~repro.core.deployment.FleetMonitor` without ever holding the
fleet in RAM, and produces a **bit-identical**
:class:`~repro.core.deployment.OperationSummary` on the same fleet.
Three structural facts make that possible:

* the retrain schedule depends only on window boundaries, the policy
  and the failure-time table (:func:`~repro.core.deployment.
  plan_retrains`), so every boundary's model can be stream-trained up
  front with :func:`~repro.scale.trainer.fit_sharded` — itself
  bit-identical to the in-RAM refit;
* drives are scored independently and alarm deduplication is per
  drive, so a (shard, window) pass with
  :func:`~repro.core.deployment.score_prepared_window` over the
  shard's prepared rows raises exactly the alarms the in-RAM pass
  raises for those serials — the loop inverts to shard-outer /
  window-inner, loading each shard once;
* shards partition drives in ascending serial order, so concatenating
  per-shard alarm lists in shard order reproduces the in-RAM window's
  alarm order, and per-window drive counts add.

Grading needs drive metadata, not telemetry: a :class:`GradingView`
carries only the failed drives' metas plus the alarmed drives' metas
(a sliver of the fleet) and duck-types as the dataset for the real
:func:`~repro.core.deployment.summarize_windows`.

Scoring can fan shards out over :class:`~repro.parallel.
ParallelExecutor` workers (``n_jobs``); serial partitions are disjoint
so per-worker alarm sets never interact, and results merge in shard
order — deterministic at every ``n_jobs``.
"""

from __future__ import annotations

import copy
import json
import pickle
import time
from pathlib import Path

from repro.core.deployment import (
    MonitoringWindow,
    OperationSummary,
    RetrainPolicy,
    plan_retrains,
    score_prepared_window,
    summarize_windows,
)
from repro.core.pipeline import MFPA, MFPAConfig
from repro.obs import inc_counter, observe_histogram, trace_span
from repro.parallel import ParallelExecutor, SharedPayload, share
from repro.scale.memory import MemoryCeiling
from repro.scale.store import ShardedDataset
from repro.scale.trainer import fit_sharded, prepare_shard
from repro.robustness.checkpoint import (
    atomic_write,
    has_checkpoint_files,
    verify_manifest,
    write_manifest,
)
from repro.telemetry.dataset import DriveMeta

__all__ = ["GradingView", "SHARD_MONITOR_FILES", "ShardedFleetMonitor"]

#: The file pair a ShardedFleetMonitor checkpoint consists of:
#: ``monitor.pkl`` (window models + retrain plan, written once per run)
#: and ``progress.pkl`` (scored shards so far, rewritten per boundary).
SHARD_MONITOR_FILES = ("monitor.pkl", "progress.pkl")


class GradingView:
    """Duck-typed stand-in for a dataset in ``summarize_windows``.

    Holds only the drive metas grading actually touches: every failed
    drive (true-alarm and missed-failure accounting) and every alarmed
    drive (false-alarm vs unknown-serial attribution). At fleet scale
    this is thousands of metas instead of millions.
    """

    def __init__(self, drives: dict[int, DriveMeta]):
        self.drives = drives


def _score_shard(
    shard_index: int,
    store: ShardedDataset,
    models: list[MFPA],
    boundaries: list[tuple[int, int]],
    alarm_threshold: float,
    sanitize: bool,
) -> tuple[list[tuple[list, int]], dict[int, DriveMeta]]:
    """Score every window of one shard; the unit of parallel fan-out.

    Returns per-window ``(alarms, n_drives_scored)`` plus the shard's
    grading metas. ``models[w]`` is the (pre-trained) model in force
    for window ``w``; the per-shard alarmed set carries first-alarm
    deduplication across windows exactly like the in-RAM monitor's
    fleet-wide set restricted to this shard's serials.
    """
    raw = store.load_shard(shard_index)
    grading = {
        serial: meta
        for serial, meta in raw.drives.items()
        if meta.failed
    }
    config = models[0].config
    prepared, _, _, _ = prepare_shard(
        raw, config, models[0].firmware_encoder_, sanitize=sanitize
    )
    alarmed: set[int] = set()
    results: list[tuple[list, int]] = []
    for (start_day, end_day), model in zip(boundaries, models):
        started = time.perf_counter()
        with trace_span("scale.score_shard_window"):
            view = copy.copy(model)
            view.dataset_ = prepared
            alarms, n_scored = score_prepared_window(
                view, alarmed, alarm_threshold, start_day, end_day
            )
        observe_histogram(
            "scale_shard_score_seconds", time.perf_counter() - started
        )
        inc_counter("scale_shards_scored_total")
        results.append((alarms, n_scored))
    for serial in alarmed:
        if serial not in grading:
            grading[serial] = raw.drives[serial]
    return results, grading


def _score_shard_task(
    context: SharedPayload, shard_index: int
) -> tuple[list[tuple[list, int]], dict[int, DriveMeta]]:
    """Worker entry: unpack the fork-shared context and score a shard."""
    store, models, boundaries, threshold, sanitize = context.get()
    return _score_shard(
        shard_index, store, models, boundaries, threshold, sanitize
    )


class ShardedFleetMonitor:
    """Windowed monitoring over a shard store on a fixed memory budget.

    Parameters mirror :class:`~repro.core.deployment.FleetMonitor`
    (config, retrain policy, alarm threshold, ``n_jobs``) plus the
    store and an optional ``sanitize`` gate matching ``--sanitize``
    loading. The memory ceiling comes from
    ``config.memory_ceiling_mb`` and is checked after every model
    trained and every shard scored.
    """

    def __init__(
        self,
        store: ShardedDataset,
        config: MFPAConfig | None = None,
        policy: RetrainPolicy | None = None,
        alarm_threshold: float | None = None,
        sanitize: bool = False,
        n_jobs: int = 1,
    ):
        self.store = store
        self.config = config or MFPAConfig()
        self.policy = policy or RetrainPolicy()
        self.alarm_threshold = (
            self.config.decision_threshold
            if alarm_threshold is None
            else alarm_threshold
        )
        if not 0 < self.alarm_threshold < 1:
            raise ValueError("alarm_threshold must be in (0, 1)")
        self.sanitize = sanitize
        self.n_jobs = n_jobs
        self.ceiling = MemoryCeiling(self.config.memory_ceiling_mb)
        self.model: MFPA | None = None

    def start(self, train_end_day: int) -> None:
        """Stream-train the initial model on history before the day."""
        with trace_span("scale.monitor.start"):
            self.model = fit_sharded(
                self.store,
                self.config,
                train_end_day=train_end_day,
                sanitize=self.sanitize,
                ceiling=self.ceiling,
            )
        self._train_end_day = train_end_day

    def use_model(self, model: MFPA, train_end_day: int) -> None:
        """Adopt an already-fitted pipeline (``repro model load``) as the
        initial model — :meth:`run` then reaches its first scored window
        without a single ``fit()``. The monitor takes the model's own
        config so any later scheduled retrain reproduces its training
        recipe."""
        model._check_fitted()
        self.model = model
        self.config = model.config
        self.ceiling = MemoryCeiling(self.config.memory_ceiling_mb)
        self._train_end_day = train_end_day

    def _window_models(
        self, boundaries: list[tuple[int, int]]
    ) -> tuple[list[MFPA], list[bool]]:
        """One model reference per window, retrains stream-trained.

        The whole schedule is known up front (see
        :func:`~repro.core.deployment.plan_retrains`), which is what
        lets scoring run shard-outer / window-inner with every model
        trained exactly once.
        """
        plan = plan_retrains(
            [start for start, _ in boundaries],
            self.policy,
            self.model.failure_times_,
            self._train_end_day,
        )
        models: list[MFPA] = []
        current = self.model
        for (start_day, _), retrain in zip(boundaries, plan):
            if retrain:
                with trace_span("monitor.retrain"):
                    current = fit_sharded(
                        self.store,
                        self.config,
                        train_end_day=start_day,
                        sanitize=self.sanitize,
                        ceiling=self.ceiling,
                    )
                inc_counter("monitor_retrains_total")
            models.append(current)
        return models, plan

    # -- checkpointing at shard boundaries ----------------------------
    def _run_params(
        self, start_day: int, end_day: int, window_days: int
    ) -> dict:
        """The identity a checkpoint is only valid for."""
        return {
            "fingerprint": self.store.fleet_fingerprint,
            "n_shards": self.store.n_shards,
            "start_day": start_day,
            "end_day": end_day,
            "window_days": window_days,
            "alarm_threshold": self.alarm_threshold,
            "sanitize": self.sanitize,
        }

    def _save_models(
        self, directory: Path, params: dict, models: list[MFPA], plan: list[bool]
    ) -> None:
        """Persist the window models as versioned artifacts.

        Each *unique* boundary model (windows between retrains share one
        instance) is saved once via :func:`repro.ml.artifact.save_model`
        into ``models/boundary_<k>/``; ``monitor.pkl`` records only the
        per-window directory names. Compared to pickling the models
        in-line this drops the prepared dataset from the checkpoint and
        makes every boundary model independently loadable/inspectable
        with ``repro model inspect``.
        """
        from repro.ml.artifact import save_model

        directory.mkdir(parents=True, exist_ok=True)
        model_dirs: list[str] = []
        saved: dict[int, str] = {}
        for index, model in enumerate(models):
            name = saved.get(id(model))
            if name is None:
                name = f"models/boundary_{index:03d}"
                save_model(model, directory / name)
                saved[id(model)] = name
            model_dirs.append(name)
        atomic_write(
            directory / "monitor.pkl",
            pickle.dumps(
                {"params": params, "model_dirs": model_dirs, "plan": plan}
            ),
        )

    def _save_progress(
        self,
        directory: Path,
        per_shard: list,
        grading: dict[int, DriveMeta],
    ) -> None:
        """Commit scored-shard progress: rewrite ``progress.pkl``, then
        the manifest (the commit record, covering both files)."""
        atomic_write(
            directory / "progress.pkl",
            pickle.dumps({"per_shard": per_shard, "grading": grading}),
        )
        write_manifest(directory, SHARD_MONITOR_FILES)

    def _load_resume(self, directory: Path, params: dict) -> tuple | None:
        """Restore (models, plan, per_shard, grading) or None if there
        is no usable checkpoint. A checkpoint for a different store or
        run shape is an error, not a silent restart."""
        if not has_checkpoint_files(directory, SHARD_MONITOR_FILES):
            return None
        verify_manifest(directory, SHARD_MONITOR_FILES)
        with open(directory / "monitor.pkl", "rb") as handle:
            meta = pickle.load(handle)
        if meta["params"] != params:
            raise ValueError(
                "sharded-monitor checkpoint does not match this run: "
                f"checkpointed {json.dumps(meta['params'], sort_keys=True, default=str)} "
                f"vs requested {json.dumps(params, sort_keys=True, default=str)}"
            )
        with open(directory / "progress.pkl", "rb") as handle:
            progress = pickle.load(handle)
        if "model_dirs" in meta:
            from repro.ml.artifact import load_model

            loaded: dict[str, MFPA] = {}
            models = []
            for name in meta["model_dirs"]:
                if name not in loaded:
                    loaded[name] = load_model(directory / name)
                models.append(loaded[name])
        else:  # pre-artifact checkpoint with in-line pickled models
            models = meta["models"]
        return (
            models, meta["plan"],
            progress["per_shard"], progress["grading"],
        )

    def run(
        self,
        start_day: int,
        end_day: int,
        window_days: int = 30,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        max_shards: int | None = None,
    ) -> OperationSummary:
        """Replay the monitored horizon; grade against ground truth.

        Equivalent to ``simulate_operation(...)`` on the concatenated
        fleet: same windows, same alarms (bit for bit), same summary
        counts and lead times.

        With ``checkpoint_dir`` set, progress is committed at **shard
        boundaries** (after every shard serially, after every
        ``n_jobs``-sized shard group in parallel) with the same
        atomic-write + sha256-manifest discipline as the in-RAM
        monitor's checkpoints; ``resume=True`` continues from an
        existing checkpoint — already-scored shards are not rescored —
        and produces the same summary an uninterrupted run would.
        ``max_shards`` stops the replay early (a controlled "crash")
        after that many total shards, returning a partial summary.
        """
        boundaries = [
            (day, min(day + window_days, end_day))
            for day in range(start_day, end_day, window_days)
        ]
        directory = Path(checkpoint_dir) if checkpoint_dir is not None else None
        params = self._run_params(start_day, end_day, window_days)
        restored = None
        if directory is not None and resume:
            restored = self._load_resume(directory, params)

        with trace_span("scale.monitor.run"):
            per_shard: list[list[tuple[list, int]]] = []
            grading: dict[int, DriveMeta] = {}
            if restored is not None:
                models, plan, per_shard, grading = restored
                self.model = models[0]
            else:
                if self.model is None:
                    self.start(start_day)
                models, plan = self._window_models(boundaries)
                if directory is not None:
                    self._save_models(directory, params, models, plan)
                    self._save_progress(directory, per_shard, grading)
            self.ceiling.check("scale.monitor.models")

            stop_at = self.store.n_shards
            if max_shards is not None:
                stop_at = min(stop_at, max_shards)
            executor = ParallelExecutor(self.n_jobs)
            if executor.is_parallel and self.store.n_shards > 1:
                # Checkpointing bounds the group a crash can lose;
                # without it one starmap covers every remaining shard.
                group = (
                    max(executor.n_jobs, 1)
                    if directory is not None
                    else stop_at
                )
                context = (
                    self.store, models, boundaries,
                    self.alarm_threshold, self.sanitize,
                )
                with share(context) as shared:
                    while len(per_shard) < stop_at:
                        batch = range(
                            len(per_shard),
                            min(len(per_shard) + group, stop_at),
                        )
                        outcomes = executor.starmap(
                            _score_shard_task,
                            [(shared, i) for i in batch],
                        )
                        for results, metas in outcomes:
                            per_shard.append(results)
                            grading.update(metas)
                        if directory is not None:
                            self._save_progress(directory, per_shard, grading)
                self.ceiling.check("scale.monitor.score")
            else:
                while len(per_shard) < stop_at:
                    results, metas = _score_shard(
                        len(per_shard), self.store, models, boundaries,
                        self.alarm_threshold, self.sanitize,
                    )
                    per_shard.append(results)
                    grading.update(metas)
                    if directory is not None:
                        self._save_progress(directory, per_shard, grading)
                    self.ceiling.check("scale.monitor.score")

            windows: list[MonitoringWindow] = []
            for w, (window_start, window_end) in enumerate(boundaries):
                alarms = [
                    alarm
                    for results in per_shard
                    for alarm in results[w][0]
                ]
                n_scored = sum(results[w][1] for results in per_shard)
                windows.append(
                    MonitoringWindow(
                        start_day=window_start,
                        end_day=window_end,
                        alarms=alarms,
                        n_drives_scored=n_scored,
                        retrained=plan[w],
                    )
                )
                inc_counter("monitor_windows_scored_total")
                inc_counter("monitor_drives_scored_total", n_scored)
                inc_counter("monitor_alarms_raised_total", len(alarms))

            summary = summarize_windows(
                windows, GradingView(grading), start_day, end_day
            )
        self.ceiling.check("scale.monitor.summary")
        return summary
