"""Streaming (shard-at-a-time) statistics for out-of-core pipelines.

Two jobs that the in-RAM pipeline does on the full matrix must be done
shard-by-shard at fleet scale:

* **Quantile bin edges** for the histogram tree backend. A
  :class:`StreamingQuantiles` sketch sees each shard's rows once and
  yields per-feature edges compatible with
  :func:`repro.ml.binning.build_binned_from_edges`. The sketch is
  *deterministically* subsampled — a stride doubling scheme keyed to
  the global row index, no RNG — so the fitted edges depend only on
  the row stream, never on how it was cut into shards.
* **Quarantine / preprocess accounting**. Per-shard
  :class:`~repro.core.preprocess.PreprocessReport` and
  :class:`~repro.robustness.quarantine.QuarantineReport` objects merge
  into fleet totals (:func:`merge_preprocess_reports`,
  :func:`merge_quarantine_reports`) so a sharded run reports the same
  shape of evidence as an in-RAM one.

Edge-fit semantics match :func:`repro.ml.binning.build_binned` exactly
while a feature's distinct values fit in the bin budget (the lossless
midpoint case — true for most MFPA counters); high-cardinality features
fall back to quantiles of the deterministic subsample, which is where
out-of-core fitting is approximate by construction.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.preprocess import PreprocessReport
from repro.ml.binning import DEFAULT_BINS, MAX_BINS
from repro.robustness.quarantine import QuarantineReport, RuleOutcome

__all__ = [
    "StreamingQuantiles",
    "fit_bin_edges",
    "merge_preprocess_reports",
    "merge_quarantine_reports",
]

#: Default deterministic-subsample target per feature. Compaction keeps
#: the live sample in [target, 2*target); 8192 points bound the quantile
#: error of a 64-bin fit far below one bin width.
_DEFAULT_SAMPLE_TARGET = 8192


class _ColumnSketch:
    """One feature's streaming state: distinct set + strided subsample."""

    __slots__ = ("max_distinct", "target", "distinct", "overflowed",
                 "stride", "indices", "values", "n_seen")

    def __init__(self, max_distinct: int, target: int):
        self.max_distinct = max_distinct
        self.target = target
        self.distinct: set[float] | None = set()
        self.overflowed = False
        self.stride = 1
        self.indices = np.empty(0, dtype=np.int64)
        self.values = np.empty(0, dtype=float)
        self.n_seen = 0

    def update(self, column: np.ndarray) -> None:
        column = np.asarray(column, dtype=float)
        finite = column[np.isfinite(column)]
        if not self.overflowed and finite.size:
            self.distinct.update(np.unique(finite).tolist())
            if len(self.distinct) > self.max_distinct:
                # Too many distinct values for lossless midpoints; from
                # here on only the subsample matters.
                self.distinct = None
                self.overflowed = True
        global_indices = np.arange(
            self.n_seen, self.n_seen + finite.size, dtype=np.int64
        )
        self.n_seen += finite.size
        keep = (global_indices % self.stride) == 0
        if keep.any():
            self.indices = np.concatenate([self.indices, global_indices[keep]])
            self.values = np.concatenate([self.values, finite[keep]])
        while self.values.size >= 2 * self.target:
            self.stride *= 2
            keep = (self.indices % self.stride) == 0
            self.indices = self.indices[keep]
            self.values = self.values[keep]

    def edges(self, max_bins: int) -> np.ndarray:
        if not self.overflowed:
            distinct = np.sort(np.asarray(sorted(self.distinct), dtype=float))
            if distinct.size == 0:
                return np.empty(0)
            return (distinct[:-1] + distinct[1:]) / 2.0
        quantiles = np.quantile(
            self.values, np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
        )
        return np.unique(quantiles)


class StreamingQuantiles:
    """Shard-at-a-time quantile edge fitting for a fixed feature list.

    Feed shards (2-D matrices whose columns follow ``feature_names``)
    through :meth:`update`, then :meth:`edges` returns one ascending
    edge array per feature, ready for
    :func:`~repro.ml.binning.build_binned_from_edges`.
    """

    def __init__(
        self,
        feature_names: list[str] | tuple[str, ...],
        max_bins: int = DEFAULT_BINS,
        sample_target: int = _DEFAULT_SAMPLE_TARGET,
    ):
        if not 2 <= max_bins <= MAX_BINS:
            raise ValueError(f"max_bins must be in [2, {MAX_BINS}]")
        if sample_target < max_bins:
            raise ValueError("sample_target must be at least max_bins")
        self.feature_names = tuple(feature_names)
        self.max_bins = max_bins
        self._sketches = [
            _ColumnSketch(max_distinct=max_bins, target=sample_target)
            for _ in self.feature_names
        ]
        self.n_rows = 0

    def update(self, X: np.ndarray) -> None:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"expected (n, {len(self.feature_names)}) matrix, "
                f"got {X.shape}"
            )
        self.n_rows += X.shape[0]
        for j, sketch in enumerate(self._sketches):
            sketch.update(X[:, j])

    def edges(self) -> list[np.ndarray]:
        return [sketch.edges(self.max_bins) for sketch in self._sketches]

    def is_lossless(self) -> list[bool]:
        """Per feature: True when edges are exact midpoints (no sampling)."""
        return [not sketch.overflowed for sketch in self._sketches]


def fit_bin_edges(
    shard_matrices,
    feature_names: list[str] | tuple[str, ...],
    max_bins: int = DEFAULT_BINS,
    sample_target: int = _DEFAULT_SAMPLE_TARGET,
) -> list[np.ndarray]:
    """Fit per-feature bin edges over an iterable of shard matrices."""
    sketch = StreamingQuantiles(feature_names, max_bins, sample_target)
    for X in shard_matrices:
        sketch.update(X)
    return sketch.edges()


def merge_preprocess_reports(
    reports: list[PreprocessReport],
) -> PreprocessReport:
    """Fleet-total repair accounting from per-shard reports."""
    if not reports:
        raise ValueError("nothing to merge")
    merged = reports[0]
    for report in reports[1:]:
        merged = replace(
            merged,
            n_input_rows=merged.n_input_rows + report.n_input_rows,
            n_output_rows=merged.n_output_rows + report.n_output_rows,
            n_rows_dropped=merged.n_rows_dropped + report.n_rows_dropped,
            n_rows_filled=merged.n_rows_filled + report.n_rows_filled,
            n_drives_dropped=merged.n_drives_dropped + report.n_drives_dropped,
        )
    return merged


def merge_quarantine_reports(
    reports: list[QuarantineReport],
) -> QuarantineReport:
    """Fleet-total quarantine accounting from per-shard reports.

    Serial partitions are disjoint, so rule serial sets union cleanly
    and counts add.
    """
    if not reports:
        raise ValueError("nothing to merge")
    merged = QuarantineReport()
    for report in reports:
        merged.n_input_rows += report.n_input_rows
        merged.n_output_rows += report.n_output_rows
        merged.n_drives_dropped += report.n_drives_dropped
        merged.n_tickets_dropped += report.n_tickets_dropped
        merged.n_tickets_repaired += report.n_tickets_repaired
        for rule, outcome in report.rules.items():
            target = merged.rules.setdefault(rule, RuleOutcome(rule))
            target.n_dropped += outcome.n_dropped
            target.n_repaired += outcome.n_repaired
            target.serials |= outcome.serials
    return merged
