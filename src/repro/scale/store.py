"""Sharded on-disk fleet store: npz shards + a sha256 manifest.

A :class:`ShardedDataset` holds the fleet as contiguous drive-serial
partitions, one ``shard_NNNN.npz`` per partition, under a single
``manifest.json`` that mirrors the run-manifest conventions of
:mod:`repro.obs.manifest`: per-shard row/drive counts, file sha256s and
content fingerprints, plus a fleet fingerprint derived from the shard
fingerprints. Nothing in the layout requires the fleet to fit in RAM —
writes stream shard-by-shard through :class:`ShardWriter`, reads stream
through :meth:`ShardedDataset.iter_shards`.

Layout::

    <root>/
      manifest.json        # counts, vocab, sha256s, fingerprints
      shard_0000.npz       # columnar telemetry + drive metas + tickets
      shard_0001.npz
      ...

String columns (``firmware``/``vendor``/``model``, ticket text fields,
archetypes) are stored as integer codes against an append-only global
vocabulary kept in the manifest — a million-drive shard then never
serializes a million Python strings, and codes from different shards
always agree. Decoding on load restores the exact object arrays
:class:`~repro.telemetry.dataset.TelemetryDataset` uses in RAM.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

import numpy as np

from repro.obs import inc_counter, observe_histogram, trace_span
from repro.obs.manifest import dataset_fingerprint
from repro.robustness.checkpoint import atomic_write
from repro.telemetry.dataset import DriveMeta, TelemetryDataset
from repro.telemetry.tickets import TroubleTicket

__all__ = [
    "MANIFEST_NAME",
    "ShardInfo",
    "ShardManifestError",
    "ShardWriter",
    "ShardedDataset",
    "is_shard_store",
    "write_dataset_sharded",
]

MANIFEST_NAME = "manifest.json"
_FORMAT_VERSION = 1

#: Columns serialized as vocabulary codes rather than object arrays.
_CODED_COLUMNS = ("firmware", "vendor", "model")

#: Sentinel for "drive never failed" in the int64 failure_day array.
_NO_FAILURE = -1


class ShardManifestError(RuntimeError):
    """The shard store is missing, corrupt, or fails verification."""


class ShardInfo:
    """One shard's manifest record."""

    __slots__ = (
        "index", "filename", "n_drives", "n_rows",
        "first_serial", "last_serial", "n_bytes", "sha256", "fingerprint",
    )

    def __init__(self, index: int, filename: str, n_drives: int, n_rows: int,
                 first_serial: int, last_serial: int, n_bytes: int,
                 sha256: str, fingerprint: str):
        self.index = index
        self.filename = filename
        self.n_drives = n_drives
        self.n_rows = n_rows
        self.first_serial = first_serial
        self.last_serial = last_serial
        self.n_bytes = n_bytes
        self.sha256 = sha256
        self.fingerprint = fingerprint

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, record: dict) -> "ShardInfo":
        return cls(**{name: record[name] for name in cls.__slots__})


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class _Vocab:
    """Append-only string vocabularies shared by every shard."""

    def __init__(self, initial: dict[str, list[str]] | None = None):
        self._tables: dict[str, dict[str, int]] = {}
        if initial:
            for name, words in initial.items():
                self._tables[name] = {word: i for i, word in enumerate(words)}

    def encode(self, name: str, values) -> np.ndarray:
        table = self._tables.setdefault(name, {})
        codes = np.empty(len(values), dtype=np.int32)
        for i, value in enumerate(values):
            code = table.get(value)
            if code is None:
                code = len(table)
                table[value] = code
            codes[i] = code
        return codes

    def words(self, name: str) -> list[str]:
        table = self._tables.get(name, {})
        ordered = [""] * len(table)
        for word, code in table.items():
            ordered[code] = word
        return ordered

    def decode(self, name: str, codes: np.ndarray) -> np.ndarray:
        lookup = np.asarray(self.words(name), dtype=object)
        return lookup[codes]

    def to_dict(self) -> dict[str, list[str]]:
        return {name: self.words(name) for name in sorted(self._tables)}


def _pack_shard(dataset: TelemetryDataset, vocab: _Vocab) -> dict[str, np.ndarray]:
    """Flatten one shard's dataset into npz-ready arrays."""
    arrays: dict[str, np.ndarray] = {}
    for name, values in dataset.columns.items():
        if name in _CODED_COLUMNS:
            arrays[f"col_code_{name}"] = vocab.encode(name, values)
        else:
            arrays[f"col_{name}"] = values
    serials = sorted(dataset.drives)
    metas = [dataset.drives[s] for s in serials]
    arrays["meta_serial"] = np.asarray(serials, dtype=np.int64)
    arrays["meta_vendor"] = vocab.encode("vendor", [m.vendor for m in metas])
    arrays["meta_model_id"] = vocab.encode("model", [m.model_id for m in metas])
    arrays["meta_capacity_gb"] = np.asarray(
        [m.capacity_gb for m in metas], dtype=np.int64
    )
    arrays["meta_firmware"] = vocab.encode("firmware", [m.firmware for m in metas])
    arrays["meta_archetype"] = vocab.encode(
        "archetype", [m.archetype for m in metas]
    )
    arrays["meta_failure_day"] = np.asarray(
        [_NO_FAILURE if m.failure_day is None else m.failure_day for m in metas],
        dtype=np.int64,
    )
    tickets = sorted(dataset.tickets, key=lambda t: t.serial)
    arrays["ticket_serial"] = np.asarray(
        [t.serial for t in tickets], dtype=np.int64
    )
    arrays["ticket_imt"] = np.asarray(
        [t.initial_maintenance_time for t in tickets], dtype=np.int64
    )
    arrays["ticket_failure_level"] = vocab.encode(
        "ticket_failure_level", [t.failure_level for t in tickets]
    )
    arrays["ticket_category"] = vocab.encode(
        "ticket_category", [t.category for t in tickets]
    )
    arrays["ticket_cause"] = vocab.encode(
        "ticket_cause", [t.cause for t in tickets]
    )
    return arrays


def _unpack_shard(
    arrays: dict[str, np.ndarray], vocab: _Vocab
) -> TelemetryDataset:
    """Rebuild a shard's :class:`TelemetryDataset` from npz arrays."""
    columns: dict[str, np.ndarray] = {}
    for name, values in arrays.items():
        if name.startswith("col_code_"):
            columns[name[len("col_code_"):]] = vocab.decode(
                name[len("col_code_"):], values
            )
        elif name.startswith("col_"):
            columns[name[len("col_"):]] = values
    vendors = vocab.decode("vendor", arrays["meta_vendor"])
    model_ids = vocab.decode("model", arrays["meta_model_id"])
    firmwares = vocab.decode("firmware", arrays["meta_firmware"])
    archetypes = vocab.decode("archetype", arrays["meta_archetype"])
    drives: dict[int, DriveMeta] = {}
    for i, serial in enumerate(arrays["meta_serial"]):
        failure_day = int(arrays["meta_failure_day"][i])
        drives[int(serial)] = DriveMeta(
            serial=int(serial),
            vendor=str(vendors[i]),
            model_id=str(model_ids[i]),
            capacity_gb=int(arrays["meta_capacity_gb"][i]),
            firmware=str(firmwares[i]),
            archetype=str(archetypes[i]),
            failure_day=None if failure_day == _NO_FAILURE else failure_day,
        )
    levels = vocab.decode("ticket_failure_level", arrays["ticket_failure_level"])
    categories = vocab.decode("ticket_category", arrays["ticket_category"])
    causes = vocab.decode("ticket_cause", arrays["ticket_cause"])
    tickets = [
        TroubleTicket(
            serial=int(arrays["ticket_serial"][i]),
            initial_maintenance_time=int(arrays["ticket_imt"][i]),
            failure_level=str(levels[i]),
            category=str(categories[i]),
            cause=str(causes[i]),
        )
        for i in range(arrays["ticket_serial"].size)
    ]
    return TelemetryDataset(columns, drives, tickets)


class ShardWriter:
    """Streams shards to disk; one :meth:`add_shard` call per partition.

    Shards must arrive in ascending serial order (the generator and the
    in-RAM splitter both do) so that serial → shard lookups can binary-
    search the manifest. :meth:`close` commits the manifest atomically —
    a crash mid-write leaves no manifest, and the store reads as absent
    rather than as a silently truncated fleet.
    """

    def __init__(self, root: str | Path, compress: bool = False):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.compress = compress
        self._vocab = _Vocab()
        self._shards: list[ShardInfo] = []
        self._closed = False

    def add_shard(self, dataset: TelemetryDataset) -> ShardInfo:
        if self._closed:
            raise RuntimeError("writer already closed")
        serials = sorted(dataset.drives)
        if self._shards and serials[0] <= self._shards[-1].last_serial:
            raise ValueError(
                "shards must arrive in ascending, non-overlapping serial order"
            )
        index = len(self._shards)
        filename = f"shard_{index:04d}.npz"
        path = self.root / filename
        arrays = _pack_shard(dataset, self._vocab)
        with trace_span("scale.write_shard"):
            started = time.perf_counter()
            save = np.savez_compressed if self.compress else np.savez
            with open(path, "wb") as handle:
                save(handle, **arrays)
            observe_histogram(
                "scale_shard_write_seconds", time.perf_counter() - started
            )
        info = ShardInfo(
            index=index,
            filename=filename,
            n_drives=dataset.n_drives,
            n_rows=dataset.n_records,
            first_serial=int(serials[0]),
            last_serial=int(serials[-1]),
            n_bytes=path.stat().st_size,
            sha256=_sha256_file(path),
            fingerprint=dataset_fingerprint(dataset),
        )
        self._shards.append(info)
        inc_counter("scale_shards_written_total")
        return info

    def close(self, extra: dict | None = None) -> "ShardedDataset":
        """Commit the manifest and reopen the store read-only."""
        if self._closed:
            raise RuntimeError("writer already closed")
        if not self._shards:
            raise ValueError("cannot commit a store with zero shards")
        self._closed = True
        fleet = hashlib.sha256(
            "".join(info.fingerprint for info in self._shards).encode()
        ).hexdigest()[:16]
        manifest = {
            "format_version": _FORMAT_VERSION,
            "created_at": time.time(),
            "n_shards": len(self._shards),
            "n_drives": sum(info.n_drives for info in self._shards),
            "n_rows": sum(info.n_rows for info in self._shards),
            "n_bytes": sum(info.n_bytes for info in self._shards),
            "fleet_fingerprint": fleet,
            "vocab": self._vocab.to_dict(),
            "shards": [info.to_dict() for info in self._shards],
        }
        if extra:
            manifest.update(extra)
        atomic_write(
            self.root / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True).encode(),
        )
        return ShardedDataset(self.root)


def is_shard_store(path: str | Path) -> bool:
    """True when ``path`` is a committed sharded-dataset directory."""
    return (Path(path) / MANIFEST_NAME).is_file()


class ShardedDataset:
    """Read side of the shard store: manifest + on-demand shard loads."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        manifest_path = self.root / MANIFEST_NAME
        if not manifest_path.is_file():
            raise ShardManifestError(f"no shard manifest at {manifest_path}")
        try:
            self.manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise ShardManifestError(
                f"corrupt shard manifest at {manifest_path}: {error}"
            ) from error
        version = self.manifest.get("format_version")
        if version != _FORMAT_VERSION:
            raise ShardManifestError(
                f"unsupported shard format version {version!r}"
            )
        self.shards = [
            ShardInfo.from_dict(record) for record in self.manifest["shards"]
        ]
        self._vocab = _Vocab(self.manifest["vocab"])

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_drives(self) -> int:
        return int(self.manifest["n_drives"])

    @property
    def n_rows(self) -> int:
        return int(self.manifest["n_rows"])

    @property
    def n_bytes(self) -> int:
        return int(self.manifest["n_bytes"])

    @property
    def fleet_fingerprint(self) -> str:
        return str(self.manifest["fleet_fingerprint"])

    def load_shard(self, index: int, verify: bool = False) -> TelemetryDataset:
        """Load one shard back into an in-RAM :class:`TelemetryDataset`.

        ``verify=True`` re-hashes the file against the manifest sha256
        before deserializing (reads the shard twice).
        """
        info = self.shards[index]
        path = self.root / info.filename
        if not path.is_file():
            raise ShardManifestError(f"manifest lists missing shard {path}")
        if verify:
            actual = _sha256_file(path)
            if actual != info.sha256:
                raise ShardManifestError(
                    f"shard {info.filename} sha256 mismatch: "
                    f"manifest {info.sha256[:12]}…, file {actual[:12]}…"
                )
        with trace_span("scale.read_shard"):
            with np.load(path, allow_pickle=False) as archive:
                arrays = {name: archive[name] for name in archive.files}
        dataset = _unpack_shard(arrays, self._vocab)
        inc_counter("scale_shards_read_total")
        return dataset

    def iter_shards(self, verify: bool = False):
        """Yield ``(ShardInfo, TelemetryDataset)`` per shard, in order."""
        for info in self.shards:
            yield info, self.load_shard(info.index, verify=verify)

    def summary(self) -> dict:
        """Manifest digest for ``repro scale inspect``."""
        return {
            "root": str(self.root),
            "n_shards": self.n_shards,
            "n_drives": self.n_drives,
            "n_rows": self.n_rows,
            "n_bytes": self.n_bytes,
            "fleet_fingerprint": self.fleet_fingerprint,
            "shards": [info.to_dict() for info in self.shards],
        }


def write_dataset_sharded(
    dataset: TelemetryDataset,
    root: str | Path,
    n_shards: int,
    compress: bool = False,
    extra: dict | None = None,
) -> ShardedDataset:
    """Split an in-RAM dataset into contiguous serial partitions on disk.

    The parity-test workhorse: the same fleet can be run through the
    in-RAM and sharded paths and compared drive-for-drive.
    """
    serials = np.sort(dataset.serials)
    if not 1 <= n_shards <= serials.size:
        raise ValueError(f"n_shards must be in [1, {serials.size}]")
    writer = ShardWriter(root, compress=compress)
    for group in np.array_split(serials, n_shards):
        mask = np.isin(dataset.columns["serial"], group)
        shard = dataset.select_rows(mask)
        # select_rows keeps only serials that still have rows; carry the
        # partition's zero-row drives (and their tickets) across too so
        # the sharded fleet's drive table matches the in-RAM one.
        for serial in group:
            if int(serial) not in shard.drives:
                shard.drives[int(serial)] = dataset.drives[int(serial)]
        present = set(int(s) for s in group)
        listed = set(t.serial for t in shard.tickets)
        shard.tickets.extend(
            t for t in dataset.tickets
            if t.serial in present and t.serial not in listed
        )
        writer.add_shard(shard)
    return writer.close(extra=extra)
