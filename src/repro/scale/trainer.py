"""Streaming (shard-at-a-time) MFPA training over a sharded store.

:func:`fit_sharded` produces a fitted :class:`~repro.core.pipeline.MFPA`
**bit-identical** to ``MFPA(config).fit(full_dataset, train_end_day)``
without ever materializing the full fleet. The equivalence rests on a
locality argument, checked stage by stage:

* repair, event accumulation, derived features, failure-time
  identification and sample labeling are all *per drive*, and shards
  partition drives — so running them per shard and concatenating in
  shard (= serial) order reproduces the global result exactly;
* the firmware :class:`~repro.ml.encoding.LabelEncoder` sorts its
  classes, so fitting it on the union of per-shard vocabularies equals
  fitting it on the concatenated column;
* undersampling and the chronological reorder are pure functions of the
  concatenated sample arrays plus the seed — identical inputs, so
  identical selected rows;
* feature assembly backtracks history only within a drive, so each
  selected row's feature vector can be assembled on its own shard and
  scattered into the globally-ordered training matrix;
* from there, :meth:`MFPA._fit_estimator` runs unchanged (grid search,
  hist binning via the shared :mod:`repro.ml.binning` cache, the lot).

Peak memory is one shard plus the (undersampled, hence small) training
matrix; a :class:`~repro.scale.memory.MemoryCeiling` checkpoint runs
after every shard pass.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.core.features import FeatureAssembler
from repro.core.labeling import FailureTimeIdentifier, SampleSet, build_samples
from repro.core.pipeline import MFPA, MFPAConfig, EvaluationResult
from repro.core.preprocess import (
    FIRMWARE_CODE_COLUMN,
    PreprocessReport,
    accumulate_events,
    repair_discontinuity,
)
from repro.ml.encoding import LabelEncoder
from repro.ml.metrics import classification_report
from repro.obs import trace_span
from repro.robustness.quarantine import QuarantineReport, sanitize_dataset
from repro.scale.memory import MemoryCeiling
from repro.scale.stats import merge_preprocess_reports, merge_quarantine_reports
from repro.scale.store import ShardedDataset
from repro.telemetry.dataset import TelemetryDataset

__all__ = ["evaluate_sharded", "fit_sharded", "prepare_shard"]


def prepare_shard(
    raw: TelemetryDataset,
    config: MFPAConfig,
    encoder: LabelEncoder,
    sanitize: bool = False,
) -> tuple[
    TelemetryDataset,
    PreprocessReport,
    QuarantineReport | None,
    tuple[str, ...],
]:
    """§III-C(1) preprocessing of one shard with a *global* encoder.

    Mirrors :func:`repro.core.preprocess.preprocess` except the firmware
    encoder is transform-only: it was fitted on the union of every
    shard's firmware vocabulary, so codes agree across shards and match
    the in-RAM fit. The last element is the derived-column name tuple
    (empty unless ``config.derived_features``).
    """
    quarantine = None
    if sanitize:
        raw, quarantine = sanitize_dataset(raw)
    for name, values in raw.columns.items():
        if values.dtype != object and not np.all(np.isfinite(values)):
            raise ValueError(f"column {name!r} contains NaN or infinite values")
    repaired, report = repair_discontinuity(
        raw,
        max_gap=config.max_gap,
        fill_gap=config.fill_gap,
        min_segment_records=config.min_segment_records,
    )
    prepared = accumulate_events(repaired)
    columns = dict(prepared.columns)
    columns[FIRMWARE_CODE_COLUMN] = encoder.transform(
        columns["firmware"]
    ).astype(float)
    prepared = TelemetryDataset(columns, prepared.drives, prepared.tickets)
    derived: tuple[str, ...] = ()
    if config.derived_features:
        from repro.core.derived import add_derived_features

        prepared, derived = add_derived_features(prepared)
    return prepared, report, quarantine, derived


def _fit_global_encoder(
    store: ShardedDataset, config: MFPAConfig, sanitize: bool
) -> LabelEncoder:
    """Union-fit the firmware encoder over every shard's vocabulary.

    Sanitization can drop rows (and with them firmware values), so the
    vocabulary must be collected from the *sanitized* column to match
    what the in-RAM path encodes.
    """
    vocabulary: set = set()
    for _, raw in store.iter_shards():
        if sanitize:
            raw, _ = sanitize_dataset(raw)
        vocabulary.update(raw.columns["firmware"].tolist())
    return LabelEncoder().fit(vocabulary)


def fit_sharded(
    store: ShardedDataset,
    config: MFPAConfig | None = None,
    train_end_day: int | None = None,
    sanitize: bool = False,
    ceiling: MemoryCeiling | None = None,
) -> MFPA:
    """Stream-fit an MFPA over a sharded store (see module docstring).

    Returns a fitted model whose ``dataset_`` attribute is **not** set —
    the full prepared fleet never exists in this process. Callers that
    score must bind a per-shard prepared dataset first (what
    :class:`~repro.scale.monitor.ShardedFleetMonitor` does); the fitted
    estimator, assembler, encoder, failure times and reports are all
    bit-identical to the in-RAM ``MFPA.fit``.
    """
    if train_end_day is None:
        raise ValueError("train_end_day is required")
    config = config or MFPAConfig()
    ceiling = ceiling or MemoryCeiling(config.memory_ceiling_mb)
    model = MFPA(config)

    with trace_span("scale.fit_sharded"):
        encoder = _fit_global_encoder(store, config, sanitize)
        ceiling.check("scale.fit.vocabulary")

        # ---- pass 1: per-shard labeling with global row offsets ------
        failure_times: dict[int, int] = {}
        sample_parts: list[SampleSet] = []
        preprocess_reports: list[PreprocessReport] = []
        quarantine_reports: list[QuarantineReport] = []
        shard_row_offsets: list[int] = []
        derived_columns: tuple[str, ...] = ()
        offset = 0
        identifier = FailureTimeIdentifier(config.theta)
        for info, raw in store.iter_shards():
            with trace_span("scale.fit.label_shard"):
                prepared, report, quarantine, derived = prepare_shard(
                    raw, config, encoder, sanitize=sanitize
                )
                preprocess_reports.append(report)
                if quarantine is not None:
                    quarantine_reports.append(quarantine)
                if derived:
                    derived_columns = derived
                shard_times = identifier.identify(prepared)
                failure_times.update(shard_times)
                samples = build_samples(
                    prepared,
                    shard_times,
                    positive_window=config.positive_window,
                    lookahead=config.lookahead,
                )
                sample_parts.append(
                    SampleSet(
                        row_indices=samples.row_indices + offset,
                        labels=samples.labels,
                        serials=samples.serials,
                        days=samples.days,
                    )
                )
                shard_row_offsets.append(offset)
                offset += prepared.n_records
            ceiling.check("scale.fit.label_shard")

        model.failure_times_ = failure_times
        model.preprocess_report_ = merge_preprocess_reports(preprocess_reports)
        model.firmware_encoder_ = encoder
        if quarantine_reports:
            model.quarantine_report_ = merge_quarantine_reports(
                quarantine_reports
            )
        model.derived_columns_ = derived_columns

        samples = SampleSet(
            row_indices=np.concatenate(
                [p.row_indices for p in sample_parts]
            ),
            labels=np.concatenate([p.labels for p in sample_parts]),
            serials=np.concatenate([p.serials for p in sample_parts]),
            days=np.concatenate([p.days for p in sample_parts]),
        )

        # ---- global steps: horizon filter + seeded undersample -------
        train = model._select_train_samples(samples, train_end_day)
        row_indices, labels, days = model._undersample(train)
        columns = model._training_columns()
        ceiling.check("scale.fit.undersample")

        # ---- pass 2: shard-local assembly, global scatter ------------
        if config.feature_selection:
            subsample = model._selection_subsample(row_indices.size)
            X_sel = _scatter_assemble(
                store, config, encoder, sanitize,
                FeatureAssembler(columns, history_length=1),
                row_indices[subsample], shard_row_offsets, ceiling,
            )
            columns = model._run_forward_selection(
                X_sel, labels[subsample], days[subsample], columns
            )
        model.assembler_ = FeatureAssembler(columns, config.history_length)
        X = _scatter_assemble(
            store, config, encoder, sanitize,
            model.assembler_, row_indices, shard_row_offsets, ceiling,
        )

        # ---- training: unchanged MFPA stage over the assembled matrix
        with trace_span("training"):
            model._fit_estimator(X, labels, days)
        ceiling.check("scale.fit.train")
    model.train_end_day_ = train_end_day
    return model


def _scatter_assemble(
    store: ShardedDataset,
    config: MFPAConfig,
    encoder: LabelEncoder,
    sanitize: bool,
    assembler: FeatureAssembler,
    row_indices: np.ndarray,
    shard_row_offsets: list[int],
    ceiling: MemoryCeiling,
) -> np.ndarray:
    """Assemble features for globally-indexed rows, one shard at a time.

    ``row_indices`` index the virtual concatenation of the prepared
    shards (arbitrary order — undersampled and day-sorted). Each shard
    assembles its own rows locally and the vectors scatter back into
    the global order, so the result equals the in-RAM
    ``assembler.assemble(full_prepared.columns, row_indices)``.
    """
    X: np.ndarray | None = None
    bounds = shard_row_offsets + [np.inf]
    for index, (info, raw) in enumerate(store.iter_shards()):
        with trace_span("scale.fit.assemble_shard"):
            low, high = bounds[index], bounds[index + 1]
            in_shard = np.flatnonzero((row_indices >= low) & (row_indices < high))
            if in_shard.size == 0:
                continue
            prepared, _, _, _ = prepare_shard(
                raw, config, encoder, sanitize=sanitize
            )
            local = assembler.assemble(
                prepared.columns, row_indices[in_shard] - int(low)
            )
            if X is None:
                X = np.empty((row_indices.size, local.shape[1]))
            X[in_shard] = local
        ceiling.check("scale.fit.assemble_shard")
    if X is None:
        raise ValueError("no selected rows fell inside any shard")
    return X


def evaluate_sharded(
    model: MFPA,
    store: ShardedDataset,
    start_day: int,
    end_day: int,
    sanitize: bool = False,
    ceiling: MemoryCeiling | None = None,
) -> EvaluationResult:
    """Streaming counterpart of :meth:`MFPA.evaluate` over a shard store.

    Drive scoring is per drive (pre-failure window for faulty drives,
    period records for healthy ones, max positive probability per
    drive), so collecting scores shard by shard and concatenating in
    shard (= serial) order reproduces the in-RAM evaluation arrays —
    and therefore every report metric — exactly.
    """
    if end_day <= start_day:
        raise ValueError("end_day must exceed start_day")
    ceiling = ceiling or MemoryCeiling(model.config.memory_ceiling_mb)
    drive_truth: list[np.ndarray] = []
    drive_scores: list[np.ndarray] = []
    record_truth: list[np.ndarray] = []
    record_scores: list[np.ndarray] = []
    n_faulty = 0
    n_healthy = 0
    with trace_span("scale.evaluate"):
        for _, raw in store.iter_shards():
            with trace_span("scale.evaluate_shard"):
                prepared, _, _, _ = prepare_shard(
                    raw, model.config, model.firmware_encoder_, sanitize=sanitize
                )
                view = copy.copy(model)
                view.dataset_ = prepared
                try:
                    dt, ds, rt, rs, nf, nh = view._collect_drive_scores(
                        start_day, end_day
                    )
                except ValueError:
                    # No evaluable drives in this shard; the fleet-wide
                    # emptiness check below still applies.
                    continue
                drive_truth.append(dt)
                drive_scores.append(ds)
                record_truth.append(rt)
                record_scores.append(rs)
                n_faulty += nf
                n_healthy += nh
            ceiling.check("scale.evaluate_shard")
    if not drive_truth:
        raise ValueError(f"no drives to evaluate in [{start_day}, {end_day})")
    drive_truth_arr = np.concatenate(drive_truth)
    drive_scores_arr = np.concatenate(drive_scores)
    record_truth_arr = np.concatenate(record_truth)
    record_scores_arr = np.concatenate(record_scores)
    threshold = model.config.decision_threshold
    return EvaluationResult(
        drive_report=classification_report(
            drive_truth_arr,
            (drive_scores_arr >= threshold).astype(int),
            drive_scores_arr,
        ),
        record_report=classification_report(
            record_truth_arr,
            (record_scores_arr >= threshold).astype(int),
            record_scores_arr,
        ),
        n_faulty_drives=n_faulty,
        n_healthy_drives=n_healthy,
        period=(start_day, end_day),
    )
