"""Always-on fleet scoring: the batch monitor as a supervised service.

The package turns :mod:`repro.core.deployment`'s batch loop into a
long-running daemon assembled from the robustness layer's parts:

* :mod:`repro.serve.ingest` — quarantine gate + bounded queue with
  explicit backpressure and load shedding;
* :mod:`repro.serve.state` — per-drive incremental feature state over
  dual (full / reduced) :class:`~repro.core.client.ClientPredictor`\\ s;
* :mod:`repro.serve.retry` — jittered backoff, per-stage timeout
  budgets, and the degraded-mode circuit breaker;
* :mod:`repro.serve.alarms` — exactly-once alarm ledger and sink;
* :mod:`repro.serve.daemon` — the supervised loop, window flushing and
  window-boundary checkpoints with crash-resume;
* :mod:`repro.serve.replay` — recorded-dataset replay (``repro
  replay``) and stream (de)serialization;
* :mod:`repro.serve.chaos` — the chaos-under-serve harness driving the
  six fault injectors at a live daemon;
* :mod:`repro.serve.drift` — training-time :class:`ReferenceProfile`
  sketches and the per-window live PSI :class:`DriftMonitor`.
"""

from repro.serve.alarms import AlarmStream
from repro.serve.chaos import ChaosServeReport, run_chaos_one, run_chaos_under_serve
from repro.serve.daemon import SERVE_FILES, ServeConfig, ServeDaemon
from repro.serve.drift import DriftMonitor, ReferenceProfile
from repro.serve.ingest import BoundedReadingQueue, GatePolicy, ReadingGate
from repro.serve.replay import (
    dataset_to_readings,
    iter_stream,
    replay_into,
    write_stream,
)
from repro.serve.retry import (
    CircuitBreaker,
    RetryExhaustedError,
    RetryPolicy,
    retry_call,
)
from repro.serve.state import DimensionFreshness, IncrementalScorer

__all__ = [
    "AlarmStream",
    "BoundedReadingQueue",
    "ChaosServeReport",
    "CircuitBreaker",
    "DimensionFreshness",
    "DriftMonitor",
    "GatePolicy",
    "ReferenceProfile",
    "IncrementalScorer",
    "ReadingGate",
    "RetryExhaustedError",
    "RetryPolicy",
    "SERVE_FILES",
    "ServeConfig",
    "ServeDaemon",
    "dataset_to_readings",
    "iter_stream",
    "replay_into",
    "retry_call",
    "run_chaos_one",
    "run_chaos_under_serve",
    "write_stream",
]
