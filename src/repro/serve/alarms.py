"""Exactly-once alarm stream: dedup, rate budget, durable sink.

Alarms are once per drive *lifetime* (same contract as
:class:`~repro.core.deployment.FleetMonitor`), with an optional
fleet-wide per-window budget: when one bad window would page the
operator for half the fleet, alarms beyond ``max_per_window`` are
*suppressed* — counted, logged, and the drive left un-alarmed so it
re-alarms in the next window rather than silently never.

Exactly-once across crashes is achieved by ordering, not locking:

1. alarm decisions append to the in-memory **ledger**;
2. the ledger rides inside the window-boundary checkpoint (the commit
   point);
3. only after the checkpoint commits does :meth:`emit_pending` append
   the new lines to the JSONL **sink**.

A crash between (2) and (3) loses sink lines but not ledger entries, a
crash before (2) loses both — either way :meth:`reconcile_sink` on
resume atomically rewrites the sink *from* the restored ledger, so the
sink always converges to exactly one line per alarmed drive.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import get_logger, inc_counter
from repro.robustness.checkpoint import atomic_write

__all__ = ["AlarmStream"]

_LOG = get_logger("repro.serve.alarms")


class AlarmStream:
    def __init__(
        self,
        threshold: float = 0.5,
        sink_path: str | Path | None = None,
        max_per_window: int | None = None,
    ):
        self.threshold = threshold
        self.sink_path = Path(sink_path) if sink_path is not None else None
        self.max_per_window = max_per_window
        self.alarmed: set[int] = set()
        self.ledger: list[dict] = []
        self._pending: list[dict] = []
        self._window_alarms = 0

    def is_alarmed(self, serial: int) -> bool:
        return int(serial) in self.alarmed

    def open_window(self) -> None:
        """Reset the fleet-wide rate budget at a window boundary."""
        self._window_alarms = 0

    def decide(
        self,
        serial: int,
        day: int,
        probability: float,
        window_start: int,
        degraded: bool = False,
    ) -> bool:
        """Record (or reject) one above-threshold candidate. Returns
        whether the alarm was accepted into the ledger."""
        if probability < self.threshold:
            return False
        serial = int(serial)
        if serial in self.alarmed:
            inc_counter("serve_alarms_deduped_total")
            return False
        if (
            self.max_per_window is not None
            and self._window_alarms >= self.max_per_window
        ):
            # budget blown: suppress but do NOT mark alarmed — the drive
            # gets another chance next window instead of never alarming.
            inc_counter("serve_alarms_suppressed_total")
            _LOG.warning(
                "alarm suppressed by rate budget", serial=serial, day=day
            )
            return False
        self._window_alarms += 1
        self.alarmed.add(serial)
        record = {
            "serial": serial,
            "day": int(day),
            "probability": float(probability),
            "window_start": int(window_start),
            "degraded": bool(degraded),
        }
        self.ledger.append(record)
        self._pending.append(record)
        return True

    def emit_pending(self) -> int:
        """Append checkpoint-committed alarms to the sink. Call *after*
        the checkpoint write — see the module docstring's ordering."""
        pending, self._pending = self._pending, []
        if self.sink_path is not None and pending:
            self.sink_path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.sink_path, "a") as handle:
                for record in pending:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        for _ in pending:
            inc_counter("serve_alarms_emitted_total")
        return len(pending)

    def reconcile_sink(self) -> None:
        """Atomically rewrite the sink from the ledger (resume path)."""
        if self.sink_path is None:
            return
        self.sink_path.parent.mkdir(parents=True, exist_ok=True)
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in self.ledger
        )
        atomic_write(self.sink_path, payload.encode())

    # -- checkpointing --------------------------------------------------
    def snapshot(self) -> dict:
        # _pending is NOT persisted: everything pending is already in
        # the ledger, and reconcile_sink regenerates the sink from it.
        return {
            "threshold": self.threshold,
            "alarmed": sorted(self.alarmed),
            "ledger": list(self.ledger),
        }

    def restore(self, snapshot: dict) -> None:
        self.threshold = float(snapshot["threshold"])
        self.alarmed = set(int(s) for s in snapshot["alarmed"])
        self.ledger = [dict(record) for record in snapshot["ledger"]]
        self._pending = []
        self._window_alarms = 0
