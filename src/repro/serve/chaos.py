"""Chaos-under-serve: the six fault injectors against a *live* daemon.

For each fault the harness runs the same corrupted reading stream three
ways and cross-checks them:

* **reference** — one uninterrupted daemon over the whole stream;
* **killed** — a daemon with a checkpoint directory, fed only the
  readings below a kill day (so its last act is a committed
  window-boundary checkpoint) and then abandoned — the in-process
  equivalent of ``kill -9``, nothing is flushed or closed;
* **resumed** — :meth:`ServeDaemon.resume` from that checkpoint, fed
  only the readings at or above its watermark.

Invariants asserted (:class:`ChaosServeReport` carries the evidence):

* neither run crashes, whatever the injector mangled;
* the resumed run's ledger equals the reference ledger — zero duplicate
  and zero lost alarms across the hard kill;
* the alarm sink holds exactly one line per alarmed drive and matches
  the ledger;
* for ``missing_dimension``, degraded-mode entry is visible in the
  window summaries and the metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.pipeline import MFPA
from repro.obs import get_logger
from repro.robustness.faults import FAULT_REGISTRY, Reading, inject_stream, make_fault
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.replay import replay_into

__all__ = ["ChaosServeReport", "run_chaos_under_serve"]

_LOG = get_logger("repro.serve.chaos")

#: Constructor overrides making each fault bite hard enough to observe.
_FAULT_PARAMS: dict[str, dict] = {
    "drop_days": {"fraction": 0.2},
    "duplicate_rows": {"fraction": 0.2},
    "stuck_sensor": {"drive_fraction": 0.5},
    "counter_reset": {"drive_fraction": 0.5},
    "missing_dimension": {"dimension": "W"},
    "out_of_order": {"fraction": 0.2},
}


@dataclass(frozen=True)
class ChaosServeReport:
    """Evidence bundle for one fault's kill/resume cross-check."""

    fault: str
    n_readings: int
    n_alarms_reference: int
    n_alarms_resumed: int
    resume_matches_reference: bool
    sink_lines: int
    sink_unique_serials: int
    sink_matches_ledger: bool
    degraded_windows: int
    windows_total: int

    @property
    def passed(self) -> bool:
        return (
            self.resume_matches_reference
            and self.sink_matches_ledger
            and self.sink_lines == self.sink_unique_serials
        )


def _read_sink(path: Path) -> list[dict]:
    import json

    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def run_chaos_one(
    full: MFPA,
    reduced: MFPA | None,
    readings: list[Reading],
    fault: str,
    config: ServeConfig,
    work_dir: str | Path,
    end_day: int,
    seed: int = 0,
) -> ChaosServeReport:
    """Run one fault's corrupted stream through kill → resume and
    cross-check against an uninterrupted reference run."""
    work_dir = Path(work_dir)
    corrupted = inject_stream(
        readings, [make_fault(fault, **_FAULT_PARAMS.get(fault, {}))], seed=seed
    )
    kill_day = config.serve_start_day + config.window_days + 1

    reference = ServeDaemon.from_models(full, reduced, config)
    replay_into(reference, corrupted, end_day=end_day)

    checkpoint_dir = work_dir / fault / "ckpt"
    sink = work_dir / fault / "alarms.jsonl"
    killed = ServeDaemon.from_models(
        full, reduced, config, checkpoint_dir=checkpoint_dir, sink_path=sink
    )
    for serial, day, reading in corrupted:
        if day >= kill_day:
            break
        killed.submit(serial, day, reading)
        killed.pump()
    # hard kill: no finish(), no flush — the daemon is simply abandoned.
    assert killed.watermark > config.serve_start_day, (
        "kill point must land after at least one committed checkpoint"
    )

    resumed = ServeDaemon.resume(checkpoint_dir, sink_path=sink)
    replay_into(resumed, corrupted, end_day=end_day, min_day=resumed.watermark)

    sink_records = _read_sink(sink)
    sink_keys = [(r["serial"], r["day"]) for r in sink_records]
    ledger_keys = [(r["serial"], r["day"]) for r in resumed.alarms.ledger]
    report = ChaosServeReport(
        fault=fault,
        n_readings=len(corrupted),
        n_alarms_reference=len(reference.alarms.ledger),
        n_alarms_resumed=len(resumed.alarms.ledger),
        resume_matches_reference=(
            resumed.alarm_records() == reference.alarm_records()
        ),
        sink_lines=len(sink_records),
        sink_unique_serials=len({r["serial"] for r in sink_records}),
        sink_matches_ledger=sink_keys == ledger_keys,
        degraded_windows=sum(1 for w in resumed.windows if w["degraded"]),
        windows_total=len(resumed.windows),
    )
    _LOG.info(
        "chaos-under-serve fault done",
        fault=fault,
        passed=report.passed,
        alarms=report.n_alarms_resumed,
        degraded_windows=report.degraded_windows,
    )
    return report


def run_chaos_under_serve(
    full: MFPA,
    reduced: MFPA | None,
    readings: list[Reading],
    config: ServeConfig,
    work_dir: str | Path,
    end_day: int,
    faults: tuple[str, ...] | None = None,
    seed: int = 0,
) -> dict[str, ChaosServeReport]:
    """All six injectors (or ``faults``) through :func:`run_chaos_one`."""
    reports = {}
    for fault in faults or tuple(sorted(FAULT_REGISTRY)):
        reports[fault] = run_chaos_one(
            full, reduced, readings, fault, config, work_dir, end_day, seed=seed
        )
    return reports
