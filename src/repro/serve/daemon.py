"""The `repro serve` daemon: the batch monitor as a supervised stream.

Data path (one reading)::

    submit() ──▶ BoundedReadingQueue          (backpressure, shedding)
    pump()   ──▶ ReadingGate.admit            (quarantine / repair)
             ──▶ DimensionFreshness.observe   (staleness watch)
             ──▶ IncrementalScorer.stage      (ring-buffer feature state)
             ──▶ window flush at each boundary:
                   score staged rows in batches under RetryPolicy,
                   route full ▸ reduced on stale dimensions or an OPEN
                   circuit breaker, decide alarms (dedup + rate budget),
                   checkpoint, then emit committed alarms to the sink.

Crash-resume replays *only unacknowledged input*: the checkpoint's
``watermark`` is the end of the last flushed window, every admitted
reading below it is baked into the checkpointed scorer/gate state, and
every reading at or above it was never admitted (the gate admits at
pump time, after the boundary flush) — so feeding the daemon all
recorded readings with ``day >= watermark`` reproduces the
uninterrupted run exactly. The alarm sink is regenerated from the
checkpointed ledger on resume, which is what makes alarms exactly-once
across a ``kill -9`` (see :mod:`repro.serve.alarms`).
"""

from __future__ import annotations

import json
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.client import ClientPredictor
from repro.core.pipeline import MFPA, MFPAConfig
from repro.obs import (
    get_logger,
    get_registry,
    inc_counter,
    observe_histogram,
    registry_status,
    set_gauge,
    trace_span,
)
from repro.parallel import ParallelExecutor, SharedPayload, share
from repro.scale.memory import update_peak_rss_gauge
from repro.robustness.checkpoint import (
    CheckpointCorruptError,
    atomic_write,
    has_checkpoint_files,
    verify_manifest,
    write_manifest,
)
from repro.robustness.degraded import fit_reduced_model
from repro.serve.alarms import AlarmStream
from repro.serve.drift import DriftMonitor, ReferenceProfile
from repro.serve.ingest import BoundedReadingQueue, GatePolicy, ReadingGate
from repro.serve.retry import STATE_NAMES, CircuitBreaker, RetryPolicy, retry_call
from repro.serve.state import DimensionFreshness, IncrementalScorer
from repro.telemetry.dataset import TelemetryDataset

__all__ = ["SERVE_FILES", "ServeConfig", "ServeDaemon"]

_LOG = get_logger("repro.serve.daemon")

SERVE_STATE_VERSION = 1
#: The file pair a serve-daemon checkpoint consists of.
SERVE_FILES = ("model.pkl", "state.json")


def _predict_rows_task(
    predictor: SharedPayload, X: np.ndarray
) -> np.ndarray:
    """Worker task: score one chunk of a staged batch.

    ``predict_matrix`` only reads the fitted model (never the ring
    buffers), so the fork-shared predictor needs no synchronization.
    """
    return predictor.get().predict_matrix(X)


@dataclass(frozen=True)
class ServeConfig:
    """All serve-daemon knobs (frozen: pickled into the checkpoint)."""

    serve_start_day: int = 240
    """Readings before this day are warmup: committed into per-drive
    state (cumulative counters, history) but never scored."""
    window_days: int = 30
    end_day: int | None = None
    alarm_threshold: float = 0.5
    queue_capacity: int = 4096
    batch_size: int = 512
    max_alarms_per_window: int | None = None
    """Fleet-wide alarm budget per window (None = unlimited)."""
    stale_after: int = 256
    """Consecutive admitted readings a feature dimension may be absent
    before it is declared stale and scoring degrades."""
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    failure_threshold: int = 3
    cooldown_ticks: int = 2
    slow_tick_seconds: float = 5.0
    gate: GatePolicy = field(default_factory=GatePolicy)
    n_jobs: int = 1
    """Worker processes for batch scoring (1 = serial). The persistent
    pool amortizes its fork across every window the daemon flushes, and
    the calibrated fallback keeps small batches serial — results are
    identical at every setting. Read via ``getattr`` with a default so
    checkpoints written before this field existed still restore."""
    heartbeat_timeout_seconds: float = 60.0
    """`/health` readiness flips once the pump loop has been silent this
    long (measured on the daemon clock). Read via ``getattr`` for
    pre-field checkpoint compatibility, like ``n_jobs``."""
    drift_event_budget_windows: int = 3
    """Minimum flushed windows between two severe-drift events (the
    drift monitor's alarm-fatigue rate budget). ``getattr``-read."""


class ServeDaemon:
    """Long-running fleet scorer. Single-threaded by design: producers
    call :meth:`submit`, the supervisor calls :meth:`pump` per tick and
    :meth:`finish` at end of stream."""

    def __init__(
        self,
        scorer: IncrementalScorer,
        config: ServeConfig | None = None,
        checkpoint_dir: str | Path | None = None,
        sink_path: str | Path | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
        drift: DriftMonitor | None = None,
        model_hash: str | None = None,
    ):
        self.config = config or ServeConfig()
        self.scorer = scorer
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.alarms = AlarmStream(
            threshold=self.config.alarm_threshold,
            sink_path=sink_path,
            max_per_window=self.config.max_alarms_per_window,
        )
        self.gate = ReadingGate(self.config.gate, is_alarmed=self.alarms.is_alarmed)
        self.queue = BoundedReadingQueue(
            self.config.queue_capacity, is_alarmed=self.alarms.is_alarmed
        )
        self.freshness = DimensionFreshness(self.config.stale_after)
        self.breaker = CircuitBreaker(
            self.config.failure_threshold, self.config.cooldown_ticks
        )
        self.windows: list[dict] = []
        self.window_start = self.config.serve_start_day
        self.watermark = self.config.serve_start_day
        self.degraded = False
        self.drift = drift
        #: Artifact hash of the model pair serving this daemon (set when
        #: the models came from ``repro model save`` artifacts). Recorded
        #: in every checkpoint so ``resume`` can refuse a state written
        #: by a different model.
        self.model_hash = model_hash
        #: (serial, day, full_row, reduced_row, staged_at) — staged_at is
        #: the daemon clock at staging, for ingest→alarm latency.
        self._staged: list[
            tuple[int, int, np.ndarray, np.ndarray | None, float]
        ] = []
        self._e2e_latencies: list[float] = []
        self._clock = clock
        self._sleep = sleep
        self._retry_rng = np.random.default_rng(self.config.retry.seed)
        self._model_file_written = False
        self._last_tick: float | None = None
        self._last_checkpoint: float | None = None
        set_gauge("serve_degraded_mode", 0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bootstrap(
        cls,
        dataset: TelemetryDataset,
        config: ServeConfig | None = None,
        mfpa_config: MFPAConfig | None = None,
        train_end_day: int | None = None,
        fit_reduced: bool = True,
        drift: bool = True,
        **kwargs,
    ) -> "ServeDaemon":
        """Fit the full and reduced models on ``dataset`` and serve.

        ``drift=True`` also sketches the training-era feature and score
        distributions into a :class:`ReferenceProfile` so the daemon
        monitors PSI per flushed window.
        """
        config = config or ServeConfig()
        train_end_day = (
            train_end_day if train_end_day is not None else config.serve_start_day
        )
        full = MFPA(mfpa_config or MFPAConfig())
        full.fit(dataset, train_end_day=train_end_day)
        reduced = (
            fit_reduced_model(dataset, train_end_day, base_config=full.config)
            if fit_reduced
            else None
        )
        return cls.from_models(full, reduced, config, drift=drift, **kwargs)

    @classmethod
    def from_models(
        cls,
        full: MFPA,
        reduced: MFPA | None,
        config: ServeConfig | None = None,
        drift: "bool | DriftMonitor | ReferenceProfile" = False,
        **kwargs,
    ) -> "ServeDaemon":
        config = config or ServeConfig()
        scorer = IncrementalScorer(
            ClientPredictor.from_model(full, on_missing="impute"),
            ClientPredictor.from_model(reduced, on_missing="impute")
            if reduced is not None
            else None,
        )
        if drift is True:
            train_end = min(
                config.serve_start_day,
                int(full.dataset_.columns["day"].max()) + 1,
            )
            drift = ReferenceProfile.from_model(full, (0, train_end))
        if isinstance(drift, ReferenceProfile):
            drift = DriftMonitor(
                drift,
                event_budget_windows=getattr(
                    config, "drift_event_budget_windows", 3
                ),
            )
        return cls(scorer, config, drift=drift or None, **kwargs)

    @classmethod
    def resume(
        cls,
        checkpoint_dir: str | Path,
        sink_path: str | Path | None = None,
        expected_model_hash: str | None = None,
        **kwargs,
    ) -> "ServeDaemon":
        """Restore a daemon from its last committed checkpoint.

        Feed it every recorded reading with ``day >= daemon.watermark``
        and the result is identical to the uninterrupted run.

        ``expected_model_hash`` (the :func:`repro.ml.artifact.artifact_hash`
        of the model artifact the caller intends to serve) makes the
        resume refuse — with :class:`repro.ml.artifact.ArtifactMismatchError`
        — a checkpoint written by a daemon scoring through a different
        model. Silent continuation across a model swap would splice two
        incompatible alarm streams.
        """
        path = Path(checkpoint_dir)
        if not has_checkpoint_files(path, SERVE_FILES):
            raise FileNotFoundError(f"{path} does not contain a serve checkpoint")
        verify_manifest(path, SERVE_FILES)
        try:
            with open(path / "model.pkl", "rb") as handle:
                payload = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError, IndexError) as err:
            raise CheckpointCorruptError(
                f"serve checkpoint model {path / 'model.pkl'} is undecodable: {err}"
            ) from err
        try:
            state = json.loads((path / "state.json").read_text())
        except ValueError as err:
            raise CheckpointCorruptError(
                f"serve checkpoint state {path / 'state.json'} "
                f"is not valid JSON: {err}"
            ) from err
        version = state.get("version")
        if version != SERVE_STATE_VERSION:
            raise ValueError(f"unsupported serve checkpoint version {version!r}")
        stored_hash = state.get("model_hash")
        if expected_model_hash is not None and stored_hash != expected_model_hash:
            from repro.ml.artifact import ArtifactMismatchError

            raise ArtifactMismatchError(
                f"serve checkpoint {path} was written by model "
                f"{stored_hash or '<untracked>'}, refusing to resume with "
                f"artifact {expected_model_hash}; restart without --resume "
                f"or point --checkpoint-dir at a fresh directory"
            )

        scorer = IncrementalScorer(payload["full"], payload["reduced"])
        config = payload["config"]
        profile = payload.get("profile")
        drift = None
        if profile is not None:
            drift = DriftMonitor(
                profile,
                event_budget_windows=getattr(
                    config, "drift_event_budget_windows", 3
                ),
            )
        daemon = cls(
            scorer,
            config,
            checkpoint_dir=path,
            sink_path=sink_path,
            drift=drift,
            **kwargs,
        )
        # Metrics continuity: fold the checkpointed registry snapshot in
        # *before* the explicit gauge writes below, so counters resume
        # monotone from the crash point while current-truth gauges win.
        get_registry().merge(state.get("metrics") or [])
        set_gauge("serve_queue_depth", 0)
        # Pickled predictor states are as-of-pickling; the JSON state is
        # the committed truth — restore from it.
        daemon.scorer.restore(state["scorer"])
        daemon.gate.restore(state["gate"])
        daemon.freshness.restore(state["freshness"])
        daemon.breaker.restore(state["breaker"])
        daemon.alarms.restore(state["alarms"])
        if daemon.drift is not None and state.get("drift") is not None:
            daemon.drift.restore(state["drift"])
        daemon.windows = [dict(window) for window in state["windows"]]
        daemon.window_start = int(state["window_start"])
        daemon.watermark = int(state["watermark"])
        daemon.degraded = bool(state["degraded"])
        daemon.model_hash = stored_hash
        daemon._model_file_written = True
        set_gauge("serve_degraded_mode", int(daemon.degraded))
        inc_counter("serve_resumes_total")
        daemon.alarms.reconcile_sink()
        _LOG.info(
            "daemon resumed",
            watermark=daemon.watermark,
            windows=len(daemon.windows),
            alarms=len(daemon.alarms.ledger),
        )
        return daemon

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def submit(self, serial, day, reading) -> None:
        """Enqueue one reading (cheap; validation happens at pump time)."""
        self.queue.offer(serial, day, reading)

    def pump(self) -> None:
        """One supervised tick: drain, stage, flush due windows."""
        started = self._clock()
        with trace_span("serve.pump"):
            for serial, day, reading in self.queue.drain():
                self._process(serial, day, reading)
        self.breaker.tick()
        inc_counter("serve_ticks_total")
        self._last_tick = self._clock()
        set_gauge("serve_heartbeat_timestamp", time.time())
        update_peak_rss_gauge()
        elapsed = self._clock() - started
        if elapsed > self.config.slow_tick_seconds:
            inc_counter("serve_slow_ticks_total")
            _LOG.warning("slow tick", seconds=round(elapsed, 3))

    def finish(self, end_day: int | None = None) -> dict:
        """Drain, flush every remaining window up to ``end_day``."""
        self.pump()
        end = end_day if end_day is not None else self.config.end_day
        if end is None and self._staged:
            end = self.window_start + self.config.window_days
        while end is not None and self.window_start < end:
            self._flush_window()
        return self.summary()

    def _process(self, serial, day, reading) -> None:
        try:
            numeric_day = int(day)
        except (TypeError, ValueError):
            self.gate.note_quarantine(serial, "malformed")
            return
        # Boundary first: a reading belonging to a later window must not
        # be admitted before this window's flush commits (the watermark
        # replay contract depends on it).
        while numeric_day >= self.window_start + self.config.window_days:
            self._flush_window()

        clean = self.gate.admit(serial, numeric_day, reading)
        if clean is None:
            return
        self.freshness.observe(clean)
        try:
            full_row, reduced_row = self.scorer.stage(
                int(serial), numeric_day, clean
            )
        except (ValueError, KeyError) as error:
            # e.g. a firmware string the training encoder never saw
            self.gate.note_quarantine(serial, "assembly_error")
            _LOG.warning(
                "assembly failed", serial=serial, day=numeric_day,
                error=repr(error),
            )
            return
        if numeric_day >= self.config.serve_start_day:
            self._staged.append(
                (int(serial), numeric_day, full_row, reduced_row, self._clock())
            )

    # ------------------------------------------------------------------
    # Window flush
    # ------------------------------------------------------------------
    def _score_staged(self, degraded_route: bool) -> tuple[np.ndarray, bool]:
        """Batched probabilities for the staged rows; returns the
        probabilities plus the route actually used (a full-route failure
        falls back to the reduced model mid-window).

        With ``config.n_jobs > 1`` each batch's rows are chunked over
        the persistent worker pool; the predictor travels by fork
        inheritance and per-row independence keeps the concatenated
        probabilities identical to the serial pass. Retries and the
        circuit breaker wrap the whole parallel call, so failure
        semantics are unchanged.
        """
        column = 3 if degraded_route and self.scorer.has_reduced else 2
        predict = (
            self.scorer.predict_reduced
            if column == 3
            else self.scorer.predict_full
        )
        executor = ParallelExecutor(getattr(self.config, "n_jobs", 1))
        if executor.is_parallel:
            predictor = self.scorer.reduced if column == 3 else self.scorer.full

            def predict(X, _predictor=predictor, _executor=executor):
                chunks = np.array_split(X, _executor.n_jobs)
                with share(_predictor, name="serve_predictor") as handle:
                    parts = _executor.starmap(
                        _predict_rows_task,
                        [(handle, chunk) for chunk in chunks if len(chunk)],
                    )
                return np.concatenate(parts)
        stage = "score_reduced" if column == 3 else "score_full"
        probabilities: list[np.ndarray] = []
        for offset in range(0, len(self._staged), self.config.batch_size):
            batch = self._staged[offset : offset + self.config.batch_size]
            X = np.stack([entry[column] for entry in batch])
            try:
                chunk = retry_call(
                    lambda: predict(X),
                    policy=self.config.retry,
                    stage=stage,
                    sleep=self._sleep,
                    clock=self._clock,
                    rng=self._retry_rng,
                )
            except Exception:
                self.breaker.record_failure()
                if column == 2 and self.scorer.has_reduced:
                    _LOG.error(
                        "full-model scoring exhausted retries; "
                        "falling back to reduced model for this window"
                    )
                    return self._score_staged(degraded_route=True)
                raise
            self.breaker.record_success()
            probabilities.append(np.asarray(chunk, dtype=float))
            inc_counter("serve_batches_scored_total")
        if probabilities:
            return np.concatenate(probabilities), column == 3
        return np.empty(0), column == 3

    def _set_degraded(self, degraded: bool, reasons: tuple[str, ...]) -> None:
        if degraded and not self.degraded:
            inc_counter("serve_degraded_entries_total")
            _LOG.warning("entering degraded mode", reasons=list(reasons))
        elif not degraded and self.degraded:
            inc_counter("serve_degraded_exits_total")
            _LOG.info("exiting degraded mode")
        self.degraded = degraded
        set_gauge("serve_degraded_mode", int(degraded))

    def _flush_window(self) -> None:
        window_end = self.window_start + self.config.window_days
        with trace_span("serve.flush_window"):
            stale = self.scorer.has_reduced and self.freshness.stale_dimensions()
            want_degraded = bool(stale) or (
                self.scorer.has_reduced and self.breaker.is_open
            )
            probabilities, used_reduced = self._score_staged(want_degraded)
            reasons = tuple(
                (*(f"stale:{name}" for name in (stale or ())),
                 *(("breaker_open",) if self.breaker.is_open else ()),
                 *(("score_fallback",) if used_reduced and not want_degraded
                   else ())),
            )
            self._set_degraded(used_reduced, reasons)

            if (
                self.drift is not None
                and self._staged
                and len(probabilities) == len(self._staged)
            ):
                # Current-day feature block of the *full* rows: the
                # trailing columns (earlier blocks are history lags).
                current = np.stack(
                    [entry[2] for entry in self._staged]
                )[:, -self.drift.n_columns:]
                self.drift.observe_window(
                    current, probabilities, window_start=self.window_start
                )

            self.alarms.open_window()
            window_alarms: list[dict] = []
            decided_at = self._clock()
            for (serial, day, _full, _reduced, staged_at), probability in zip(
                self._staged, probabilities
            ):
                if self.alarms.decide(
                    serial, day, float(probability),
                    window_start=self.window_start, degraded=used_reduced,
                ):
                    window_alarms.append(self.alarms.ledger[-1])
                    latency = max(0.0, decided_at - staged_at)
                    observe_histogram("serve_e2e_latency_seconds", latency)
                    self._e2e_latencies.append(latency)

            self.windows.append(
                {
                    "start_day": self.window_start,
                    "end_day": window_end,
                    "n_readings_scored": len(self._staged),
                    "degraded": used_reduced,
                    "alarms": window_alarms,
                }
            )
            inc_counter("serve_windows_scored_total")
            self._staged = []
            self.window_start = window_end
            self.watermark = window_end
            if self.checkpoint_dir is not None:
                self._checkpoint()
            # Only after the checkpoint committed do alarms reach the
            # sink — a crash in between is repaired by reconcile_sink.
            self.alarms.emit_pending()
        _LOG.info(
            "window flushed",
            start=self.windows[-1]["start_day"],
            end=window_end,
            scored=self.windows[-1]["n_readings_scored"],
            alarms=len(window_alarms),
            degraded=used_reduced,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        path = self.checkpoint_dir
        path.mkdir(parents=True, exist_ok=True)
        if not self._model_file_written:
            payload = {
                "version": SERVE_STATE_VERSION,
                "config": self.config,
                "full": self.scorer.full,
                "reduced": self.scorer.reduced,
                "profile": self.drift.profile if self.drift else None,
            }
            atomic_write(path / "model.pkl", pickle.dumps(payload))
            self._model_file_written = True
        state = {
            "version": SERVE_STATE_VERSION,
            "window_start": self.window_start,
            "watermark": self.watermark,
            "degraded": self.degraded,
            "model_hash": self.model_hash,
            "scorer": self.scorer.snapshot(),
            "gate": self.gate.snapshot(),
            "freshness": self.freshness.snapshot(),
            "breaker": self.breaker.snapshot(),
            "alarms": self.alarms.snapshot(),
            "windows": self.windows,
            "drift": self.drift.snapshot() if self.drift else None,
            # Registry snapshot: restored by resume() so counters stay
            # monotone across kill -9 (the continuity contract).
            "metrics": get_registry().dump(),
        }
        atomic_write(path / "state.json", json.dumps(state).encode())
        write_manifest(path, SERVE_FILES)
        inc_counter("serve_checkpoints_total")
        self._last_checkpoint = self._clock()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        return {
            "windows": self.windows,
            "n_windows": len(self.windows),
            "n_alarms": len(self.alarms.ledger),
            "alarmed_serials": sorted(self.alarms.alarmed),
            "degraded_windows": sum(1 for w in self.windows if w["degraded"]),
            "watermark": self.watermark,
            "e2e_latency_seconds": self._latency_summary(),
        }

    def _latency_summary(self) -> dict:
        """Ingest→alarm latency percentiles over this process's alarms."""
        if not self._e2e_latencies:
            return {"count": 0, "p50": None, "p95": None, "p99": None}
        values = np.asarray(self._e2e_latencies, dtype=float)
        p50, p95, p99 = np.percentile(values, [50, 95, 99])
        return {
            "count": int(values.size),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
        }

    def status_snapshot(self) -> dict:
        """The `/status` payload: everything an operator dashboard needs
        in one JSON-ready dict. Cheap to build; safe from any thread that
        tolerates slightly-torn reads (the HTTP handler does)."""
        return {
            "watermark": self.watermark,
            "window_start": self.window_start,
            "n_windows": len(self.windows),
            "staged": len(self._staged),
            "degraded": self.degraded,
            "queue": {
                "depth": len(self.queue),
                "capacity": self.queue.capacity,
            },
            "breaker": {
                "state": self.breaker.state,
                "name": STATE_NAMES[self.breaker.state],
            },
            "alarms": {
                "ledger": len(self.alarms.ledger),
                "alarmed": len(self.alarms.alarmed),
            },
            "gate": {
                "banned": len(self.gate.banned),
                "quarantined_drives": len(self.gate.quarantine_counts),
            },
            "drift": self.drift.last if self.drift else None,
            "e2e_latency_seconds": self._latency_summary(),
            "metrics": registry_status(),
        }

    def health_snapshot(self) -> dict:
        """The `/health` payload: liveness (we answered) plus readiness
        checks — queue headroom, breaker closed, heartbeat fresh."""
        now = self._clock()
        depth = len(self.queue)
        heartbeat_age = None if self._last_tick is None else now - self._last_tick
        timeout = getattr(self.config, "heartbeat_timeout_seconds", 60.0)
        checks = {
            "queue": {
                "ok": depth < self.queue.capacity,
                "depth": depth,
                "capacity": self.queue.capacity,
            },
            "breaker": {
                "ok": not self.breaker.is_open,
                "state": STATE_NAMES[self.breaker.state],
            },
            "heartbeat": {
                # None = not pumped yet; a freshly started daemon is
                # ready, staleness only means the loop went silent.
                "ok": heartbeat_age is None or heartbeat_age <= timeout,
                "age_seconds": heartbeat_age,
                "timeout_seconds": timeout,
            },
        }
        return {
            "alive": True,
            "ready": all(check["ok"] for check in checks.values()),
            "checks": checks,
            "watermark": self.watermark,
            "checkpoint_age_seconds": (
                None
                if self._last_checkpoint is None
                else now - self._last_checkpoint
            ),
        }

    def alarm_records(self) -> list[tuple[int, int, float]]:
        """``(serial, day, probability)`` per ledger entry, sorted."""
        return sorted(
            (r["serial"], r["day"], r["probability"]) for r in self.alarms.ledger
        )
