"""Live drift monitoring for the serve daemon.

The paper's Figs 12/16 show FPR creeping as feature distributions move
away from what MFPA learned; :mod:`repro.core.drift` quantifies that
offline with PSI. This module closes the operational loop for the
always-on daemon:

* :class:`ReferenceProfile` — the training-time artifact: per-feature
  quantile bin edges + expected shares (from
  :func:`repro.core.drift.reference_bins`) and the same sketch of the
  model's training-era score distribution. Built once at bootstrap,
  pickled into the serve checkpoint and exportable as JSON beside the
  run manifest, so a monitor restarted months later still compares
  against the exact training population.
* :class:`DriftMonitor` — per window, computes PSI for every feature
  column and for the score distribution via
  :func:`repro.core.drift.psi_against_reference` (the *same* function
  the offline report uses, so values are bit-identical on the same
  windows), exports them as ``serve_drift_psi{feature=...}`` gauges
  plus a ``serve_drift_state`` gauge, and fires a rate-budgeted drift
  event (log + ``serve_drift_events_total``) when any PSI crosses the
  "severe" threshold.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.drift import psi_against_reference, reference_bins
from repro.obs import get_logger, inc_counter, set_gauge

__all__ = ["SCORE_FEATURE", "DriftMonitor", "ReferenceProfile"]

_LOG = get_logger("repro.serve.drift")

PROFILE_VERSION = 1

#: Label value under which the score-distribution PSI is exported —
#: reserved (dunder) so it can never collide with a feature column.
SCORE_FEATURE = "__score__"

#: Conventional PSI severity thresholds (see repro.core.drift).
DRIFTING_PSI = 0.1
SEVERE_PSI = 0.25

#: serve_drift_state gauge values.
STABLE, DRIFTING, SEVERE = 0, 1, 2
_STATE_NAMES = {STABLE: "stable", DRIFTING: "drifting", SEVERE: "severe"}

Bins = tuple[np.ndarray, "np.ndarray | None"]


class ReferenceProfile:
    """Training-era distribution sketch: quantile bins per feature + score.

    Stores exactly the reference-dependent half of the PSI computation
    (:func:`~repro.core.drift.reference_bins` output), not the raw
    sample — a few hundred floats regardless of fleet size.
    """

    def __init__(
        self,
        columns: tuple[str, ...],
        feature_bins: dict[str, Bins],
        score_bins: Bins | None,
        n_reference_rows: int,
        n_bins: int = 10,
        meta: dict | None = None,
    ):
        self.columns = tuple(columns)
        missing = [c for c in self.columns if c not in feature_bins]
        if missing:
            raise ValueError(f"profile is missing bins for columns {missing}")
        self.feature_bins = feature_bins
        self.score_bins = score_bins
        self.n_reference_rows = int(n_reference_rows)
        self.n_bins = int(n_bins)
        self.meta = dict(meta or {})

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        columns,
        X: np.ndarray,
        scores: np.ndarray | None = None,
        n_bins: int = 10,
        meta: dict | None = None,
    ) -> "ReferenceProfile":
        """Profile from an explicit reference matrix (one column per
        feature, current-day block only) and optional reference scores."""
        columns = tuple(columns)
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(columns):
            raise ValueError(
                f"reference matrix has {X.shape} but {len(columns)} columns "
                "were named"
            )
        feature_bins = {
            column: reference_bins(X[:, i], n_bins)
            for i, column in enumerate(columns)
        }
        score_bins = (
            reference_bins(np.asarray(scores, dtype=float), n_bins)
            if scores is not None
            else None
        )
        return cls(columns, feature_bins, score_bins, X.shape[0], n_bins, meta)

    @classmethod
    def from_model(
        cls,
        model,
        reference_window: tuple[int, int],
        n_bins: int = 10,
        max_rows: int = 20000,
        seed: int = 0,
    ) -> "ReferenceProfile":
        """Profile the training-era population of a fitted MFPA.

        Samples at most ``max_rows`` rows of the prepared dataset inside
        ``reference_window`` (same subsampling policy as
        :func:`repro.core.drift.feature_drift_report`), assembles them
        with the fitted feature assembler, and sketches both the
        per-feature marginals (current-day feature block) and the
        model's score distribution on those rows.
        """
        start, end = reference_window
        if end <= start:
            raise ValueError("reference window end must exceed start")
        prepared = model.dataset_
        day = prepared.columns["day"]
        rows = np.flatnonzero((day >= start) & (day < end))
        if rows.size == 0:
            raise ValueError(f"no rows in reference window {reference_window}")
        if rows.size > max_rows:
            rng = np.random.default_rng(seed)
            rows = rng.choice(rows, size=max_rows, replace=False)
        assembled = model.assembler_.assemble(prepared.columns, rows)
        scores = model.model_.predict_proba(assembled)[:, 1]
        columns = tuple(model.assembler_.columns)
        # The trailing block is the current-day feature vector whatever
        # the history length (earlier blocks are lagged copies).
        current = assembled[:, -len(columns):]
        return cls.from_samples(
            columns,
            current,
            scores,
            n_bins=n_bins,
            meta={
                "reference_window": [int(start), int(end)],
                "max_rows": int(max_rows),
                "seed": int(seed),
            },
        )

    # ------------------------------------------------------------------
    # PSI
    # ------------------------------------------------------------------
    def feature_psi(self, column: str, actual: np.ndarray) -> float:
        edges, share = self.feature_bins[column]
        return psi_against_reference(edges, share, actual)

    def score_psi(self, scores: np.ndarray) -> float | None:
        if self.score_bins is None:
            return None
        edges, share = self.score_bins
        return psi_against_reference(edges, share, scores)

    # ------------------------------------------------------------------
    # Serialization (JSON artifact beside the run manifest)
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_bins(bins: Bins) -> dict:
        edges, share = bins
        # The ±inf end caps are structural; persist only the interior
        # edges so the file is strict JSON.
        inner = [float(e) for e in np.asarray(edges, dtype=float)[1:-1]]
        return {
            "inner_edges": inner,
            "expected_share": None if share is None else [float(s) for s in share],
        }

    @staticmethod
    def _decode_bins(payload: dict) -> Bins:
        edges = np.array(
            [-np.inf, *payload["inner_edges"], np.inf], dtype=float
        )
        share = payload["expected_share"]
        return edges, (None if share is None else np.asarray(share, dtype=float))

    def to_json(self) -> dict:
        return {
            "version": PROFILE_VERSION,
            "n_bins": self.n_bins,
            "n_reference_rows": self.n_reference_rows,
            "columns": list(self.columns),
            "features": {
                column: self._encode_bins(self.feature_bins[column])
                for column in self.columns
            },
            "score": (
                None
                if self.score_bins is None
                else self._encode_bins(self.score_bins)
            ),
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ReferenceProfile":
        version = payload.get("version")
        if version != PROFILE_VERSION:
            raise ValueError(f"unsupported reference-profile version {version!r}")
        columns = tuple(payload["columns"])
        return cls(
            columns,
            {c: cls._decode_bins(payload["features"][c]) for c in columns},
            None if payload["score"] is None else cls._decode_bins(payload["score"]),
            payload["n_reference_rows"],
            payload["n_bins"],
            payload.get("meta"),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), sort_keys=True) + "\n")
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ReferenceProfile":
        return cls.from_json(json.loads(Path(path).read_text()))


def _severity(psi: float) -> int:
    if psi < DRIFTING_PSI:
        return STABLE
    if psi < SEVERE_PSI:
        return DRIFTING
    return SEVERE


class DriftMonitor:
    """Per-window PSI against a :class:`ReferenceProfile`, with gauges
    and a rate-budgeted severe-drift event.

    ``event_budget_windows`` is the minimum number of observed windows
    between two drift events: a fleet that goes severely adrift stays
    adrift for many consecutive windows, and paging the operator every
    30 simulated days for the same condition is alarm fatigue — the
    suppressed firings are still counted
    (``serve_drift_events_suppressed_total``).
    """

    def __init__(
        self,
        profile: ReferenceProfile,
        drifting_threshold: float = DRIFTING_PSI,
        severe_threshold: float = SEVERE_PSI,
        event_budget_windows: int = 3,
    ):
        if event_budget_windows < 1:
            raise ValueError("event_budget_windows must be >= 1")
        if not 0 < drifting_threshold < severe_threshold:
            raise ValueError("need 0 < drifting_threshold < severe_threshold")
        self.profile = profile
        self.drifting_threshold = float(drifting_threshold)
        self.severe_threshold = float(severe_threshold)
        self.event_budget_windows = int(event_budget_windows)
        #: Windows observed since the last fired event (None = never fired).
        self._windows_since_event: int | None = None
        #: The most recent window's report (surfaced by /status).
        self.last: dict | None = None

    @property
    def n_columns(self) -> int:
        return len(self.profile.columns)

    def _state_of(self, psi: float) -> int:
        if psi < self.drifting_threshold:
            return STABLE
        if psi < self.severe_threshold:
            return DRIFTING
        return SEVERE

    def observe_window(
        self,
        X: np.ndarray,
        scores: np.ndarray | None = None,
        window_start: int | None = None,
    ) -> dict:
        """Score one flushed window's feature matrix (current-day block,
        one column per profile column) and its emitted probabilities.

        Returns (and stores in :attr:`last`) the per-feature PSI map,
        the score PSI, the aggregate state and whether an event fired.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_columns:
            raise ValueError(
                f"window matrix has shape {X.shape}; expected "
                f"(*, {self.n_columns})"
            )
        if X.shape[0] == 0:
            raise ValueError("cannot measure drift on an empty window")
        features: dict[str, float] = {}
        for i, column in enumerate(self.profile.columns):
            psi = self.profile.feature_psi(column, X[:, i])
            features[column] = psi
            set_gauge("serve_drift_psi", psi, feature=column)
        score_psi = None
        if scores is not None and len(np.atleast_1d(scores)):
            score_psi = self.profile.score_psi(np.atleast_1d(scores))
            if score_psi is not None:
                set_gauge("serve_drift_psi", score_psi, feature=SCORE_FEATURE)

        worst = max([*features.values(), *(
            [score_psi] if score_psi is not None else []
        )], default=0.0)
        state = self._state_of(worst)
        set_gauge("serve_drift_state", state)

        if self._windows_since_event is not None:
            self._windows_since_event += 1
        event = False
        if state == SEVERE:
            if (
                self._windows_since_event is None
                or self._windows_since_event >= self.event_budget_windows
            ):
                event = True
                self._windows_since_event = 0
                inc_counter("serve_drift_events_total")
                offenders = sorted(
                    features.items(), key=lambda item: item[1], reverse=True
                )[:5]
                _LOG.warning(
                    "severe feature drift",
                    window_start=window_start,
                    worst=round(worst, 4),
                    score_psi=(
                        None if score_psi is None else round(score_psi, 4)
                    ),
                    top=[[c, round(p, 4)] for c, p in offenders],
                )
            else:
                inc_counter("serve_drift_events_suppressed_total")

        self.last = {
            "window_start": window_start,
            "features": features,
            "score": score_psi,
            "worst": worst,
            "state": state,
            "state_name": _STATE_NAMES[state],
            "event": event,
        }
        return self.last

    # -- checkpointing --------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "windows_since_event": self._windows_since_event,
            "last": self.last,
        }

    def restore(self, snapshot: dict) -> None:
        since = snapshot.get("windows_since_event")
        self._windows_since_event = None if since is None else int(since)
        self.last = snapshot.get("last")
        if self.last is not None:
            set_gauge("serve_drift_state", int(self.last.get("state", STABLE)))
