"""Supervised ingestion: per-reading quarantine gate + bounded queue.

The gate is the streaming counterpart of
:func:`repro.robustness.quarantine.sanitize_dataset` — the same
violation classes (non-finite values, negative daily event counts,
decreasing cumulative counters) with the same repair-or-drop policy
knobs, applied one reading at a time with per-drive audit counters. A
drive that keeps sending garbage is banned outright after
``quarantine_drive_after`` rejected readings.

Behind the gate sits :class:`BoundedReadingQueue`: when producers
outrun the scoring loop the queue sheds the *oldest reading of a
not-yet-alarmed drive* first — an alarmed drive's readings are already
moot (alarms are once per drive lifetime), and for healthy drives a
fresher reading always supersedes a staler one. Every shed is counted;
nothing is dropped silently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs import get_logger, inc_counter, set_gauge
from repro.robustness.faults import Reading
from repro.telemetry.dataset import B_COLUMNS, W_COLUMNS
from repro.telemetry.validation import _MONOTONE_COLUMNS

__all__ = ["BoundedReadingQueue", "GatePolicy", "ReadingGate"]

_LOG = get_logger("repro.serve.ingest")
_EVENT_COLUMNS = frozenset((*W_COLUMNS, *B_COLUMNS))
_MONOTONE = tuple(_MONOTONE_COLUMNS)


@dataclass(frozen=True)
class GatePolicy:
    """Repair-or-drop policy per violation class (quarantine semantics)."""

    nonfinite: str = "repair"
    """NaN/inf values: ``"repair"`` strips the entry (the impute-mode
    scorer substitutes the drive's last-known value) or ``"drop"`` the
    whole reading."""
    negative_events: str = "repair"
    """Negative daily W/B counts: ``"repair"`` clamps to zero or
    ``"drop"`` the reading."""
    counter_resets: str = "repair"
    """A cumulative SMART counter below the drive's running maximum:
    ``"repair"`` clamps back up to it or ``"drop"`` the reading."""
    quarantine_drive_after: int | None = 20
    """Ban a drive outright after this many quarantined readings
    (``None`` disables banning)."""

    def __post_init__(self):
        for knob in ("nonfinite", "negative_events", "counter_resets"):
            value = getattr(self, knob)
            if value not in ("repair", "drop"):
                raise ValueError(f"{knob} must be 'repair' or 'drop', not {value!r}")


class ReadingGate:
    """Validate, repair or quarantine one reading at a time.

    ``admit`` returns the (possibly repaired) reading dict, or ``None``
    when the reading was quarantined or skipped. ``is_alarmed`` is the
    daemon's alarm-ledger membership test: readings for already-alarmed
    drives are skipped (counted, not quarantined — they are expected).
    """

    def __init__(self, policy: GatePolicy | None = None, is_alarmed=None):
        self.policy = policy or GatePolicy()
        self._is_alarmed = is_alarmed or (lambda serial: False)
        self._last_day: dict[int, int] = {}
        self._running_max: dict[int, dict[str, float]] = {}
        self.quarantine_counts: dict[int, int] = {}
        self.banned: set[int] = set()

    def last_day(self, serial: int) -> int | None:
        return self._last_day.get(int(serial))

    def _quarantine(self, serial, rule: str) -> None:
        inc_counter("serve_readings_quarantined_total", rule=rule)
        try:
            serial = int(serial)
        except (TypeError, ValueError):
            return  # unattributable reading: counted, no drive to ban
        count = self.quarantine_counts.get(serial, 0) + 1
        self.quarantine_counts[serial] = count
        limit = self.policy.quarantine_drive_after
        if limit is not None and count >= limit and serial not in self.banned:
            self.banned.add(serial)
            _LOG.warning("drive banned", serial=serial, quarantined=count)

    def note_quarantine(self, serial, rule: str) -> None:
        """Record a post-gate rejection (e.g. feature-assembly failure)."""
        self._quarantine(serial, rule)

    def admit(self, serial, day, reading) -> dict | None:
        try:
            serial = int(serial)
            day = int(day)
            items = dict(reading).items()
        except (TypeError, ValueError):
            self._quarantine(serial, "malformed")
            return None

        if serial in self.banned:
            self._quarantine(serial, "banned_drive")
            return None
        if self._is_alarmed(serial):
            inc_counter("serve_readings_skipped_alarmed_total")
            return None
        last = self._last_day.get(serial)
        if last is not None and day <= last:
            # duplicates and out-of-order delivery both land here
            self._quarantine(serial, "stale_day")
            return None

        clean: dict = {}
        for key, value in items:
            if key == "firmware":
                clean[key] = value
                continue
            try:
                value = float(value)
            except (TypeError, ValueError):
                self._quarantine(serial, "non_numeric")
                return None
            if not math.isfinite(value):
                if self.policy.nonfinite == "drop":
                    self._quarantine(serial, "nonfinite")
                    return None
                inc_counter("serve_readings_repaired_total", rule="nonfinite")
                continue  # stripped: impute-mode scoring fills it in
            if key in _EVENT_COLUMNS and value < 0:
                if self.policy.negative_events == "drop":
                    self._quarantine(serial, "negative_events")
                    return None
                inc_counter(
                    "serve_readings_repaired_total", rule="negative_events"
                )
                value = 0.0
            clean[key] = value

        maxima = self._running_max.setdefault(serial, {})
        for column in _MONOTONE:
            value = clean.get(column)
            if value is None:
                continue
            ceiling = maxima.get(column)
            if ceiling is not None and value < ceiling:
                if self.policy.counter_resets == "drop":
                    self._quarantine(serial, "counter_reset")
                    return None
                inc_counter(
                    "serve_readings_repaired_total", rule="counter_reset"
                )
                clean[column] = ceiling
            else:
                maxima[column] = value

        self._last_day[serial] = day
        inc_counter("serve_readings_ingested_total")
        return clean

    # -- checkpointing --------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "last_day": {str(k): v for k, v in self._last_day.items()},
            "running_max": {
                str(k): dict(v) for k, v in self._running_max.items()
            },
            "quarantine_counts": {
                str(k): v for k, v in self.quarantine_counts.items()
            },
            "banned": sorted(self.banned),
        }

    def restore(self, snapshot: dict) -> None:
        self._last_day = {int(k): int(v) for k, v in snapshot["last_day"].items()}
        self._running_max = {
            int(k): {c: float(x) for c, x in v.items()}
            for k, v in snapshot["running_max"].items()
        }
        self.quarantine_counts = {
            int(k): int(v) for k, v in snapshot["quarantine_counts"].items()
        }
        self.banned = set(int(s) for s in snapshot["banned"])


class BoundedReadingQueue:
    """FIFO with explicit backpressure: full means shed, never block.

    The victim is the oldest entry whose drive has not alarmed
    (``is_alarmed`` is the same ledger test the gate uses); if every
    queued drive has alarmed the plain oldest goes. Depth is exported
    as the ``serve_queue_depth`` gauge on every mutation.
    """

    def __init__(self, capacity: int = 4096, is_alarmed=None):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._is_alarmed = is_alarmed or (lambda serial: False)
        self._items: list[Reading] = []

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, serial: int, day: int, reading: dict) -> None:
        if len(self._items) >= self.capacity:
            victim = 0
            for i, (queued_serial, _day, _reading) in enumerate(self._items):
                if not self._is_alarmed(queued_serial):
                    victim = i
                    break
            shed = self._items.pop(victim)
            inc_counter("serve_readings_shed_total")
            _LOG.warning("reading shed", serial=shed[0], day=shed[1])
        self._items.append((serial, day, reading))
        set_gauge("serve_queue_depth", len(self._items))

    def drain(self) -> list[Reading]:
        items, self._items = self._items, []
        set_gauge("serve_queue_depth", 0)
        return items
