"""Replay a recorded :class:`TelemetryDataset` at a live daemon.

``repro replay`` (and the chaos harness) turn the columnar dataset back
into the per-day reading stream a client collector would emit. The
stream is produced from the *gap-repaired* dataset (same
``repair_discontinuity`` parameters the batch pipeline's preprocessing
uses) and starts at day 0 even when serving starts later: the daemon
needs the warmup days to build the same cumulative W/B counters the
batch pipeline computes over full history — that is what makes daemon
alarms bit-identical to ``simulate_operation`` on clean input.

Streams also serialize to JSONL (one ``{"kind": "reading", ...}`` event
per line, a final ``{"kind": "end"}``) so a recorded stream can be
fired at a daemon process via ``repro serve --input``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.preprocess import repair_discontinuity
from repro.robustness.faults import Reading
from repro.serve.daemon import ServeDaemon
from repro.telemetry.dataset import B_COLUMNS, TelemetryDataset, W_COLUMNS
from repro.telemetry.smart import SMART_COLUMNS

__all__ = [
    "dataset_to_readings",
    "iter_stream",
    "replay_into",
    "write_stream",
]

_READING_COLUMNS = (*SMART_COLUMNS, *W_COLUMNS, *B_COLUMNS)


def dataset_to_readings(
    dataset: TelemetryDataset,
    start_day: int = 0,
    end_day: int | None = None,
    repair: bool = True,
    max_gap: int = 10,
    fill_gap: int = 3,
    min_segment_records: int = 5,
) -> list[Reading]:
    """Day-major ``(serial, day, reading)`` stream from a dataset.

    ``repair=True`` (the default) replays the
    :func:`repair_discontinuity`-repaired rows — the same rows the
    batch pipeline scores — which is required for alarm parity with
    ``simulate_operation``.
    """
    if repair:
        dataset, _report = repair_discontinuity(
            dataset,
            max_gap=max_gap,
            fill_gap=fill_gap,
            min_segment_records=min_segment_records,
        )
    serial = dataset.columns["serial"]
    day = dataset.columns["day"]
    keep = day >= start_day
    if end_day is not None:
        keep &= day < end_day
    indices = np.flatnonzero(keep)
    # Day-major: all of day d across the fleet, then day d+1 — the order
    # readings arrive from a fleet of collectors.
    indices = indices[np.lexsort((serial[indices], day[indices]))]
    value_columns = {
        name: dataset.columns[name]
        for name in _READING_COLUMNS
        if name in dataset.columns
    }
    firmware = dataset.columns.get("firmware")
    readings: list[Reading] = []
    for i in indices:
        reading = {name: float(values[i]) for name, values in value_columns.items()}
        if firmware is not None:
            reading["firmware"] = str(firmware[i])
        readings.append((int(serial[i]), int(day[i]), reading))
    return readings


def write_stream(
    path: str | Path, readings: list[Reading], end_day: int | None = None
) -> Path:
    """Serialize a reading stream to JSONL for cross-process replay."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        for serial, day, reading in readings:
            handle.write(
                json.dumps(
                    {"kind": "reading", "serial": serial, "day": day,
                     "reading": reading},
                    sort_keys=True,
                )
                + "\n"
            )
        handle.write(json.dumps({"kind": "end", "day": end_day}) + "\n")
    return path


def iter_stream(path: str | Path) -> Iterator[dict]:
    """Yield the events of a recorded JSONL stream."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def replay_into(
    daemon: ServeDaemon,
    readings: list[Reading],
    end_day: int | None = None,
    speed: float | None = None,
    sleep=time.sleep,
    min_day: int | None = None,
    throttle_seconds: float = 0.0,
    throttle_from_day: int | None = None,
) -> dict:
    """Fire ``readings`` at ``daemon``, pumping once per simulated day.

    ``min_day`` skips readings below it (the resume path replays only
    ``day >= daemon.watermark``). ``speed`` paces the replay at
    simulated-days-per-second; ``throttle_seconds`` adds a flat delay
    per day from ``throttle_from_day`` on (the serve-smoke harness uses
    it to widen the kill window). Returns the daemon summary after
    :meth:`ServeDaemon.finish`.
    """
    current_day: int | None = None
    for serial, day, reading in readings:
        if min_day is not None and day < min_day:
            continue
        if current_day is not None and day != current_day:
            daemon.pump()
            if speed:
                sleep((day - current_day) / speed)
            if throttle_seconds and (
                throttle_from_day is None or day >= throttle_from_day
            ):
                sleep(throttle_seconds)
        current_day = day
        daemon.submit(serial, day, reading)
    return daemon.finish(end_day)
