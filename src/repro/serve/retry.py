"""Retry, timeout and circuit-breaker policies for the serve loop.

A scoring stage in a long-running daemon fails for two distinct
reasons, and the response differs:

* *transient* — a slow tick, a worker hiccup. :func:`retry_call`
  re-attempts with jittered exponential backoff inside a per-stage
  wall-clock budget, counting every retry and timeout;
* *persistent* — a wedged model, a poisoned batch. The
  :class:`CircuitBreaker` counts consecutive exhausted stages and trips
  OPEN, at which point the daemon routes scoring to the reduced-feature
  degraded model instead of hammering the broken path. After a cooldown
  (measured in pump ticks, not wall-clock, so replayed time works) the
  breaker goes HALF_OPEN and one trial success closes it again.

All timing flows through injectable ``clock``/``sleep`` callables so
tests run the whole state machine in zero wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.obs import get_logger, inc_counter, set_gauge

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_NAMES",
    "CircuitBreaker",
    "RetryExhaustedError",
    "RetryPolicy",
    "retry_call",
]

_LOG = get_logger("repro.serve.retry")


class RetryExhaustedError(RuntimeError):
    """A stage failed every attempt or exceeded its timeout budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff with a per-stage wall-clock budget."""

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    """Each delay is scaled by ``1 ± uniform(jitter)`` so synchronized
    retries across stages don't stampede."""
    timeout: float | None = 30.0
    """Total seconds allowed across all attempts of one stage
    (``None`` disables the budget)."""
    seed: int = 0

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter:
            raw *= 1.0 + float(rng.uniform(-self.jitter, self.jitter))
        return max(raw, 0.0)


def retry_call(
    fn,
    *,
    policy: RetryPolicy | None = None,
    stage: str = "stage",
    sleep=time.sleep,
    clock=time.monotonic,
    rng: np.random.Generator | None = None,
):
    """Call ``fn()`` under ``policy``; raise :class:`RetryExhaustedError`
    when attempts or the timeout budget run out.

    Every re-attempt increments ``serve_stage_retries_total{stage=...}``;
    an abandoned budget increments ``serve_stage_timeouts_total``.
    """
    policy = policy or RetryPolicy()
    rng = rng if rng is not None else np.random.default_rng(policy.seed)
    start = clock()
    last_error: Exception | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if policy.timeout is not None and clock() - start > policy.timeout:
            inc_counter("serve_stage_timeouts_total")
            raise RetryExhaustedError(
                f"stage {stage!r} exceeded its {policy.timeout}s budget "
                f"after {attempt - 1} attempts"
            ) from last_error
        try:
            return fn()
        except Exception as error:  # noqa: BLE001 - retry boundary, re-raised below
            last_error = error
            if attempt == policy.max_attempts:
                break
            inc_counter("serve_stage_retries_total", stage=stage)
            _LOG.warning(
                "stage retry", stage=stage, attempt=attempt, error=repr(error)
            )
            sleep(policy.delay(attempt, rng))
    raise RetryExhaustedError(
        f"stage {stage!r} failed all {policy.max_attempts} attempts"
    ) from last_error


#: Breaker states, exported as the ``serve_breaker_state`` gauge value.
CLOSED, HALF_OPEN, OPEN = 0, 1, 2
STATE_NAMES = {CLOSED: "closed", HALF_OPEN: "half_open", OPEN: "open"}
_STATE_NAMES = STATE_NAMES


class CircuitBreaker:
    """Consecutive-failure breaker with tick-based cooldown.

    ``failure_threshold`` consecutive :meth:`record_failure` calls trip
    the breaker OPEN; :meth:`tick` (called once per pump tick) counts
    the cooldown down to HALF_OPEN, where one success closes it and one
    failure re-opens it.
    """

    def __init__(self, failure_threshold: int = 3, cooldown_ticks: int = 2):
        if failure_threshold < 1 or cooldown_ticks < 1:
            raise ValueError("failure_threshold and cooldown_ticks must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_ticks = cooldown_ticks
        self.state = CLOSED
        self._consecutive_failures = 0
        self._cooldown_remaining = 0
        set_gauge("serve_breaker_state", self.state)

    @property
    def is_open(self) -> bool:
        return self.state == OPEN

    def allow(self) -> bool:
        """Whether the protected stage may be attempted right now."""
        return self.state != OPEN

    def _transition(self, state: int) -> None:
        if state == self.state:
            return
        _LOG.info(
            "breaker transition",
            src=_STATE_NAMES[self.state],
            dst=_STATE_NAMES[state],
        )
        if state == OPEN:
            inc_counter("serve_breaker_opens_total")
            self._cooldown_remaining = self.cooldown_ticks
        self.state = state
        set_gauge("serve_breaker_state", self.state)

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state == HALF_OPEN:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._transition(OPEN)
        elif (
            self.state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._transition(OPEN)

    def force_open(self) -> None:
        """External fault (stale dimension) — trip regardless of count."""
        self._transition(OPEN)

    def tick(self) -> None:
        """Advance the cooldown clock by one pump tick."""
        if self.state == OPEN:
            self._cooldown_remaining -= 1
            if self._cooldown_remaining <= 0:
                self._transition(HALF_OPEN)

    # -- checkpointing --------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "cooldown_remaining": self._cooldown_remaining,
        }

    def restore(self, snapshot: dict) -> None:
        self.state = int(snapshot["state"])
        self._consecutive_failures = int(snapshot["consecutive_failures"])
        self._cooldown_remaining = int(snapshot["cooldown_remaining"])
        set_gauge("serve_breaker_state", self.state)
