"""Per-drive incremental feature state for the serve loop.

:class:`IncrementalScorer` wraps two
:class:`~repro.core.client.ClientPredictor` instances — the full-feature
model and the PR-1 reduced-dimension (default SF) fallback — and feeds
*every* admitted reading to both, so the daemon can switch routes at any
window boundary without a state rebuild: both predictors' ring buffers
and cumulative counters are always current. Staging a reading returns
the assembled model-input rows; the daemon batches them and calls
``predict_matrix`` once per batch instead of once per reading.

:class:`DimensionFreshness` watches for a feature dimension (W, B,
firmware) going *stale* — absent from ``stale_after`` consecutive
admitted readings, the signature of a collector losing a source — which
is one of the two triggers for degraded-mode routing (the other is the
scoring circuit breaker).
"""

from __future__ import annotations

import numpy as np

from repro.core.client import ClientPredictor
from repro.robustness.faults import DIMENSION_COLUMNS

__all__ = ["DimensionFreshness", "IncrementalScorer"]


class IncrementalScorer:
    """Dual-model streaming scorer with JSON-safe checkpoint state."""

    def __init__(self, full: ClientPredictor, reduced: ClientPredictor | None):
        self.full = full
        self.reduced = reduced

    @property
    def has_reduced(self) -> bool:
        return self.reduced is not None

    def warm(self, serial: int, day: int, reading: dict) -> None:
        """Commit a pre-horizon reading (state only, no scoring)."""
        self.stage(serial, day, reading)

    def stage(
        self, serial: int, day: int, reading: dict
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Commit one reading into both models; return their input rows.

        Raises whatever :meth:`ClientPredictor.ingest` raises (unseen
        firmware label, for one) — the full model validates *before*
        mutating, and the reduced model's inputs are a subset of the
        full model's, so a raise leaves both predictors untouched.
        """
        full_row = self.full.ingest(serial, day, reading)
        reduced_row = (
            self.reduced.ingest(serial, day, reading)
            if self.reduced is not None
            else None
        )
        return full_row, reduced_row

    def predict_full(self, X: np.ndarray) -> np.ndarray:
        return self.full.predict_matrix(X)

    def predict_reduced(self, X: np.ndarray) -> np.ndarray:
        if self.reduced is None:
            raise RuntimeError("no reduced-feature fallback model was fitted")
        return self.reduced.predict_matrix(X)

    # -- checkpointing --------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "full": self.full.snapshot(),
            "reduced": self.reduced.snapshot() if self.reduced else None,
        }

    def restore(self, snapshot: dict) -> None:
        self.full.restore(snapshot["full"])
        if self.reduced is not None and snapshot["reduced"] is not None:
            self.reduced.restore(snapshot["reduced"])


class DimensionFreshness:
    """Consecutive-absence staleness detector per feature dimension."""

    def __init__(self, stale_after: int = 256):
        if stale_after < 1:
            raise ValueError("stale_after must be >= 1")
        self.stale_after = stale_after
        self._streaks: dict[str, int] = {name: 0 for name in DIMENSION_COLUMNS}

    def observe(self, reading: dict) -> None:
        for name, columns in DIMENSION_COLUMNS.items():
            if any(column in reading for column in columns):
                self._streaks[name] = 0
            else:
                self._streaks[name] += 1

    def stale_dimensions(self) -> tuple[str, ...]:
        return tuple(
            name
            for name, streak in sorted(self._streaks.items())
            if streak >= self.stale_after
        )

    # -- checkpointing --------------------------------------------------
    def snapshot(self) -> dict:
        return {"streaks": dict(self._streaks)}

    def restore(self, snapshot: dict) -> None:
        self._streaks = {name: 0 for name in DIMENSION_COLUMNS}
        self._streaks.update(
            {k: int(v) for k, v in snapshot["streaks"].items()}
        )
