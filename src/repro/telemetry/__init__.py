"""Synthetic consumer-storage-system (CSS) telemetry substrate.

The paper's dataset — SMART logs, Windows event logs, blue-screen logs
and after-sales trouble tickets from ~2.3 million consumer SSDs — is
proprietary. This package generates a statistically faithful synthetic
equivalent: per-drive SMART trajectories driven by a bathtub lifetime
model, firmware-version failure-rate ladders, system-level event bursts
preceding failures, irregular user boot behaviour (data discontinuity),
and trouble tickets with a failure-to-repair lag. See DESIGN.md §2 for
the substitution rationale.
"""

from repro.telemetry.bsod import BSOD_CODES, BsodCatalog
from repro.telemetry.collection import UsageModel, UsagePattern
from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.drive import DriveHistory, DriveSimulator
from repro.telemetry.firmware import FirmwareLadder, FirmwareVersion
from repro.telemetry.fleet import FleetConfig, SSDFleet, VendorMix, simulate_fleet
from repro.telemetry.lifetime import BathtubLifetimeModel
from repro.telemetry.models import (
    DRIVE_MODELS,
    VENDORS,
    DriveModel,
    Vendor,
    drive_models_for_vendor,
)
from repro.telemetry.smart import SMART_ATTRIBUTES, SmartAttribute, SmartSimulator
from repro.telemetry.tickets import RASRF_CATEGORIES, TicketGenerator, TroubleTicket
from repro.telemetry.windows_events import WINDOWS_EVENTS, WindowsEventCatalog

__all__ = [
    "BSOD_CODES",
    "BathtubLifetimeModel",
    "BsodCatalog",
    "DRIVE_MODELS",
    "DriveHistory",
    "DriveModel",
    "DriveSimulator",
    "FirmwareLadder",
    "FirmwareVersion",
    "FleetConfig",
    "RASRF_CATEGORIES",
    "SMART_ATTRIBUTES",
    "SSDFleet",
    "SmartAttribute",
    "SmartSimulator",
    "TelemetryDataset",
    "TicketGenerator",
    "TroubleTicket",
    "UsageModel",
    "UsagePattern",
    "VENDORS",
    "Vendor",
    "VendorMix",
    "WINDOWS_EVENTS",
    "WindowsEventCatalog",
    "drive_models_for_vendor",
    "simulate_fleet",
]
