"""BlueScreenofDeath (B) stop-code catalog — Table IV of the paper.

Table IV prints 22 stop codes while Table V counts the B group as 23
features; we add 0x7B INACCESSIBLE_BOOT_DEVICE (the canonical
storage-failure stop code, almost certainly the entry lost to the
table's formatting) and document the substitution here. The paper's
feature selection highlights B_50 (PAGE_FAULT_IN_NONPAGED_AREA) and
B_7A (KERNEL_DATA_INPAGE_ERROR) — both directly storage-backed — so
those carry the strongest failure gains.
"""

from __future__ import annotations

from repro.telemetry.events import EventCatalog, EventType


def _bsod(code: str, name: str, background: float, gain: float) -> EventType:
    return EventType(
        event_id=f"B_{code[2:].upper()}",
        description=name,
        column=f"b{code[2:].lower()}_{name.lower()[:24]}",
        background_rate=background,
        failure_gain=gain,
    )


BSOD_CODES: tuple[EventType, ...] = (
    _bsod("0x23", "FAT_FILE_SYSTEM", 0.0004, 0.30),
    _bsod("0x24", "NTFS_FILE_SYSTEM", 0.0006, 0.55),
    _bsod("0x48", "CANCEL_STATE_IN_COMPLETED_IRP", 0.0003, 0.05),
    _bsod("0x50", "PAGE_FAULT_IN_NONPAGED_AREA", 0.0012, 1.2),
    _bsod("0x6B", "PROCESS1_INITIALIZATION_FAILED", 0.0003, 0.25),
    _bsod("0x77", "KERNEL_STACK_INPAGE_ERROR", 0.0004, 0.70),
    _bsod("0x7A", "KERNEL_DATA_INPAGE_ERROR", 0.0008, 1.1),
    _bsod("0x7B", "INACCESSIBLE_BOOT_DEVICE", 0.0003, 0.80),
    _bsod("0x80", "NMI_HARDWARE_FAILURE", 0.0004, 0.20),
    _bsod("0x9B", "UDFS_FILE_SYSTEM", 0.0002, 0.10),
    _bsod("0xC7", "TIMER_OR_DPC_INVALID", 0.0003, 0.02),
    _bsod("0xDA", "SYSTEM_PTE_MISUSE", 0.0002, 0.02),
    _bsod("0xE4", "WORKER_INVALID", 0.0003, 0.02),
    _bsod("0xFC", "ATTEMPTED_EXECUTE_OF_NOEXECUTE_MEMORY", 0.0005, 0.03),
    _bsod("0x10C", "FSRTL_EXTRA_CREATE_PARAMETER_VIOLATION", 0.0002, 0.05),
    _bsod("0x12C", "EXFAT_FILE_SYSTEM", 0.0003, 0.25),
    _bsod("0x135", "REGISTRY_FILTER_DRIVER_EXCEPTION", 0.0002, 0.05),
    _bsod("0x13B", "PASSIVE_INTERRUPT_ERROR", 0.0002, 0.02),
    _bsod("0x157", "KERNEL_THREAD_PRIORITY_FLOOR_VIOLATION", 0.0002, 0.01),
    _bsod("0x17E", "MICROCODE_REVISION_MISMATCH", 0.0003, 0.01),
    _bsod("0x189", "BAD_OBJECT_HEADER", 0.0002, 0.08),
    _bsod("0x1DB", "IPI_WATCHDOG_TIMEOUT", 0.0002, 0.03),
    _bsod("0xC00", "STATUS_CANNOT_LOAD", 0.0004, 0.30),
)


class BsodCatalog(EventCatalog):
    """Catalog of the Table-IV blue-screen stop codes."""

    def __init__(self):
        super().__init__(BSOD_CODES)


#: Convenience column names for the two codes the paper highlights.
B_50_COLUMN = BSOD_CODES[3].column
B_7A_COLUMN = BSOD_CODES[6].column
