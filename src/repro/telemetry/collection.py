"""Irregular user behaviour -> discontinuous telemetry collection.

Challenge (2) of the paper: consumer machines are not on 24/7, so logs
arrive only on days the user boots, leaving gaps of arbitrary length
(Fig 6 shows faulty drives with log timestamps like (0, 11-14)). We
model each drive's owner with a boot probability, a weekly rhythm, and
occasional long vacations, then emit usage hours for every powered day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class UsagePattern:
    """One user's boot behaviour.

    Parameters
    ----------
    boot_probability:
        Baseline daily probability the machine is powered on.
    weekend_factor:
        Multiplier on weekend days (office machines < 1, home > 1).
    vacation_rate:
        Expected number of multi-day off periods per 365 days.
    mean_vacation_days:
        Mean length of an off period.
    mean_daily_hours:
        Mean hours of use on a powered day.
    """

    boot_probability: float
    weekend_factor: float
    vacation_rate: float
    mean_vacation_days: float
    mean_daily_hours: float

    def __post_init__(self) -> None:
        if not 0 < self.boot_probability <= 1:
            raise ValueError("boot_probability must be in (0, 1]")
        if self.mean_daily_hours <= 0 or self.mean_daily_hours > 24:
            raise ValueError("mean_daily_hours must be in (0, 24]")

    def sample_observed_days(
        self, horizon_days: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(observed_days, usage_hours)`` over the horizon.

        Day 0 (deployment day) is always observed — the machine was
        powered on when the drive entered service.
        """
        if horizon_days < 1:
            raise ValueError("horizon_days must be positive")
        days = np.arange(horizon_days)
        probability = np.full(horizon_days, self.boot_probability)
        weekend = (days % 7) >= 5
        probability[weekend] = np.clip(
            probability[weekend] * self.weekend_factor, 0.0, 1.0
        )

        # Vacations: contiguous stretches with the machine off.
        n_vacations = rng.poisson(self.vacation_rate * horizon_days / 365.0)
        for _ in range(n_vacations):
            start = int(rng.integers(0, horizon_days))
            length = max(2, int(rng.exponential(self.mean_vacation_days)))
            probability[start : start + length] = 0.0

        powered = rng.random(horizon_days) < probability
        powered[0] = True
        observed_days = days[powered]
        hours = np.clip(
            rng.gamma(3.0, self.mean_daily_hours / 3.0, size=observed_days.size),
            0.25,
            24.0,
        )
        return observed_days, hours


class UsageModel:
    """Population distribution over :class:`UsagePattern`.

    Heterogeneous by design: heavy daily users, sporadic users, and
    office machines that sleep on weekends all coexist in CSS.
    """

    def __init__(
        self,
        mean_boot_probability: float = 0.62,
        vacation_rate: float = 2.0,
        mean_vacation_days: float = 9.0,
    ):
        if not 0 < mean_boot_probability <= 1:
            raise ValueError("mean_boot_probability must be in (0, 1]")
        self.mean_boot_probability = mean_boot_probability
        self.vacation_rate = vacation_rate
        self.mean_vacation_days = mean_vacation_days

    def sample_pattern(self, rng: np.random.Generator) -> UsagePattern:
        """Draw one user's pattern."""
        # Beta keeps probabilities in (0, 1) with the requested mean.
        concentration = 6.0
        alpha = self.mean_boot_probability * concentration
        beta = (1.0 - self.mean_boot_probability) * concentration
        boot_probability = float(np.clip(rng.beta(alpha, beta), 0.05, 1.0))
        weekend_factor = float(rng.uniform(0.4, 1.4))
        mean_daily_hours = float(rng.uniform(2.0, 12.0))
        return UsagePattern(
            boot_probability=boot_probability,
            weekend_factor=weekend_factor,
            vacation_rate=self.vacation_rate,
            mean_vacation_days=self.mean_vacation_days,
            mean_daily_hours=mean_daily_hours,
        )
