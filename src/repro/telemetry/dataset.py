"""Columnar telemetry dataset assembled from drive histories.

Holds the paper's log schema — ``S/N, model, timestamp, interface,
capacity, S{1..16}, F, W{1..9}, B{1..23}`` — as a dict of parallel numpy
arrays sorted by (serial, day), plus the per-drive metadata table and
the RaSRF ticket list. Rows are per *observed* day, so the discontinuity
of consumer telemetry is directly visible in the ``day`` column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.bsod import BSOD_CODES
from repro.telemetry.drive import DriveHistory
from repro.telemetry.smart import SMART_COLUMNS
from repro.telemetry.tickets import TroubleTicket
from repro.telemetry.windows_events import WINDOWS_EVENTS

W_COLUMNS: tuple[str, ...] = tuple(event.column for event in WINDOWS_EVENTS)
B_COLUMNS: tuple[str, ...] = tuple(event.column for event in BSOD_CODES)


@dataclass
class DriveMeta:
    """Per-drive metadata (the dataset's drive dimension table)."""

    serial: int
    vendor: str
    model_id: str
    capacity_gb: int
    firmware: str
    archetype: str
    failure_day: int | None

    @property
    def failed(self) -> bool:
        return self.failure_day is not None


class TelemetryDataset:
    """Columnar store of daily telemetry records.

    Attributes
    ----------
    columns:
        Dict of column name -> 1-D array, all of equal length, sorted by
        ``(serial, day)``. Numeric telemetry columns are float64;
        ``serial`` and ``day`` are int64; ``firmware`` / ``vendor`` /
        ``model`` are object arrays of strings.
    drives:
        serial -> :class:`DriveMeta`.
    tickets:
        RaSRF trouble tickets of the failed drives.
    """

    def __init__(
        self,
        columns: dict[str, np.ndarray],
        drives: dict[int, DriveMeta],
        tickets: list[TroubleTicket],
    ):
        lengths = {name: values.shape[0] for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        self.columns = columns
        self.drives = drives
        self.tickets = tickets
        self._serial_order: dict[int, slice] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_drives(
        cls, histories: list[DriveHistory], tickets: list[TroubleTicket]
    ) -> "TelemetryDataset":
        """Assemble the columnar store from simulated histories."""
        if not histories:
            raise ValueError("cannot build a dataset from zero drives")
        serials, days, firmware, vendors, models = [], [], [], [], []
        telemetry: dict[str, list[np.ndarray]] = {
            column: [] for column in (*SMART_COLUMNS, *W_COLUMNS, *B_COLUMNS)
        }
        metas: dict[int, DriveMeta] = {}
        for drive in sorted(histories, key=lambda d: d.serial):
            n = drive.n_records
            serials.append(np.full(n, drive.serial, dtype=np.int64))
            days.append(drive.observed_days.astype(np.int64))
            firmware.append(np.full(n, drive.firmware.name, dtype=object))
            vendors.append(np.full(n, drive.model.vendor, dtype=object))
            models.append(np.full(n, drive.model.model_id, dtype=object))
            for column in SMART_COLUMNS:
                telemetry[column].append(drive.smart[column])
            for column in W_COLUMNS:
                telemetry[column].append(drive.w_daily[column])
            for column in B_COLUMNS:
                telemetry[column].append(drive.b_daily[column])
            metas[drive.serial] = DriveMeta(
                serial=drive.serial,
                vendor=drive.model.vendor,
                model_id=drive.model.model_id,
                capacity_gb=drive.model.capacity_gb,
                firmware=drive.firmware.name,
                archetype=drive.archetype,
                failure_day=drive.failure_day,
            )

        columns: dict[str, np.ndarray] = {
            "serial": np.concatenate(serials),
            "day": np.concatenate(days),
            "firmware": np.concatenate(firmware),
            "vendor": np.concatenate(vendors),
            "model": np.concatenate(models),
        }
        for column, chunks in telemetry.items():
            columns[column] = np.concatenate(chunks).astype(np.float64)
        return cls(columns, metas, tickets)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return int(self.columns["serial"].shape[0])

    @property
    def n_drives(self) -> int:
        return len(self.drives)

    @property
    def serials(self) -> np.ndarray:
        return np.fromiter(self.drives.keys(), dtype=np.int64, count=len(self.drives))

    def failed_serials(self) -> np.ndarray:
        return np.array(
            [serial for serial, meta in self.drives.items() if meta.failed],
            dtype=np.int64,
        )

    def healthy_serials(self) -> np.ndarray:
        return np.array(
            [serial for serial, meta in self.drives.items() if not meta.failed],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def _row_slices(self) -> dict[int, slice]:
        """serial -> contiguous row slice (rows are sorted by serial)."""
        if self._serial_order is None:
            serial_column = self.columns["serial"]
            boundaries = np.flatnonzero(np.diff(serial_column)) + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [serial_column.size]])
            self._serial_order = {
                int(serial_column[start]): slice(int(start), int(end))
                for start, end in zip(starts, ends)
            }
        return self._serial_order

    def drive_rows(self, serial: int) -> dict[str, np.ndarray]:
        """All telemetry rows of one drive, as column views."""
        row_slice = self._row_slices().get(int(serial))
        if row_slice is None:
            raise KeyError(f"unknown serial {serial}")
        return {name: values[row_slice] for name, values in self.columns.items()}

    def select_rows(self, mask: np.ndarray) -> "TelemetryDataset":
        """Row-filtered copy (drive metadata restricted to present serials)."""
        mask = np.asarray(mask)
        if mask.shape[0] != self.n_records:
            raise ValueError("mask length mismatch")
        columns = {name: values[mask] for name, values in self.columns.items()}
        present = set(np.unique(columns["serial"]).tolist())
        drives = {s: m for s, m in self.drives.items() if s in present}
        tickets = [t for t in self.tickets if t.serial in present]
        return TelemetryDataset(columns, drives, tickets)

    def filter_vendor(self, vendor: str) -> "TelemetryDataset":
        """Restrict to one vendor's drives."""
        return self.select_rows(self.columns["vendor"] == vendor)

    def filter_days(self, start: int, end: int) -> "TelemetryDataset":
        """Restrict to records with ``start <= day < end``."""
        day = self.columns["day"]
        return self.select_rows((day >= start) & (day < end))

    def relabel_serials(self, offset: int) -> "TelemetryDataset":
        """Copy with every serial shifted by ``offset`` (for merging)."""
        if offset == 0:
            return self
        columns = dict(self.columns)
        columns["serial"] = self.columns["serial"] + offset
        drives = {}
        for serial, meta in self.drives.items():
            drives[serial + offset] = DriveMeta(
                serial=meta.serial + offset,
                vendor=meta.vendor,
                model_id=meta.model_id,
                capacity_gb=meta.capacity_gb,
                firmware=meta.firmware,
                archetype=meta.archetype,
                failure_day=meta.failure_day,
            )
        tickets = [
            type(t)(
                serial=t.serial + offset,
                initial_maintenance_time=t.initial_maintenance_time,
                failure_level=t.failure_level,
                category=t.category,
                cause=t.cause,
            )
            for t in self.tickets
        ]
        return TelemetryDataset(columns, drives, tickets)

    @staticmethod
    def concat(datasets: list["TelemetryDataset"]) -> "TelemetryDataset":
        """Merge fleets into one dataset (serials must not collide).

        Use :meth:`relabel_serials` first when merging independently
        simulated fleets, whose serials both start at 1.
        """
        if not datasets:
            raise ValueError("nothing to concatenate")
        all_serials: set[int] = set()
        for dataset in datasets:
            serials = set(int(s) for s in dataset.serials)
            if all_serials & serials:
                raise ValueError(
                    "serial collision between fleets; use relabel_serials()"
                )
            all_serials |= serials
        names = set(datasets[0].columns)
        for dataset in datasets[1:]:
            if set(dataset.columns) != names:
                raise ValueError("datasets have different column schemas")
        columns = {
            name: np.concatenate([d.columns[name] for d in datasets])
            for name in datasets[0].columns
        }
        order = np.lexsort((columns["day"], columns["serial"]))
        columns = {name: values[order] for name, values in columns.items()}
        drives = {s: m for d in datasets for s, m in d.drives.items()}
        tickets = [t for d in datasets for t in d.tickets]
        return TelemetryDataset(columns, drives, tickets)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-vendor totals and replacement rates (the Table-VI rows)."""
        result: dict[str, dict[str, float]] = {}
        for meta in self.drives.values():
            entry = result.setdefault(
                meta.vendor, {"total": 0, "failures": 0}
            )
            entry["total"] += 1
            entry["failures"] += int(meta.failed)
        for entry in result.values():
            entry["replacement_rate"] = (
                entry["failures"] / entry["total"] if entry["total"] else float("nan")
            )
        return result
