"""Single-drive simulation: compose lifetime, usage, SMART and events.

A drive's story: it enters service on day 0 with a firmware version and
an owner (usage pattern); it may draw a failure day from the bathtub
model (scaled by its firmware's hazard multiplier); if failing, a
degradation ramp starts 1.5-4 weeks before the failure and bends the
SMART counters and W/B event rates according to the failure archetype.
Logging stops at the failure day — a dead drive reports nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.bsod import BsodCatalog
from repro.telemetry.collection import UsagePattern
from repro.telemetry.firmware import FirmwareVersion
from repro.telemetry.models import DriveModel
from repro.telemetry.smart import SmartSimulator
from repro.telemetry.windows_events import WindowsEventCatalog

HEALTHY = "healthy"
DRIVE_LEVEL = "drive_level"
SYSTEM_LEVEL = "system_level"
ARCHETYPES = (HEALTHY, DRIVE_LEVEL, SYSTEM_LEVEL)


@dataclass
class DriveHistory:
    """Everything one simulated drive produced over the study."""

    serial: int
    model: DriveModel
    firmware: FirmwareVersion
    archetype: str
    failure_day: int | None
    observed_days: np.ndarray
    usage_hours: np.ndarray
    smart: dict[str, np.ndarray]
    w_daily: dict[str, np.ndarray]
    b_daily: dict[str, np.ndarray]
    degradation: np.ndarray = field(repr=False, default=None)

    @property
    def failed(self) -> bool:
        return self.failure_day is not None

    @property
    def n_records(self) -> int:
        return int(self.observed_days.size)

    def last_observed_day(self) -> int:
        return int(self.observed_days[-1])


class DriveSimulator:
    """Simulates complete per-drive histories.

    Parameters
    ----------
    horizon_days:
        Study length in days.
    degradation_min_days / degradation_max_days:
        Range of the pre-failure ramp length (onset to failure).
    seed-free by design — all randomness flows through the caller's RNG
    so a fleet simulation is reproducible from a single seed.
    """

    def __init__(
        self,
        horizon_days: int = 540,
        degradation_min_days: int = 12,
        degradation_max_days: int = 30,
    ):
        if degradation_min_days < 1 or degradation_max_days < degradation_min_days:
            raise ValueError("invalid degradation day range")
        self.horizon_days = horizon_days
        self.degradation_min_days = degradation_min_days
        self.degradation_max_days = degradation_max_days
        self._w_catalog = WindowsEventCatalog()
        self._b_catalog = BsodCatalog()

    def _archetype_gains(
        self, archetype: str, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Return ``(smart_gain, event_gain)`` for a failure archetype."""
        if archetype == HEALTHY:
            return 0.0, 0.0
        if archetype == DRIVE_LEVEL:
            # Strong SMART signature, moderate system-level fallout.
            return float(rng.normal(1.0, 0.12)), float(rng.normal(0.45, 0.1))
        if archetype == SYSTEM_LEVEL:
            # SMART stays deceptively quiet; W/B streams carry the signal.
            # A slice of system-level failures is nearly SMART-silent
            # (controller/FTL bugs) — the cases only W/B can catch. The
            # fraction is tuned so a SMART-only model loses ~4-10 TPR
            # points to SFWB, the gap the paper reports.
            if rng.random() < 0.15:
                return float(abs(rng.normal(0.03, 0.02))), float(rng.normal(1.5, 0.2))
            return float(rng.normal(0.20, 0.05)), float(rng.normal(1.35, 0.2))
        raise ValueError(f"unknown archetype {archetype!r}")

    def simulate(
        self,
        serial: int,
        model: DriveModel,
        firmware: FirmwareVersion,
        pattern: UsagePattern,
        failure_day: int | None,
        archetype: str,
        rng: np.random.Generator,
    ) -> DriveHistory:
        """Generate one drive's full history."""
        if archetype not in ARCHETYPES:
            raise ValueError(f"unknown archetype {archetype!r}")
        if (failure_day is None) != (archetype == HEALTHY):
            raise ValueError("failure_day must be set iff the archetype is a failure")
        if failure_day is not None and not 0 < failure_day <= self.horizon_days:
            raise ValueError(f"failure_day {failure_day} outside horizon")

        observed_days, usage_hours = pattern.sample_observed_days(
            self.horizon_days, rng
        )
        if failure_day is not None:
            # The drive logs up to and including its failure day; make
            # sure the failure day itself is observed (the machine was on
            # when it died).
            keep = observed_days <= failure_day
            observed_days = observed_days[keep]
            usage_hours = usage_hours[keep]
            if observed_days.size == 0 or observed_days[-1] != failure_day:
                observed_days = np.append(observed_days, failure_day)
                usage_hours = np.append(usage_hours, rng.uniform(0.5, 6.0))

        degradation = np.zeros(observed_days.size)
        if failure_day is not None:
            ramp_days = int(
                rng.integers(self.degradation_min_days, self.degradation_max_days + 1)
            )
            onset = failure_day - ramp_days
            progress = (observed_days - onset) / ramp_days
            degradation = np.clip(progress, 0.0, 1.0) ** 1.5

        smart_gain, event_gain = self._archetype_gains(archetype, rng)
        smart_simulator = SmartSimulator(
            capacity_gb=model.capacity_gb,
            smart_gain=max(0.0, smart_gain),
            initial_percentage_used=float(rng.uniform(0, 2)),
        )
        smart = smart_simulator.simulate(observed_days, usage_hours, degradation, rng)
        event_gain = max(0.0, event_gain)
        w_daily = self._w_catalog.sample_daily_counts(degradation, event_gain, rng)
        b_daily = self._b_catalog.sample_daily_counts(degradation, event_gain, rng)

        return DriveHistory(
            serial=serial,
            model=model,
            firmware=firmware,
            archetype=archetype,
            failure_day=failure_day,
            observed_days=observed_days,
            usage_hours=usage_hours,
            smart=smart,
            w_daily=w_daily,
            b_daily=b_daily,
            degradation=degradation,
        )
