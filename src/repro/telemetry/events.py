"""Shared machinery for system-level log event streams (W and B).

Observations #3/#4: Windows events and blue-screen stop codes occur
rarely on healthy machines but burst in the weeks before an SSD failure
(Figs 4-5 plot the diverging cumulative counts). Each event type has a
healthy background rate and a degradation response gain; system-level
failure archetypes amplify the response (their early signal lives here
rather than in SMART).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EventType:
    """One loggable event (a Windows event ID or a BSOD stop code)."""

    event_id: str
    description: str
    column: str
    background_rate: float
    """Expected occurrences per powered-on day on a healthy machine."""
    failure_gain: float
    """Peak extra daily rate as the degradation ramp approaches 1.
    Zero for event types unrelated to storage failures (noise that the
    feature-selection stage should learn to discard)."""


class EventCatalog:
    """A family of event types with a shared daily sampling procedure."""

    def __init__(self, events: tuple[EventType, ...]):
        if not events:
            raise ValueError("catalog must contain at least one event type")
        self.events = events
        self.columns = tuple(event.column for event in events)

    def __len__(self) -> int:
        return len(self.events)

    def by_id(self, event_id: str) -> EventType:
        for event in self.events:
            if event.event_id == event_id:
                return event
        raise KeyError(event_id)

    def sample_daily_counts(
        self,
        degradation: np.ndarray,
        event_gain: float,
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        """Sample per-day counts for every event type.

        Parameters
        ----------
        degradation:
            Ramp level in [0, 1] on each observed day (0 for healthy).
        event_gain:
            Archetype multiplier: ~1.0-1.6 for system-level failures,
            ~0.3 for drive-level failures, 0.0 for healthy drives.
        """
        degradation = np.asarray(degradation, dtype=float)
        n = degradation.size
        counts: dict[str, np.ndarray] = {}
        for event in self.events:
            rate = event.background_rate + event_gain * event.failure_gain * degradation**2
            counts[event.column] = rng.poisson(rate, size=n).astype(float)
        return counts

    def cumulative(self, daily_counts: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Accumulate daily counts — the form MFPA feeds to models
        (§III-C(1): daily counts are too sparse to show trends)."""
        return {column: np.cumsum(values) for column, values in daily_counts.items()}
