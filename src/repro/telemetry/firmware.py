"""Firmware-version ladders and their failure-rate structure.

Observation #2 of the paper: every vendor ships a sequence of firmware
versions, the *earlier* the version the *higher* its failure rate
(Fig 3), and most drives never update. We model each vendor's ladder as
``i_F_1 … i_F_k`` (the paper's naming) with a hazard multiplier that
decays geometrically with version index, and an assignment distribution
skewed toward older versions for vendor I (whose field population was
dominated by buggy early firmware, RR 0.68%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.models import VENDORS


@dataclass(frozen=True)
class FirmwareVersion:
    """One firmware release of one vendor."""

    vendor: str
    index: int
    """1-based release order; 1 is the oldest."""
    hazard_multiplier: float
    """Scales the drive's failure hazard; > 1 for buggy early releases."""

    @property
    def name(self) -> str:
        """The paper's naming scheme, e.g. ``I_F_2``."""
        return f"{self.vendor}_F_{self.index}"


class FirmwareLadder:
    """The firmware release sequence of one vendor.

    Parameters
    ----------
    vendor:
        Vendor key ("I".."IV"); sets the ladder length from the catalog.
    first_multiplier:
        Hazard multiplier of the oldest release.
    decay:
        Geometric decay per release; the newest release approaches 1.0
        (baseline hazard) from above.
    """

    def __init__(self, vendor: str, first_multiplier: float = 3.0, decay: float = 0.55):
        if vendor not in VENDORS:
            raise ValueError(f"unknown vendor {vendor!r}")
        if first_multiplier < 1.0:
            raise ValueError("first_multiplier must be >= 1")
        if not 0 < decay < 1:
            raise ValueError("decay must be in (0, 1)")
        self.vendor = vendor
        n_versions = VENDORS[vendor].n_firmware_versions
        self.versions = tuple(
            FirmwareVersion(
                vendor=vendor,
                index=i + 1,
                hazard_multiplier=1.0 + (first_multiplier - 1.0) * decay**i,
            )
            for i in range(n_versions)
        )

    def __len__(self) -> int:
        return len(self.versions)

    def by_name(self, name: str) -> FirmwareVersion:
        for version in self.versions:
            if version.name == name:
                return version
        raise KeyError(name)

    def assignment_probabilities(self) -> np.ndarray:
        """Field population share per version.

        Older versions dominate because the paper observes most drives
        never update (management software does not push notifications).
        """
        weights = np.array([0.70**i for i in range(len(self.versions))])
        return weights / weights.sum()

    def sample(self, n: int, rng: np.random.Generator) -> list[FirmwareVersion]:
        """Draw firmware assignments for ``n`` drives."""
        probabilities = self.assignment_probabilities()
        indices = rng.choice(len(self.versions), size=n, p=probabilities)
        return [self.versions[i] for i in indices]


def default_ladders() -> dict[str, FirmwareLadder]:
    """One ladder per vendor with paper-like severity.

    Vendor I's early firmware is markedly worse (the paper singles out
    I_F_1 and I_F_2), driving its 10x higher replacement rate.
    """
    return {
        "I": FirmwareLadder("I", first_multiplier=4.0, decay=0.55),
        "II": FirmwareLadder("II", first_multiplier=2.0, decay=0.5),
        "III": FirmwareLadder("III", first_multiplier=1.8, decay=0.5),
        "IV": FirmwareLadder("IV", first_multiplier=2.2, decay=0.5),
    }
