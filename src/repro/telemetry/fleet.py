"""Fleet-level simulation: assemble a full synthetic study population.

``simulate_fleet`` is the entry point the examples, tests and benchmarks
all use. A :class:`FleetConfig` pins the population size, per-vendor
mix, study horizon and — crucially for laptop-scale experiments — a
``failure_boost`` that multiplies every vendor's replacement rate while
preserving the paper's *relative* vendor ordering (I ≫ IV > II > III).
The paper trains on hundreds-to-thousands of failures out of millions of
drives; boosting lets a few-thousand-drive synthetic fleet yield enough
positives for stable metrics without changing which signals exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.collection import UsageModel
from repro.telemetry.drive import (
    DRIVE_LEVEL,
    SYSTEM_LEVEL,
    DriveHistory,
    DriveSimulator,
)
from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.firmware import FirmwareLadder, default_ladders
from repro.telemetry.lifetime import BathtubLifetimeModel
from repro.telemetry.models import VENDORS, drive_models_for_vendor
from repro.telemetry.tickets import TicketGenerator


@dataclass(frozen=True)
class VendorMix:
    """How many drives of each vendor to simulate."""

    counts: dict[str, int]

    def __post_init__(self) -> None:
        for vendor, count in self.counts.items():
            if vendor not in VENDORS:
                raise ValueError(f"unknown vendor {vendor!r}")
            if count < 0:
                raise ValueError(f"negative count for vendor {vendor}")
        if sum(self.counts.values()) == 0:
            raise ValueError("fleet must contain at least one drive")

    @classmethod
    def proportional(cls, n_drives: int) -> "VendorMix":
        """Table-VI fleet shares scaled to ``n_drives``."""
        counts = {
            vendor: max(1, int(round(info.fleet_share * n_drives)))
            for vendor, info in VENDORS.items()
        }
        return cls(counts)

    @classmethod
    def uniform(cls, n_per_vendor: int) -> "VendorMix":
        """Same count for every vendor (model-training experiments)."""
        return cls({vendor: n_per_vendor for vendor in VENDORS})

    @property
    def total(self) -> int:
        return sum(self.counts.values())


@dataclass
class FleetConfig:
    """Reproducible fleet-simulation configuration.

    Parameters
    ----------
    mix:
        Per-vendor drive counts.
    horizon_days:
        Study window (the paper spans ~2 years; default 540 days).
    failure_boost:
        Multiplier on every vendor's replacement rate. 1.0 reproduces
        the paper's (tiny) rates; model experiments use 10-40 so a small
        fleet still yields hundreds of failures.
    seed:
        Master seed; the entire fleet is a pure function of the config.
    """

    mix: VendorMix = field(default_factory=lambda: VendorMix.proportional(2000))
    horizon_days: int = 540
    failure_boost: float = 1.0
    mean_boot_probability: float = 0.62
    vacation_rate: float = 2.0
    """Expected multi-day off periods per drive-year; 0 approximates an
    always-on (enterprise-like) duty cycle."""
    mean_repair_lag_days: float = 5.0
    persona_weights: dict[str, float] | None = None
    """When set, users are drawn from the named personas
    (:mod:`repro.telemetry.workloads`) instead of the generic
    :class:`UsageModel`; ``mean_boot_probability`` is then ignored."""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon_days < 30:
            raise ValueError("horizon_days must be at least 30")
        if self.failure_boost <= 0:
            raise ValueError("failure_boost must be positive")


def _simulate_vendor(
    vendor: str,
    n_drives: int,
    config: FleetConfig,
    ladder: FirmwareLadder,
    usage_model: UsageModel,
    drive_simulator: DriveSimulator,
    serial_start: int,
    rng: np.random.Generator,
) -> list[DriveHistory]:
    """Simulate one vendor's sub-fleet."""
    info = VENDORS[vendor]
    models = drive_models_for_vendor(vendor)
    target_probability = min(0.95, info.replacement_rate * config.failure_boost)

    lifetime = BathtubLifetimeModel(
        horizon_days=config.horizon_days,
        target_failure_probability=target_probability,
    )
    firmware_assignments = ladder.sample(n_drives, rng)
    model_indices = rng.integers(0, len(models), size=n_drives)

    # Normalize by the population-average firmware multiplier so the
    # vendor's overall replacement rate stays on target while earlier
    # firmware versions still fail relatively more often (Fig 3).
    probabilities = ladder.assignment_probabilities()
    mean_multiplier = float(
        np.sum(probabilities * [v.hazard_multiplier for v in ladder.versions])
    )

    histories: list[DriveHistory] = []
    for i in range(n_drives):
        firmware = firmware_assignments[i]
        failure_day = lifetime.sample_failure_day(
            rng, firmware.hazard_multiplier / mean_multiplier
        )
        if failure_day is None:
            archetype = "healthy"
        else:
            archetype = (
                DRIVE_LEVEL
                if rng.random() < info.drive_level_share
                else SYSTEM_LEVEL
            )
        histories.append(
            drive_simulator.simulate(
                serial=serial_start + i,
                model=models[model_indices[i]],
                firmware=firmware,
                pattern=usage_model.sample_pattern(rng),
                failure_day=failure_day,
                archetype=archetype,
                rng=rng,
            )
        )
    return histories


def simulate_fleet(config: FleetConfig) -> TelemetryDataset:
    """Simulate the configured fleet and return the assembled dataset."""
    rng = np.random.default_rng(config.seed)
    ladders = default_ladders()
    if config.persona_weights is not None:
        from repro.telemetry.workloads import PersonaUsageModel

        usage_model = PersonaUsageModel(config.persona_weights)
    else:
        usage_model = UsageModel(
            mean_boot_probability=config.mean_boot_probability,
            vacation_rate=config.vacation_rate,
        )
    drive_simulator = DriveSimulator(horizon_days=config.horizon_days)

    histories: list[DriveHistory] = []
    serial_start = 1
    for vendor in sorted(config.mix.counts):
        n_drives = config.mix.counts[vendor]
        if n_drives == 0:
            continue
        histories.extend(
            _simulate_vendor(
                vendor,
                n_drives,
                config,
                ladders[vendor],
                usage_model,
                drive_simulator,
                serial_start,
                rng,
            )
        )
        serial_start += n_drives

    tickets = TicketGenerator(
        mean_repair_lag_days=config.mean_repair_lag_days
    ).generate_all(histories, rng)
    return TelemetryDataset.from_drives(histories, tickets)
