"""Fleet-level simulation: assemble a full synthetic study population.

``simulate_fleet`` is the entry point the examples, tests and benchmarks
all use. A :class:`FleetConfig` pins the population size, per-vendor
mix, study horizon and — crucially for laptop-scale experiments — a
``failure_boost`` that multiplies every vendor's replacement rate while
preserving the paper's *relative* vendor ordering (I ≫ IV > II > III).
The paper trains on hundreds-to-thousands of failures out of millions of
drives; boosting lets a few-thousand-drive synthetic fleet yield enough
positives for stable metrics without changing which signals exist.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.obs import inc_counter, observe_histogram, trace_span
from repro.telemetry.collection import UsageModel
from repro.telemetry.drive import (
    DRIVE_LEVEL,
    SYSTEM_LEVEL,
    DriveHistory,
    DriveSimulator,
)
from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.firmware import FirmwareLadder, default_ladders
from repro.telemetry.lifetime import BathtubLifetimeModel
from repro.telemetry.models import VENDORS, drive_models_for_vendor
from repro.telemetry.tickets import TicketGenerator, TroubleTicket


@dataclass(frozen=True)
class VendorMix:
    """How many drives of each vendor to simulate."""

    counts: dict[str, int]

    def __post_init__(self) -> None:
        for vendor, count in self.counts.items():
            if vendor not in VENDORS:
                raise ValueError(f"unknown vendor {vendor!r}")
            if count < 0:
                raise ValueError(f"negative count for vendor {vendor}")
        if sum(self.counts.values()) == 0:
            raise ValueError("fleet must contain at least one drive")

    @classmethod
    def proportional(cls, n_drives: int) -> "VendorMix":
        """Table-VI fleet shares scaled to ``n_drives``."""
        counts = {
            vendor: max(1, int(round(info.fleet_share * n_drives)))
            for vendor, info in VENDORS.items()
        }
        return cls(counts)

    @classmethod
    def uniform(cls, n_per_vendor: int) -> "VendorMix":
        """Same count for every vendor (model-training experiments)."""
        return cls({vendor: n_per_vendor for vendor in VENDORS})

    @property
    def total(self) -> int:
        return sum(self.counts.values())


@dataclass
class FleetConfig:
    """Reproducible fleet-simulation configuration.

    Parameters
    ----------
    mix:
        Per-vendor drive counts.
    horizon_days:
        Study window (the paper spans ~2 years; default 540 days).
    failure_boost:
        Multiplier on every vendor's replacement rate. 1.0 reproduces
        the paper's (tiny) rates; model experiments use 10-40 so a small
        fleet still yields hundreds of failures.
    seed:
        Master seed; the entire fleet is a pure function of the config.
    """

    mix: VendorMix = field(default_factory=lambda: VendorMix.proportional(2000))
    horizon_days: int = 540
    failure_boost: float = 1.0
    mean_boot_probability: float = 0.62
    vacation_rate: float = 2.0
    """Expected multi-day off periods per drive-year; 0 approximates an
    always-on (enterprise-like) duty cycle."""
    mean_repair_lag_days: float = 5.0
    persona_weights: dict[str, float] | None = None
    """When set, users are drawn from the named personas
    (:mod:`repro.telemetry.workloads`) instead of the generic
    :class:`UsageModel`; ``mean_boot_probability`` is then ignored."""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon_days < 30:
            raise ValueError("horizon_days must be at least 30")
        if self.failure_boost <= 0:
            raise ValueError("failure_boost must be positive")


def _simulate_vendor(
    vendor: str,
    n_drives: int,
    config: FleetConfig,
    ladder: FirmwareLadder,
    usage_model: UsageModel,
    drive_simulator: DriveSimulator,
    serial_start: int,
    rng: np.random.Generator,
) -> list[DriveHistory]:
    """Simulate one vendor's sub-fleet."""
    info = VENDORS[vendor]
    models = drive_models_for_vendor(vendor)
    target_probability = min(0.95, info.replacement_rate * config.failure_boost)

    lifetime = BathtubLifetimeModel(
        horizon_days=config.horizon_days,
        target_failure_probability=target_probability,
    )
    firmware_assignments = ladder.sample(n_drives, rng)
    model_indices = rng.integers(0, len(models), size=n_drives)

    # Normalize by the population-average firmware multiplier so the
    # vendor's overall replacement rate stays on target while earlier
    # firmware versions still fail relatively more often (Fig 3).
    probabilities = ladder.assignment_probabilities()
    mean_multiplier = float(
        np.sum(probabilities * [v.hazard_multiplier for v in ladder.versions])
    )

    histories: list[DriveHistory] = []
    for i in range(n_drives):
        firmware = firmware_assignments[i]
        failure_day = lifetime.sample_failure_day(
            rng, firmware.hazard_multiplier / mean_multiplier
        )
        if failure_day is None:
            archetype = "healthy"
        else:
            archetype = (
                DRIVE_LEVEL
                if rng.random() < info.drive_level_share
                else SYSTEM_LEVEL
            )
        histories.append(
            drive_simulator.simulate(
                serial=serial_start + i,
                model=models[model_indices[i]],
                firmware=firmware,
                pattern=usage_model.sample_pattern(rng),
                failure_day=failure_day,
                archetype=archetype,
                rng=rng,
            )
        )
    return histories


def simulate_fleet(config: FleetConfig) -> TelemetryDataset:
    """Simulate the configured fleet and return the assembled dataset."""
    rng = np.random.default_rng(config.seed)
    ladders = default_ladders()
    if config.persona_weights is not None:
        from repro.telemetry.workloads import PersonaUsageModel

        usage_model = PersonaUsageModel(config.persona_weights)
    else:
        usage_model = UsageModel(
            mean_boot_probability=config.mean_boot_probability,
            vacation_rate=config.vacation_rate,
        )
    drive_simulator = DriveSimulator(horizon_days=config.horizon_days)

    histories: list[DriveHistory] = []
    serial_start = 1
    for vendor in sorted(config.mix.counts):
        n_drives = config.mix.counts[vendor]
        if n_drives == 0:
            continue
        histories.extend(
            _simulate_vendor(
                vendor,
                n_drives,
                config,
                ladders[vendor],
                usage_model,
                drive_simulator,
                serial_start,
                rng,
            )
        )
        serial_start += n_drives

    tickets = TicketGenerator(
        mean_repair_lag_days=config.mean_repair_lag_days
    ).generate_all(histories, rng)
    return TelemetryDataset.from_drives(histories, tickets)


@dataclass(frozen=True)
class _VendorPlan:
    """Per-vendor precomputation shared by every drive of the vendor."""

    vendor: str
    first_serial: int
    last_serial: int
    ladder: FirmwareLadder
    models: tuple
    lifetime: BathtubLifetimeModel
    mean_multiplier: float
    drive_level_share: float


class SSDFleet:
    """Generator-based fleet simulation for out-of-core runs.

    Unlike :func:`simulate_fleet` — which threads one RNG through every
    drive, so drive *k*'s telemetry depends on drives ``1..k-1`` — each
    drive here draws from its own ``default_rng((seed, serial))``
    stream. A drive's history is then a pure function of ``(config,
    serial)``, which is the property the sharded store needs: splitting
    the fleet into 4 shards or 400 yields byte-identical telemetry per
    drive, and any shard can be regenerated in isolation. The price is
    that an ``SSDFleet`` fleet is *not* sample-for-sample identical to
    ``simulate_fleet`` on the same config — it is the same population
    statistically, not bitwise.

    Serial assignment is vendor-major over ``sorted(mix.counts)``
    starting at 1, matching :func:`simulate_fleet`.
    """

    def __init__(self, config: FleetConfig):
        self.config = config
        if config.persona_weights is not None:
            from repro.telemetry.workloads import PersonaUsageModel

            self._usage_model = PersonaUsageModel(config.persona_weights)
        else:
            self._usage_model = UsageModel(
                mean_boot_probability=config.mean_boot_probability,
                vacation_rate=config.vacation_rate,
            )
        self._drive_simulator = DriveSimulator(horizon_days=config.horizon_days)
        self._ticket_generator = TicketGenerator(
            mean_repair_lag_days=config.mean_repair_lag_days
        )
        ladders = default_ladders()
        self._plans: list[_VendorPlan] = []
        serial_start = 1
        for vendor in sorted(config.mix.counts):
            n_drives = config.mix.counts[vendor]
            if n_drives == 0:
                continue
            info = VENDORS[vendor]
            ladder = ladders[vendor]
            probabilities = ladder.assignment_probabilities()
            mean_multiplier = float(
                np.sum(
                    probabilities
                    * [v.hazard_multiplier for v in ladder.versions]
                )
            )
            self._plans.append(
                _VendorPlan(
                    vendor=vendor,
                    first_serial=serial_start,
                    last_serial=serial_start + n_drives - 1,
                    ladder=ladder,
                    models=tuple(drive_models_for_vendor(vendor)),
                    lifetime=BathtubLifetimeModel(
                        horizon_days=config.horizon_days,
                        target_failure_probability=min(
                            0.95, info.replacement_rate * config.failure_boost
                        ),
                    ),
                    mean_multiplier=mean_multiplier,
                    drive_level_share=info.drive_level_share,
                )
            )
            serial_start += n_drives

    @property
    def n_drives(self) -> int:
        return self.config.mix.total

    def _plan_for(self, serial: int) -> _VendorPlan:
        for plan in self._plans:
            if plan.first_serial <= serial <= plan.last_serial:
                return plan
        raise ValueError(f"serial {serial} outside fleet [1, {self.n_drives}]")

    def simulate_drive(
        self, serial: int
    ) -> tuple[DriveHistory, TroubleTicket | None]:
        """One drive's history (and RaSRF ticket if it failed).

        Pure function of ``(config, serial)`` — the independent RNG
        stream is what makes shard layout irrelevant.
        """
        plan = self._plan_for(serial)
        rng = np.random.default_rng((self.config.seed, serial))
        firmware = plan.ladder.sample(1, rng)[0]
        model = plan.models[int(rng.integers(0, len(plan.models)))]
        failure_day = plan.lifetime.sample_failure_day(
            rng, firmware.hazard_multiplier / plan.mean_multiplier
        )
        if failure_day is None:
            archetype = "healthy"
        else:
            archetype = (
                DRIVE_LEVEL
                if rng.random() < plan.drive_level_share
                else SYSTEM_LEVEL
            )
        drive = self._drive_simulator.simulate(
            serial=serial,
            model=model,
            firmware=firmware,
            pattern=self._usage_model.sample_pattern(rng),
            failure_day=failure_day,
            archetype=archetype,
            rng=rng,
        )
        ticket = (
            self._ticket_generator.generate(drive, rng) if drive.failed else None
        )
        return drive, ticket

    def iter_drives(
        self, start_serial: int = 1, stop_serial: int | None = None
    ) -> Iterator[tuple[DriveHistory, TroubleTicket | None]]:
        """Yield ``(history, ticket)`` per drive, never holding the fleet."""
        stop = self.n_drives if stop_serial is None else stop_serial
        for serial in range(start_serial, stop + 1):
            yield self.simulate_drive(serial)

    def shard_bounds(
        self, n_shards: int | None = None, drives_per_shard: int | None = None
    ) -> list[tuple[int, int]]:
        """Contiguous inclusive ``(first_serial, last_serial)`` ranges."""
        if (n_shards is None) == (drives_per_shard is None):
            raise ValueError("pass exactly one of n_shards / drives_per_shard")
        total = self.n_drives
        if drives_per_shard is not None:
            if drives_per_shard < 1:
                raise ValueError("drives_per_shard must be at least 1")
            size = drives_per_shard
        else:
            if not 1 <= n_shards <= total:
                raise ValueError(
                    f"n_shards must be in [1, {total}], got {n_shards}"
                )
            size = -(-total // n_shards)
        return [
            (first, min(first + size - 1, total))
            for first in range(1, total + 1, size)
        ]

    def generate_shards(
        self,
        n_shards: int | None = None,
        drives_per_shard: int | None = None,
    ) -> Iterator[TelemetryDataset]:
        """Simulate the fleet one shard at a time.

        Yields one :class:`TelemetryDataset` per contiguous serial range;
        peak memory is one shard, not the fleet. Shard layout does not
        change any drive's telemetry (see class docstring), so consumers
        are free to pick the shard size that fits their memory ceiling.
        """
        for first, last in self.shard_bounds(n_shards, drives_per_shard):
            with trace_span("scale.generate_shard"):
                started = time.perf_counter()
                histories: list[DriveHistory] = []
                tickets: list[TroubleTicket] = []
                for drive, ticket in self.iter_drives(first, last):
                    histories.append(drive)
                    if ticket is not None:
                        tickets.append(ticket)
                dataset = TelemetryDataset.from_drives(histories, tickets)
                inc_counter("scale_drives_generated_total", len(histories))
                observe_histogram(
                    "scale_shard_write_seconds", time.perf_counter() - started
                )
            yield dataset
