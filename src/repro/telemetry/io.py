"""Dataset persistence: save/load fleets to a portable on-disk format.

A simulated fleet is expensive relative to model training, and real
deployments would ingest telemetry from collectors rather than
resimulate. The format is a directory with:

* ``columns.npz``  — every numeric column (numpy compressed),
* ``strings.json`` — the object-dtype columns (firmware/vendor/model),
* ``drives.json``  — the per-drive metadata table,
* ``tickets.json`` — the RaSRF trouble tickets.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.telemetry.dataset import DriveMeta, TelemetryDataset
from repro.telemetry.tickets import TroubleTicket

_STRING_COLUMNS = ("firmware", "vendor", "model")
FORMAT_VERSION = 1


def save_dataset(dataset: TelemetryDataset, directory: str | Path) -> Path:
    """Write a dataset to ``directory`` (created if needed)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    numeric = {
        name: values
        for name, values in dataset.columns.items()
        if name not in _STRING_COLUMNS
    }
    np.savez_compressed(path / "columns.npz", **numeric)

    strings = {
        name: dataset.columns[name].tolist()
        for name in _STRING_COLUMNS
        if name in dataset.columns
    }
    (path / "strings.json").write_text(json.dumps({"version": FORMAT_VERSION, **strings}))

    drives = [
        {
            "serial": meta.serial,
            "vendor": meta.vendor,
            "model_id": meta.model_id,
            "capacity_gb": meta.capacity_gb,
            "firmware": meta.firmware,
            "archetype": meta.archetype,
            "failure_day": meta.failure_day,
        }
        for meta in dataset.drives.values()
    ]
    (path / "drives.json").write_text(json.dumps(drives))

    tickets = [
        {
            "serial": ticket.serial,
            "initial_maintenance_time": ticket.initial_maintenance_time,
            "failure_level": ticket.failure_level,
            "category": ticket.category,
            "cause": ticket.cause,
        }
        for ticket in dataset.tickets
    ]
    (path / "tickets.json").write_text(json.dumps(tickets))
    return path


def load_dataset(
    directory: str | Path,
    validate: bool = False,
    sanitize: bool = False,
) -> TelemetryDataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Persistence trusts the directory contents blindly by default; pass
    ``validate=True`` to run
    :func:`~repro.telemetry.validation.validate_dataset` on the loaded
    dataset and raise a ``ValueError`` listing every violation, or
    ``sanitize=True`` to repair/quarantine invalid rows via
    :func:`~repro.robustness.quarantine.sanitize_dataset` instead of
    failing. With both flags, sanitation runs first and validation
    checks its output.
    """
    path = Path(directory)
    if not (path / "columns.npz").exists():
        raise FileNotFoundError(f"{path} does not contain a saved dataset")

    with np.load(path / "columns.npz") as archive:
        columns: dict[str, np.ndarray] = {name: archive[name] for name in archive.files}

    strings = json.loads((path / "strings.json").read_text())
    version = strings.pop("version", None)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version {version!r}")
    for name, values in strings.items():
        columns[name] = np.array(values, dtype=object)

    drives = {}
    for entry in json.loads((path / "drives.json").read_text()):
        drives[entry["serial"]] = DriveMeta(
            serial=entry["serial"],
            vendor=entry["vendor"],
            model_id=entry["model_id"],
            capacity_gb=entry["capacity_gb"],
            firmware=entry["firmware"],
            archetype=entry["archetype"],
            failure_day=entry["failure_day"],
        )

    tickets = [
        TroubleTicket(
            serial=entry["serial"],
            initial_maintenance_time=entry["initial_maintenance_time"],
            failure_level=entry["failure_level"],
            category=entry["category"],
            cause=entry["cause"],
        )
        for entry in json.loads((path / "tickets.json").read_text())
    ]
    dataset = TelemetryDataset(columns, drives, tickets)

    if sanitize:
        from repro.robustness.quarantine import sanitize_dataset

        dataset, _ = sanitize_dataset(dataset)
    if validate:
        from repro.telemetry.validation import validate_dataset

        violations = validate_dataset(dataset)
        if violations:
            detail = "\n  ".join(violations)
            raise ValueError(
                f"dataset at {path} fails validation "
                f"({len(violations)} violations):\n  {detail}"
            )
    return dataset
