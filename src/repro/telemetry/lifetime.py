"""Bathtub-curve lifetime model for SSD failures.

Observation #1 / Fig 2: failure counts vs power-on time follow the
classic bathtub — elevated infant mortality, a stable useful-life
plateau, then wear-out growth. We model the hazard as a Weibull mixture:

    h(t) = w_infant * weibull(k<1) + w_useful * const + w_wear * weibull(k>1)

scaled so that the survival over the study horizon matches a target
failure probability (the vendor replacement rate times any experiment
boost), and further scaled per drive by its firmware hazard multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BathtubLifetimeModel:
    """Samples failure days over a finite study horizon.

    Parameters
    ----------
    horizon_days:
        Length of the study window.
    target_failure_probability:
        Desired probability that a baseline drive (hazard multiplier 1)
        fails within the horizon.
    infant_weight / wear_weight:
        Mixture weights of the infant-mortality and wear-out components;
        the remainder is the constant useful-life hazard.
    infant_shape / wear_shape:
        Weibull shapes (<1 decreasing hazard, >1 increasing hazard).
    infant_scale_days / wear_scale_days:
        Weibull scales in days.
    """

    horizon_days: int = 540
    target_failure_probability: float = 0.05
    infant_weight: float = 0.30
    wear_weight: float = 0.35
    infant_shape: float = 0.5
    infant_scale_days: float = 60.0
    wear_shape: float = 3.0
    wear_scale_days: float = 700.0

    def __post_init__(self) -> None:
        if self.horizon_days < 1:
            raise ValueError("horizon_days must be positive")
        if not 0 < self.target_failure_probability < 1:
            raise ValueError("target_failure_probability must be in (0, 1)")
        if self.infant_weight < 0 or self.wear_weight < 0:
            raise ValueError("mixture weights must be non-negative")
        if self.infant_weight + self.wear_weight > 1:
            raise ValueError("infant_weight + wear_weight must not exceed 1")
        self._calibrate()

    def _raw_hazard(self, days: np.ndarray) -> np.ndarray:
        """Unnormalized hazard shape h0(t)."""
        days = np.maximum(np.asarray(days, dtype=float), 0.5)
        infant = (
            (self.infant_shape / self.infant_scale_days)
            * (days / self.infant_scale_days) ** (self.infant_shape - 1.0)
        )
        wear = (
            (self.wear_shape / self.wear_scale_days)
            * (days / self.wear_scale_days) ** (self.wear_shape - 1.0)
        )
        useful_weight = 1.0 - self.infant_weight - self.wear_weight
        constant = 1.0 / self.horizon_days
        return (
            self.infant_weight * infant
            + useful_weight * constant
            + self.wear_weight * wear
        )

    def _calibrate(self) -> None:
        """Scale the hazard so survival over the horizon hits the target."""
        days = np.arange(1, self.horizon_days + 1)
        cumulative = np.cumsum(self._raw_hazard(days))
        total = cumulative[-1]
        # Survival = exp(-scale * total) == 1 - target
        self._scale = -np.log(1.0 - self.target_failure_probability) / total
        self._daily_hazard = self._scale * self._raw_hazard(days)
        self._cumulative_hazard = np.cumsum(self._daily_hazard)

    def hazard(self, day: int | np.ndarray, multiplier: float = 1.0) -> np.ndarray:
        """Calibrated daily failure hazard at the given day(s)."""
        return multiplier * self._scale * self._raw_hazard(day)

    def failure_probability(self, multiplier: float = 1.0) -> float:
        """Probability of failing within the horizon for a given multiplier."""
        return float(1.0 - np.exp(-multiplier * self._cumulative_hazard[-1]))

    def sample_failure_day(
        self, rng: np.random.Generator, multiplier: float = 1.0
    ) -> int | None:
        """Sample a failure day in [1, horizon], or None if it survives.

        Uses inverse-transform sampling on the discrete cumulative
        hazard: failure day = first day where H(t) exceeds the sampled
        exponential threshold.
        """
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        threshold = rng.exponential(1.0)
        cumulative = multiplier * self._cumulative_hazard
        if threshold >= cumulative[-1]:
            return None
        return int(np.searchsorted(cumulative, threshold, side="right") + 1)

    def sample_failure_days(
        self, rng: np.random.Generator, multipliers: np.ndarray
    ) -> np.ndarray:
        """Vectorized variant: returns -1 for survivors."""
        multipliers = np.asarray(multipliers, dtype=float)
        thresholds = rng.exponential(1.0, size=multipliers.shape)
        scaled = thresholds / multipliers
        days = np.searchsorted(self._cumulative_hazard, scaled, side="right") + 1
        return np.where(scaled >= self._cumulative_hazard[-1], -1, days)
