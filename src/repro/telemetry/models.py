"""Drive-model catalog: 12 consumer M.2 NVMe models from 4 vendors.

Mirrors Table VI of the paper: all models are M.2-2280, NVMe 1.x, 3D TLC
NAND, capacities 128 GB - 1 TB, 32-96 layers. Per-vendor fleet share and
replacement rate follow the paper's reported totals:

    vendor I:   270,325 drives, RR 0.0068
    vendor II: 1,001,278 drives, RR 0.0007
    vendor III:  908,037 drives, RR 0.0005
    vendor IV:   152,405 drives, RR 0.0011
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Vendor:
    """One SSD manufacturer in the study (anonymized I-IV like the paper)."""

    name: str
    fleet_share: float
    """Fraction of the 2.33M-drive population belonging to this vendor."""
    replacement_rate: float
    """Two-year replacement rate from Table VI."""
    drive_level_share: float
    """Fraction of this vendor's failures that are drive-level (strong
    SMART signature); the rest are system-level (strong W/B signature).
    Fleet-wide the paper reports 31.62% drive-level."""
    n_firmware_versions: int
    """Number of firmware versions observed in the field (Fig 3)."""


# Fleet shares derived from Table VI counts (total 2,332,045 drives).
VENDORS: dict[str, Vendor] = {
    "I": Vendor(
        name="I",
        fleet_share=270_325 / 2_332_045,
        replacement_rate=0.0068,
        drive_level_share=0.32,
        n_firmware_versions=5,
    ),
    "II": Vendor(
        name="II",
        fleet_share=1_001_278 / 2_332_045,
        replacement_rate=0.0007,
        drive_level_share=0.30,
        n_firmware_versions=3,
    ),
    "III": Vendor(
        name="III",
        fleet_share=908_037 / 2_332_045,
        replacement_rate=0.0005,
        drive_level_share=0.33,
        n_firmware_versions=2,
    ),
    "IV": Vendor(
        name="IV",
        fleet_share=152_405 / 2_332_045,
        replacement_rate=0.0011,
        drive_level_share=0.31,
        n_firmware_versions=2,
    ),
}


@dataclass(frozen=True)
class DriveModel:
    """One drive model (vendor + capacity + NAND generation)."""

    model_id: str
    vendor: str
    capacity_gb: int
    nand_layers: int
    form_factor: str = "M.2-2280"
    protocol: str = "NVMe1.x"
    flash_tech: str = "3D TLC"
    interface: str = "PCIe 3.0x4"

    def __post_init__(self) -> None:
        if self.vendor not in VENDORS:
            raise ValueError(f"unknown vendor {self.vendor!r}")
        if self.capacity_gb <= 0:
            raise ValueError("capacity_gb must be positive")


# 12 models across the four vendors (counts per vendor chosen to sum to
# 12; capacities and layer counts span the ranges Table VI reports).
DRIVE_MODELS: tuple[DriveModel, ...] = (
    DriveModel("I-A128", "I", 128, 32),
    DriveModel("I-B256", "I", 256, 64),
    DriveModel("I-C512", "I", 512, 64),
    DriveModel("II-A256", "II", 256, 64),
    DriveModel("II-B512", "II", 512, 64),
    DriveModel("II-C512", "II", 512, 96),
    DriveModel("II-D1024", "II", 1024, 96),
    DriveModel("III-A256", "III", 256, 64),
    DriveModel("III-B512", "III", 512, 96),
    DriveModel("III-C1024", "III", 1024, 96),
    DriveModel("IV-A128", "IV", 128, 32),
    DriveModel("IV-B512", "IV", 512, 64),
)


def drive_models_for_vendor(vendor: str) -> tuple[DriveModel, ...]:
    """Return the catalog entries belonging to one vendor."""
    if vendor not in VENDORS:
        raise ValueError(f"unknown vendor {vendor!r}; known: {sorted(VENDORS)}")
    return tuple(model for model in DRIVE_MODELS if model.vendor == vendor)
