"""SMART attribute catalog and per-drive trajectory simulation.

Table II of the paper lists the 16 attributes consumer M.2 NVMe vendors
expose (the NVMe SMART/health log plus capacity). The simulator evolves
each attribute day by day from three ingredients:

* cumulative usage counters (reads/writes/hours) driven by the drive's
  daily usage hours,
* healthy background noise (temperature wiggle, rare benign error-log
  blips that give SMART-only predictors their false positives), and
* a pre-failure degradation ramp ``level`` in [0, 1] that bends the
  error-related attributes upward in the weeks before failure. How hard
  each attribute responds is the drive's failure *archetype*: drive-level
  failures have a strong SMART signature, system-level failures a weak
  one (their signal lives in the W/B event streams instead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SmartAttribute:
    """Catalog entry for one SMART attribute (Table II)."""

    smart_id: int
    name: str
    column: str
    cumulative: bool
    """True for monotonically increasing usage counters."""
    failure_relevant: bool
    """Whether the attribute responds to degradation at all. The paper's
    feature selection finds e.g. Available Spare Threshold uninformative."""


SMART_ATTRIBUTES: tuple[SmartAttribute, ...] = (
    SmartAttribute(1, "Critical Warning", "s1_critical_warning", False, True),
    SmartAttribute(2, "Composite Temperature", "s2_temperature", False, True),
    SmartAttribute(3, "Available Spare", "s3_available_spare", False, True),
    SmartAttribute(4, "Available Spare Threshold", "s4_spare_threshold", False, False),
    SmartAttribute(5, "Percentage Used", "s5_percentage_used", True, True),
    SmartAttribute(6, "Data Units Read", "s6_data_units_read", True, False),
    SmartAttribute(7, "Data Units Written", "s7_data_units_written", True, False),
    SmartAttribute(8, "Host Read Commands", "s8_host_read_commands", True, False),
    SmartAttribute(9, "Host Write Commands", "s9_host_write_commands", True, False),
    SmartAttribute(10, "Controller Busy Time", "s10_controller_busy_time", True, True),
    SmartAttribute(11, "Power Cycles", "s11_power_cycles", True, True),
    SmartAttribute(12, "Power On Hours", "s12_power_on_hours", True, False),
    SmartAttribute(13, "Unsafe Shutdowns", "s13_unsafe_shutdowns", True, True),
    SmartAttribute(14, "Error Media and Data Integrity Errors", "s14_media_errors", True, True),
    SmartAttribute(15, "Number of Error Information Log Entries", "s15_error_log_entries", True, True),
    SmartAttribute(16, "Capacity", "s16_capacity", False, False),
)

SMART_COLUMNS: tuple[str, ...] = tuple(a.column for a in SMART_ATTRIBUTES)


def smart_attribute_by_column(column: str) -> SmartAttribute:
    """Look up a catalog entry by its dataset column name."""
    for attribute in SMART_ATTRIBUTES:
        if attribute.column == column:
            return attribute
    raise KeyError(column)


@dataclass
class SmartSimulator:
    """Generates one drive's SMART trajectory over its observed days.

    Parameters
    ----------
    capacity_gb:
        Drive capacity; sets the write-wear scale and the capacity column.
    smart_gain:
        Archetype multiplier for the degradation response: ~1.0 for
        drive-level failures, ~0.15-0.35 for system-level failures whose
        SMART stays deceptively quiet, 0.0 for healthy drives.
    benign_anomaly_rate:
        Daily probability of a harmless error-log/temperature blip on a
        healthy drive (the source of SMART-only false positives).
    """

    capacity_gb: int
    smart_gain: float = 0.0
    benign_anomaly_rate: float = 0.004
    initial_percentage_used: float = 0.0

    def simulate(
        self,
        observed_days: np.ndarray,
        usage_hours: np.ndarray,
        degradation: np.ndarray,
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        """Return a column -> values dict over the observed days.

        ``observed_days`` are the (sorted) absolute day indices the drive
        was powered on; ``usage_hours`` the hours used each of those
        days; ``degradation`` the ramp level in [0, 1] on those days.
        """
        observed_days = np.asarray(observed_days)
        usage_hours = np.asarray(usage_hours, dtype=float)
        degradation = np.asarray(degradation, dtype=float)
        if not (observed_days.shape == usage_hours.shape == degradation.shape):
            raise ValueError("observed_days, usage_hours, degradation must align")
        n = observed_days.size
        if n == 0:
            return {column: np.array([]) for column in SMART_COLUMNS}
        if np.any(np.diff(observed_days) <= 0):
            raise ValueError("observed_days must be strictly increasing")

        gain = self.smart_gain
        level = degradation * gain

        # --- cumulative usage counters -------------------------------
        power_on_hours = np.cumsum(usage_hours)
        # Consumer workloads: a few GB read/written per active hour.
        read_gb_per_hour = rng.gamma(4.0, 0.9)
        write_gb_per_hour = rng.gamma(4.0, 0.45)
        data_read = np.cumsum(usage_hours * read_gb_per_hour * rng.lognormal(0, 0.25, n))
        data_written = np.cumsum(usage_hours * write_gb_per_hour * rng.lognormal(0, 0.25, n))
        host_reads = data_read * rng.uniform(8_000, 14_000)
        host_writes = data_written * rng.uniform(8_000, 14_000)
        controller_busy = np.cumsum(
            usage_hours * rng.uniform(0.5, 2.0) * (1.0 + 3.0 * level)
        )

        # One power cycle per boot; degradation adds crash-induced
        # reboots (paper: Power Cycles needs special attention).
        extra_cycles = rng.poisson(2.5 * level)
        power_cycles = np.cumsum(1 + extra_cycles)

        # Unsafe shutdowns: rare when healthy, bursty when degrading.
        unsafe = rng.poisson(0.004 + 3.0 * level**2)
        unsafe_shutdowns = np.cumsum(unsafe)

        # --- error counters ------------------------------------------
        benign_blip = rng.random(n) < self.benign_anomaly_rate
        media_error_rate = 6.0 * level**2
        media_errors = np.cumsum(rng.poisson(media_error_rate) + (benign_blip & (rng.random(n) < 0.25)))
        error_log_rate = 0.01 + 10.0 * level**1.5
        error_log = np.cumsum(rng.poisson(error_log_rate) + benign_blip * rng.poisson(1.5, n))

        # --- health gauges -------------------------------------------
        # Percentage used grows with written volume (TBW budget ~ 300
        # cycles of capacity for consumer TLC) plus degradation wear.
        tbw_budget_gb = self.capacity_gb * rng.uniform(250, 400)
        percentage_used = np.clip(
            self.initial_percentage_used
            + 100.0 * data_written / tbw_budget_gb
            + np.cumsum(2.0 * level**2),
            0.0,
            255.0,
        )
        available_spare = np.clip(
            100.0
            - 0.5 * percentage_used / 10.0
            - np.cumsum(8.0 * level**2 * rng.random(n)),
            0.0,
            100.0,
        )
        # Critical warning flips once spare is critically low or the
        # degradation ramp is nearly complete on a drive-level failure.
        critical = ((available_spare < 15.0) | (level > 0.75)).astype(float)

        temperature = (
            310.0
            + rng.normal(0, 2.0, n)
            + 6.0 * level
            + benign_blip * rng.uniform(5, 12, n)
        )

        return {
            "s1_critical_warning": critical,
            "s2_temperature": temperature,
            "s3_available_spare": available_spare,
            "s4_spare_threshold": np.full(n, 10.0),
            "s5_percentage_used": percentage_used,
            "s6_data_units_read": data_read,
            "s7_data_units_written": data_written,
            "s8_host_read_commands": host_reads,
            "s9_host_write_commands": host_writes,
            "s10_controller_busy_time": controller_busy,
            "s11_power_cycles": power_cycles.astype(float),
            "s12_power_on_hours": power_on_hours,
            "s13_unsafe_shutdowns": unsafe_shutdowns.astype(float),
            "s14_media_errors": media_errors.astype(float),
            "s15_error_log_entries": error_log.astype(float),
            "s16_capacity": np.full(n, float(self.capacity_gb)),
        }
